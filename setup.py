"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on older toolchains (setuptools without the
``wheel`` package) via the legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
