#!/usr/bin/env python
"""Regenerate the deterministic fixture corpus under tests/data/corpus/.

The fixtures stand in for DLMC and SuiteSparse in every offline corpus test
and CI smoke run: small seeded matrices in each wire format the corpus
manager speaks (plain ``.mtx``, ``.mtx.gz``, a SuiteSparse-style ``.tar.gz``
with the matrix as an archive member, and DLMC-style ``.smtx`` masks),
plus ``manifest.json`` pinning each resource's SHA-256 and dimensions.

Byte-determinism matters (the manifest pins digests), so gzip and tar
streams are written with zeroed mtimes and fixed ownership.  Rerunning this
script must reproduce the committed bytes exactly:

    PYTHONPATH=src python scripts/make_fixture_corpus.py [--check]

``--check`` regenerates into a scratch directory and fails if any committed
fixture differs — CI-friendly drift detection.
"""

from __future__ import annotations

import argparse
import gzip
import hashlib
import io
import json
import sys
import tarfile
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.tensor import generators  # noqa: E402
from repro.tensor.io import write_matrix_market  # noqa: E402
from repro.tensor.sparse import SparseMatrix  # noqa: E402

FIXTURE_DIR = REPO_ROOT / "tests" / "data" / "corpus"

#: One seed per fixture, derived from a fixed base so matrices are unrelated.
BASE_SEED = 20230


def _mtx_bytes(matrix: SparseMatrix) -> bytes:
    """MatrixMarket bytes of ``matrix`` (via the library's own writer)."""
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "matrix.mtx"
        write_matrix_market(matrix, path)
        return path.read_bytes()


def _gzip_bytes(data: bytes) -> bytes:
    """Gzip ``data`` deterministically (no filename, mtime pinned to 0)."""
    sink = io.BytesIO()
    with gzip.GzipFile(filename="", mode="wb", fileobj=sink, mtime=0) as gz:
        gz.write(data)
    return sink.getvalue()


def _tar_gz_bytes(members: dict) -> bytes:
    """A deterministic ``.tar.gz`` holding ``{member name: bytes}``."""
    tar_sink = io.BytesIO()
    with tarfile.open(fileobj=tar_sink, mode="w", format=tarfile.USTAR_FORMAT) as tar:
        for name in sorted(members):
            data = members[name]
            info = tarfile.TarInfo(name=name)
            info.size = len(data)
            info.mtime = 0
            info.uid = info.gid = 0
            info.uname = info.gname = ""
            tar.addfile(info, io.BytesIO(data))
    return _gzip_bytes(tar_sink.getvalue())


def _smtx_bytes(num_rows: int, num_cols: int, density: float,
                seed: int) -> bytes:
    """A DLMC-style ``.smtx`` pruning mask (CSR text, implicit 1.0 values)."""
    rng = np.random.default_rng(seed)
    mask = rng.random((num_rows, num_cols)) < density
    indptr = np.concatenate(([0], np.cumsum(mask.sum(axis=1))))
    indices = np.nonzero(mask)[1]
    lines = [
        f"{num_rows}, {num_cols}, {indices.size}",
        " ".join(str(int(offset)) for offset in indptr),
        " ".join(str(int(column)) for column in indices),
    ]
    return ("\n".join(lines) + "\n").encode()


def build_fixtures() -> dict:
    """``{filename: bytes}`` for every fixture resource."""
    fem = generators.banded_matrix(
        150, bandwidth=9, band_fill=0.7, off_band_nnz=260,
        rng=np.random.default_rng(BASE_SEED + 1), name="fem-band")
    graph = generators.power_law_matrix(
        140, 1_400, alpha=1.7,
        rng=np.random.default_rng(BASE_SEED + 2), name="powerlaw-graph")
    mini = generators.uniform_random_matrix(
        120, 120, 1_100,
        rng=np.random.default_rng(BASE_SEED + 3), name="cant-mini")

    return {
        "fem-band.mtx.gz": _gzip_bytes(_mtx_bytes(fem)),
        "powerlaw-graph.mtx": _mtx_bytes(graph),
        "cant-mini.tar.gz": _tar_gz_bytes(
            {"cant-mini/cant-mini.mtx": _mtx_bytes(mini)}),
        "magnitude-080.smtx": _smtx_bytes(96, 128, 0.20, BASE_SEED + 4),
        "random-050.smtx": _smtx_bytes(80, 112, 0.50, BASE_SEED + 5),
    }


def _entry(dataset: str, group: str, name: str, url: str, fmt: str,
           payload: bytes, *, member: str = None,
           rows: int, cols: int, nnz: int) -> dict:
    entry = {
        "dataset": dataset, "group": group, "name": name, "url": url,
        "sha256": hashlib.sha256(payload).hexdigest(), "format": fmt,
        "rows": rows, "cols": cols, "nnz": nnz,
    }
    if member:
        entry["member"] = member
    return entry


def build_manifest(fixtures: dict) -> dict:
    fem = fixtures["fem-band.mtx.gz"]
    graph = fixtures["powerlaw-graph.mtx"]
    mini = fixtures["cant-mini.tar.gz"]
    mag = fixtures["magnitude-080.smtx"]
    rnd = fixtures["random-050.smtx"]

    def dims(data: bytes) -> tuple:
        # Peek the nnz from the fixture bytes themselves so the manifest can
        # never drift from the matrices it describes.
        text = gzip.decompress(data).decode() if data[:2] == b"\x1f\x8b" \
            else data.decode()
        for line in text.splitlines():
            if line.startswith("%"):
                continue
            rows, cols, nnz = (int(part) for part in line.split())
            return rows, cols, nnz
        raise ValueError("no size line found")

    fem_dims = dims(fem)
    graph_dims = dims(graph)
    mag_header = mag.decode().splitlines()[0].replace(",", " ").split()
    rnd_header = rnd.decode().splitlines()[0].replace(",", " ").split()

    with tarfile.open(fileobj=io.BytesIO(mini), mode="r:gz") as tar:
        mini_bytes = tar.extractfile("cant-mini/cant-mini.mtx").read()
    mini_dims = dims(mini_bytes)

    return {
        "dataset": "suitesparse",
        "matrices": [
            _entry("suitesparse", "fixture", "fem-band", "fem-band.mtx.gz",
                   "mtx.gz", fem, rows=fem_dims[0], cols=fem_dims[1],
                   nnz=fem_dims[2]),
            _entry("suitesparse", "fixture", "powerlaw-graph",
                   "powerlaw-graph.mtx", "mtx", graph, rows=graph_dims[0],
                   cols=graph_dims[1], nnz=graph_dims[2]),
            _entry("suitesparse", "fixture", "cant-mini", "cant-mini.tar.gz",
                   "tar.gz", mini, member="cant-mini/cant-mini.mtx",
                   rows=mini_dims[0], cols=mini_dims[1], nnz=mini_dims[2]),
            _entry("dlmc", "fixture", "magnitude-080", "magnitude-080.smtx",
                   "smtx", mag, rows=int(mag_header[0]),
                   cols=int(mag_header[1]), nnz=int(mag_header[2])),
            _entry("dlmc", "fixture", "random-050", "random-050.smtx",
                   "smtx", rnd, rows=int(rnd_header[0]),
                   cols=int(rnd_header[1]), nnz=int(rnd_header[2])),
        ],
    }


def write_all(directory: Path) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    fixtures = build_fixtures()
    for filename, payload in fixtures.items():
        (directory / filename).write_bytes(payload)
    manifest = build_manifest(fixtures)
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=1) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="verify the committed fixtures match a fresh "
                             "regeneration instead of writing")
    options = parser.parse_args()

    if not options.check:
        write_all(FIXTURE_DIR)
        print(f"wrote fixture corpus to {FIXTURE_DIR}")
        return 0

    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        fresh = Path(scratch)
        write_all(fresh)
        stale = []
        for path in sorted(fresh.iterdir()):
            committed = FIXTURE_DIR / path.name
            if not committed.exists() or \
                    committed.read_bytes() != path.read_bytes():
                stale.append(path.name)
        if stale:
            print(f"fixture drift in {', '.join(stale)}; rerun "
                  f"scripts/make_fixture_corpus.py", file=sys.stderr)
            return 1
    print("fixture corpus is up to date")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
