#!/usr/bin/env python
"""Load generator for the evaluation daemon (``python -m repro serve``).

Drives N concurrent clients over a mixed hot/cold request stream against an
in-process :class:`repro.server.http.ReproServer` (same code path as the
daemon, no interpreter startup noise) and records, per phase:

* ``cold`` — every client concurrently requests the *same* never-evaluated
  grid.  The coalescing window folds them into shared scheduler passes, so
  the grid is computed once no matter how many clients ask.
* ``hot`` — every client re-requests that grid ``hot_rounds`` times: the
  repeated-request phase, served from the process memo / shared store.
  This is the phase the warm-path hit-rate criterion (> 90 %) is measured
  on.
* ``mixed`` — half the clients repeat the hot grid while the other half
  sweep a fresh ``y`` axis: the steady-state shape of a shared server.

For each phase: request p50/p99 latency, throughput (requests/s), and the
cell-source histogram (memo / store / computed) with the derived warm hit
rate.  Results land in the ``server`` section of ``BENCH_pipeline.json``
(``--output``; merged in place so the other sections survive) and the
whole-pipeline benchmark embeds the same section via
:func:`run_server_bench`.

Run with::

    PYTHONPATH=src python scripts/bench_server.py [--clients 4]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.runner import clear_process_caches  # noqa: E402
from repro.experiments.store import ReportStore  # noqa: E402
from repro.server import ServerClient, create_server, serve  # noqa: E402

#: The benchmark grid (quick suite): 3 workloads x 3 targets = 9 cells.
HOT_GRID = dict(suite="quick", y=[0.05, 0.10, 0.22], kernels=["gram"])

#: The cold half of the mixed phase: a y axis nothing else evaluates.
COLD_GRID = dict(suite="quick", y=[0.07, 0.12, 0.19], kernels=["gram"])


def _percentile(samples, fraction: float) -> float:
    if not samples:
        return 0.0
    ranked = sorted(samples)
    index = min(len(ranked) - 1, max(0, round(fraction * (len(ranked) - 1))))
    return ranked[index]


def _run_phase(client_grids) -> dict:
    """Run one request per (client, grid) entry concurrently; measure."""
    latencies = []
    sources: dict = {}
    errors = []
    lock = threading.Lock()

    def drive(client, grids):
        for grid in grids:
            start = time.perf_counter()
            try:
                outcome = client.sweep(**grid)
            except Exception as error:  # noqa: BLE001 - recorded, reraised
                with lock:
                    errors.append(error)
                return
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)
                for source, count in outcome.cell_sources().items():
                    sources[source] = sources.get(source, 0) + count

    start = time.perf_counter()
    threads = [threading.Thread(target=drive, args=(client, grids))
               for client, grids in client_grids]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if errors:
        raise RuntimeError(f"load-generator request failed: {errors[0]!r}")

    cells = sum(sources.values())
    warm = sources.get("memo", 0) + sources.get("store", 0)
    return {
        "requests": len(latencies),
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(len(latencies) / wall, 2) if wall else 0.0,
        "latency_p50_ms": round(_percentile(latencies, 0.50) * 1000, 2),
        "latency_p99_ms": round(_percentile(latencies, 0.99) * 1000, 2),
        "latency_mean_ms": round(statistics.mean(latencies) * 1000, 2)
        if latencies else 0.0,
        "cells": cells,
        "cell_sources": dict(sorted(sources.items())),
        "warm_hit_rate": round(warm / cells, 4) if cells else 0.0,
    }


def run_server_bench(clients: int = 4, hot_rounds: int = 5,
                     batch_window: float = 0.05) -> dict:
    """The ``server`` section of ``BENCH_pipeline.json`` (see module doc)."""
    if clients < 2:
        raise ValueError("the load generator needs at least 2 clients")
    clear_process_caches()
    with tempfile.TemporaryDirectory(prefix="bench-server-") as tmp:
        store = ReportStore(Path(tmp) / "store")
        server = create_server(port=0, store=store,
                               batch_window=batch_window)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=serve, args=(server,))
        thread.start()
        try:
            pool = [ServerClient(host, port) for _ in range(clients)]

            # Phase 1 — cold: everyone asks for the same unevaluated grid
            # at once; coalescing means it is computed once.
            cold = _run_phase([(client, [HOT_GRID]) for client in pool])

            # Phase 2 — hot: the repeated-request phase (hit-rate criterion).
            hot = _run_phase([(client, [HOT_GRID] * hot_rounds)
                              for client in pool])

            # Phase 3 — mixed: half repeat the hot grid, half go cold.
            half = clients // 2
            mixed = _run_phase(
                [(client, [HOT_GRID]) for client in pool[:half]]
                + [(client, [COLD_GRID]) for client in pool[half:]])

            stats = pool[0].stats()
            pool[0].shutdown()
        finally:
            thread.join(timeout=60)
        if thread.is_alive():
            raise RuntimeError("server failed to shut down cleanly")

    return {
        "clients": clients,
        "hot_rounds": hot_rounds,
        "batch_window_seconds": batch_window,
        "grid_cells_per_request": len(HOT_GRID["y"]) * 3,
        "phases": {"cold": cold, "hot": hot, "mixed": mixed},
        "service": stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent clients (default: 4)")
    parser.add_argument("--hot-rounds", type=int, default=5,
                        help="repeat count per client in the hot phase "
                             "(default: 5)")
    parser.add_argument("--batch-window", type=float, default=0.05,
                        help="server coalescing window in seconds "
                             "(default: 0.05)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_pipeline.json",
                        help="BENCH json to merge the server section into "
                             "(other sections are preserved)")
    args = parser.parse_args(argv)

    section = run_server_bench(clients=args.clients,
                               hot_rounds=args.hot_rounds,
                               batch_window=args.batch_window)

    payload = {}
    if args.output.exists():
        payload = json.loads(args.output.read_text())
    payload["server"] = section
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    for name, phase in section["phases"].items():
        print(f"{name:>5}: {phase['requests']} requests, "
              f"p50 {phase['latency_p50_ms']:.1f}ms / "
              f"p99 {phase['latency_p99_ms']:.1f}ms, "
              f"{phase['throughput_rps']:.1f} req/s, "
              f"warm hit rate {phase['warm_hit_rate']:.0%}")
    service = section["service"]
    print(f"server: {service['passes']} passes over {service['tickets']} "
          f"tickets, {service['coalesced']} cells coalesced away, "
          f"{service['computed']} computed "
          f"(lifetime warm hit rate {service['warm_hit_rate']:.0%})")
    print(f"wrote server section to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
