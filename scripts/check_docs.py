#!/usr/bin/env python
"""Docs smoke check: every relative Markdown link resolves to a real file.

Scans the repository's user-facing Markdown (README.md, docs/, PERFORMANCE.md)
for ``[text](target)`` links and verifies that every *relative* target —
external ``http(s)`` URLs and pure in-page anchors are skipped — exists on
disk, resolving the path against the file that contains the link.  Run by CI
(the docs smoke step) and by ``tests/test_docs.py`` so a renamed or deleted
file cannot silently orphan the documentation.

Usage::

    python scripts/check_docs.py [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: Markdown files (relative to the repo root) whose links must resolve.
DOC_FILES = (
    "README.md",
    "PERFORMANCE.md",
    "docs/ARCHITECTURE.md",
    "docs/CLI.md",
    "docs/CORPUS.md",
    "docs/SERVER.md",
)

#: ``[text](target)`` — good enough for the plain links these docs use
#: (no nested brackets, no reference-style links).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_links(text: str):
    """Yield link targets, skipping fenced code blocks."""
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        yield from _LINK.findall(line)


def check_file(path: Path, root: Path) -> list:
    """Return a list of broken-link messages for one Markdown file."""
    problems = []
    for target in iter_links(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target_path, _, _fragment = target.partition("#")
        if not target_path:  # pure in-page anchor
            continue
        resolved = (path.parent / target_path).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(root)}: broken link "
                            f"-> {target}")
    return problems


def check_docs(root: Path) -> list:
    """Check every file in :data:`DOC_FILES`; missing doc files are errors."""
    problems = []
    for name in DOC_FILES:
        path = root / name
        if not path.exists():
            problems.append(f"missing documentation file: {name}")
            continue
        problems.extend(check_file(path, root))
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: this script's repo)")
    args = parser.parse_args(argv)

    problems = check_docs(args.root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print(f"docs OK: {len(DOC_FILES)} file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
