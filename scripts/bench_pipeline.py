#!/usr/bin/env python
"""End-to-end pipeline benchmark: wall time per stage of ``all_reports()``.

Writes ``BENCH_pipeline.json`` at the repository root so successive PRs have a
performance trajectory to compare against.  Stages:

* ``matrix_generation`` — building the 22 synthetic suite matrices;
* ``operation_counts`` — effectual multiplies / output occupancy per workload;
* ``evaluation`` — tiling + traffic + energy for all workloads × variants;
* ``all_reports_cold`` — a fresh ``ExperimentContext.full().all_reports()``
  in the same process *with every process-wide memo cleared first* (what a
  cold process pays);
* ``all_reports_warm`` — a fresh context afterwards (what every *subsequent*
  context in a process pays, exercising the memoization layer).

Run with::

    PYTHONPATH=src python scripts/bench_pipeline.py [--output BENCH_pipeline.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.runner import (  # noqa: E402
    ExperimentContext,
    clear_process_caches,
)

#: Wall time of ``ExperimentContext.full().all_reports()`` at the seed commit
#: (before the tiling layer was vectorized), best of 3 on the machine this PR
#: was developed on.  Recorded here so BENCH_pipeline.json always carries the
#: seed-vs-current comparison; re-measure by checking out the seed commit and
#: running ``scripts/bench_pipeline.py`` there.
SEED_ALL_REPORTS_SECONDS = 3.329


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_benchmark() -> dict:
    clear_process_caches()

    context = ExperimentContext.full()
    names = context.workload_names

    generation = _timed(lambda: [context.matrix(n) for n in names])
    counts = _timed(lambda: [context.workload(n).operation_counts for n in names])
    evaluation = _timed(context.all_reports)

    clear_process_caches()
    cold = _timed(lambda: ExperimentContext.full().all_reports())

    warm = _timed(lambda: ExperimentContext.full().all_reports())

    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "seed": {"all_reports_cold_seconds": SEED_ALL_REPORTS_SECONDS},
        "current": {
            "matrix_generation_seconds": round(generation, 4),
            "operation_counts_seconds": round(counts, 4),
            "evaluation_seconds": round(evaluation, 4),
            "all_reports_cold_seconds": round(cold, 4),
            "all_reports_warm_seconds": round(warm, 4),
        },
        "speedup_cold_vs_seed": round(SEED_ALL_REPORTS_SECONDS / cold, 2),
        "speedup_warm_vs_seed": round(SEED_ALL_REPORTS_SECONDS / warm, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_pipeline.json",
                        help="where to write the JSON result")
    args = parser.parse_args(argv)

    result = run_benchmark()
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    current = result["current"]
    print(f"matrix generation : {current['matrix_generation_seconds']:.3f}s")
    print(f"operation counts  : {current['operation_counts_seconds']:.3f}s")
    print(f"evaluation        : {current['evaluation_seconds']:.3f}s")
    print(f"all_reports cold  : {current['all_reports_cold_seconds']:.3f}s "
          f"({result['speedup_cold_vs_seed']:.1f}x vs seed "
          f"{SEED_ALL_REPORTS_SECONDS:.3f}s)")
    print(f"all_reports warm  : {current['all_reports_warm_seconds']:.3f}s "
          f"({result['speedup_warm_vs_seed']:.1f}x vs seed)")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
