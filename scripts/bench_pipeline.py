#!/usr/bin/env python
"""End-to-end pipeline benchmark: wall time per stage of ``all_reports()``.

Writes ``BENCH_pipeline.json`` at the repository root so successive PRs have a
performance trajectory to compare against.  Stages:

* ``matrix_generation`` — building the 22 synthetic suite matrices;
* ``operation_counts`` — effectual multiplies / output occupancy per workload;
* ``evaluation`` — tiling + traffic + energy for all workloads × variants;
* ``all_reports_cold`` — a fresh ``ExperimentContext.full().all_reports()``
  in the same process *with every process-wide memo cleared first* (what a
  cold process pays);
* ``all_reports_warm`` — a fresh context afterwards (what every *subsequent*
  context in a process pays, exercising the memoization layer);
* ``parallel`` — the cold full-suite evaluation again, but pre-computed by
  the :mod:`repro.experiments.scheduler` worker pool at each worker count in
  ``--workers-sweep`` (what ``python -m repro run --workers N`` pays);
* ``store`` — the persistent report store (:mod:`repro.experiments.store`):
  a full-suite 3-target sweep evaluated cold *writing* a store, then the
  same sweep on a cold process *reading* it (what ``--store``/``--resume``
  pays), plus raw store write/load throughput in entries per second;
* ``shard_scaling`` — the same full-suite 3-target sweep executed by 1 vs 2
  vs 4 cooperative shard workers (real ``python -m repro sweep --shard i/N``
  subprocesses, see :mod:`repro.experiments.shard`), wall time from first
  launch to last exit — what multi-worker sharding buys end to end,
  including process startup and lease traffic;
* ``batch_grid`` — a cold ``y × GLB × PE-buffer × PE-count`` grid (serial,
  one process) evaluated through the scheduler twice: once per-point
  (``use_batch=False``, the golden loop) and once through the vectorized
  batch engine (:mod:`repro.model.batch`), recording both wall times,
  cells/second, and ``speedup_batch_vs_loop``.  Runs even on 1-core
  machines — it measures the serial evaluation kernel, not pool scaling;
* ``search`` — the design-space search benchmark grid run twice: brute
  force (every candidate exactly evaluated) vs. surrogate-ranked
  (:mod:`repro.experiments.surrogate`), recording wall times, exact
  evaluation counts, the reduction factor, and the surrogate frontier's
  precision/recall against the brute-force frontier (pinned at 1.0/1.0 —
  the frontiers must be identical);
* ``corpus`` — the real-matrix corpus cache (:mod:`repro.tensor.corpus`)
  against the committed offline fixture corpus: cold transport + checksum +
  atomic install + parse for every wire format vs. warm cache-hit loading,
  plus warm matrix loads per second;
* ``server`` — the evaluation daemon (:mod:`repro.server`) under the
  ``scripts/bench_server.py`` load generator: N concurrent clients over a
  mixed hot/cold request stream, recording per-phase p50/p99 latency,
  throughput, and memo/store warm hit rates (the repeated-request phase
  must stay above 90 %).

Run with::

    PYTHONPATH=src python scripts/bench_pipeline.py [--output BENCH_pipeline.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.runner import (  # noqa: E402
    ExperimentContext,
    clear_process_caches,
)
from repro.experiments.scheduler import EvaluationScheduler  # noqa: E402

#: Wall time of ``ExperimentContext.full().all_reports()`` at the seed commit
#: (before the tiling layer was vectorized), best of 3 on the machine this PR
#: was developed on.  Recorded here so BENCH_pipeline.json always carries the
#: seed-vs-current comparison; re-measure by checking out the seed commit and
#: running ``scripts/bench_pipeline.py`` there.
SEED_ALL_REPORTS_SECONDS = 3.329


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _timed_parallel(workers: int) -> float:
    """Cold full-suite evaluation pre-computed on a ``workers``-process pool."""
    clear_process_caches()
    context = ExperimentContext.full()
    scheduler = EvaluationScheduler(max_workers=workers, min_parallel_requests=1)

    def run() -> None:
        scheduler.prefetch_context(context)
        context.all_reports()  # memo hits: collects what the pool computed

    return _timed(run)


def _bench_store() -> dict:
    """Cold-vs-warm-store sweep wall time + raw store throughput."""
    import tempfile

    from repro.experiments.store import ReportStore
    from repro.experiments.sweep import sweep_grid

    y_values = (0.05, 0.10, 0.22)
    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        store_dir = Path(tmp) / "store"

        clear_process_caches()
        store = ReportStore(store_dir)
        start = time.perf_counter()
        sweep_grid(ExperimentContext.full().suite, y_values=y_values,
                   max_workers=1, store=store)
        cold = time.perf_counter() - start

        clear_process_caches()  # "fresh process": memo gone, store remains
        warm_store = ReportStore(store_dir)
        start = time.perf_counter()
        result = sweep_grid(ExperimentContext.full().suite, y_values=y_values,
                            max_workers=1, store=warm_store, resume=True)
        warm = time.perf_counter() - start
        assert result.schedule.computed == 0, "warm-store sweep re-evaluated"

        # Raw store-hit throughput: load every entry back repeatedly.
        clear_process_caches()
        reader = ReportStore(store_dir)
        context = ExperimentContext.full()
        keys = [context.memo_key(name) for name in context.workload_names]
        rounds = 5
        start = time.perf_counter()
        for _ in range(rounds):
            for key in keys:
                assert reader.load(key) is not None
        load_seconds = time.perf_counter() - start
        loads = rounds * len(keys)

        # Bulk lookup (one scandir per shard instead of one open per key):
        # what the scheduler's prefetch pays when warm-starting a search.
        clear_process_caches()
        bulk_reader = ReportStore(store_dir)
        start = time.perf_counter()
        for _ in range(rounds):
            assert len(bulk_reader.load_many(keys)) == len(keys)
        bulk_seconds = time.perf_counter() - start

    return {
        "sweep_cells": result.schedule.unique,
        "sweep_cold_write_seconds": round(cold, 4),
        "sweep_warm_store_seconds": round(warm, 4),
        "warm_vs_cold_speedup": round(cold / warm, 2),
        "store_hit_entries_per_second": round(loads / load_seconds, 1),
        "store_hit_reports_per_second": round(3 * loads / load_seconds, 1),
        "store_bulk_load_entries_per_second": round(loads / bulk_seconds, 1),
    }


def _bench_shards(shard_counts=(1, 2, 4)) -> dict:
    """Wall time of an N-worker cooperative sharded sweep, per N.

    Each worker is a real ``python -m repro sweep --shard i/N`` subprocess
    against a shared fresh store, so the measurement includes interpreter
    startup, suite rebuild, and lease-file traffic — the honest end-to-end
    cost of sharding, not just the evaluation kernel.
    """
    import subprocess
    import tempfile

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAULTS", None)  # never benchmark with fault drills armed

    results = {}
    for count in shard_counts:
        with tempfile.TemporaryDirectory(prefix="bench-shard-") as tmp:
            start = time.perf_counter()
            workers = [
                subprocess.Popen(
                    [sys.executable, "-m", "repro", "sweep",
                     "--suite", "full", "--y", "0.05,0.10,0.22",
                     "--shard", f"{index}/{count}",
                     "--store", str(Path(tmp) / "store")],
                    env=env, cwd=tmp,
                    stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
                for index in range(1, count + 1)
            ]
            for worker in workers:
                if worker.wait(timeout=600) != 0:
                    raise RuntimeError(
                        f"shard worker exited {worker.returncode}")
            results[str(count)] = round(time.perf_counter() - start, 4)
    return results


def _bench_batch_grid() -> dict:
    """Cold batched vs. per-point grid evaluation, serial, same requests.

    The grid crosses ``y`` with GLB/PE-buffer scaling *and a PE-count axis*
    (the batch evaluator's cheapest direction: PE count changes no tiling, so
    thousands of cells share one set of occupancy reductions) — the shape a
    design-space search over the paper's architecture actually sweeps.  Both
    measurements start from cleared process caches and run on one worker, so
    the difference is purely the per-cell evaluation path.
    """
    from repro.accelerator.config import scaled_default_config
    from repro.experiments.scheduler import EvaluationRequest

    y_values = (0.02, 0.05, 0.08, 0.10, 0.14, 0.18, 0.22, 0.30)
    glb_scales = (0.5, 1.0, 2.0)
    pe_scales = (0.5, 1.0, 2.0)
    pe_counts = (2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256,
                 384, 512, 768, 1024, 1536, 2048, 3072, 4096, 6144)
    workload_count = 4

    base = scaled_default_config()
    suite = ExperimentContext.full().suite
    token = suite.cache_token
    names = list(suite.names)[:workload_count]

    architectures = []
    for glb_scale in glb_scales:
        for pe_scale in pe_scales:
            scaled = base.with_overrides(
                glb_capacity_words=max(
                    1, int(round(base.glb_capacity_words * glb_scale))),
                pe_buffer_capacity_words=max(
                    1, int(round(base.pe_buffer_capacity_words * pe_scale))))
            architectures.extend(scaled.with_overrides(num_pes=count)
                                 for count in pe_counts)
    requests = [
        EvaluationRequest(suite_token=token, architecture=architecture,
                          overbooking_target=y, workload=name)
        for name in names for architecture in architectures for y in y_values
    ]

    def cold_run(use_batch: bool) -> float:
        clear_process_caches()
        scheduler = EvaluationScheduler(max_workers=1, use_batch=use_batch)
        start = time.perf_counter()
        stats = scheduler.prefetch(requests)
        seconds = time.perf_counter() - start
        assert stats.computed == len(requests), "grid cells were not cold"
        return seconds

    batched = cold_run(True)
    loop = cold_run(False)
    cells = len(requests)
    return {
        "cells": cells,
        "workloads": workload_count,
        "grid": {
            "y_values": len(y_values),
            "glb_scales": len(glb_scales),
            "pe_scales": len(pe_scales),
            "pe_counts": len(pe_counts),
        },
        "batched_seconds": round(batched, 4),
        "per_point_seconds": round(loop, 4),
        "batched_cells_per_second": round(cells / batched, 1),
        "per_point_cells_per_second": round(cells / loop, 1),
        "speedup_batch_vs_loop": round(loop / batched, 2),
    }


#: The design-space search benchmark grid: large enough that the surrogate
#: trains, verifies, and pays for itself, validated to reproduce the
#: brute-force frontier exactly (the golden tests pin the same grid).
SEARCH_BENCH_GRID = dict(
    kernels=("gram",),
    y_values=(0.02, 0.05, 0.10, 0.22),
    glb_scales=(0.4, 0.7, 1.0, 1.5),
    pe_scales=(0.5, 1.0, 2.0),
    max_generations=4,
    max_evaluations=100000,
    max_workers=1,
)


def _frontier_keys(result):
    """Comparable per-group frontier membership: (kernel, workload, config)."""
    return {(p.kernel, p.workload, p.config) for p in result.frontier}


def _bench_search() -> dict:
    """Brute-force vs. surrogate-ranked design-space search on one grid."""
    from repro.experiments.search import search_frontier
    from repro.tensor.suite import small_suite

    def cold_run(use_surrogate: bool):
        clear_process_caches()
        start = time.perf_counter()
        result = search_frontier(small_suite(), use_surrogate=use_surrogate,
                                 **SEARCH_BENCH_GRID)
        return result, time.perf_counter() - start

    brute, brute_seconds = cold_run(False)
    surrogate, surrogate_seconds = cold_run(True)

    brute_evals = sum(s.evaluated_configs for s in brute.generations)
    surrogate_evals = sum(s.evaluated_configs for s in surrogate.generations)
    brute_frontier = _frontier_keys(brute)
    surrogate_frontier = _frontier_keys(surrogate)
    true_positives = len(surrogate_frontier & brute_frontier)

    return {
        "grid": {
            "y_values": len(SEARCH_BENCH_GRID["y_values"]),
            "glb_scales": len(SEARCH_BENCH_GRID["glb_scales"]),
            "pe_scales": len(SEARCH_BENCH_GRID["pe_scales"]),
            "generations": SEARCH_BENCH_GRID["max_generations"],
        },
        "brute_seconds": round(brute_seconds, 4),
        "surrogate_seconds": round(surrogate_seconds, 4),
        "brute_exact_evaluations": brute_evals,
        "surrogate_exact_evaluations": surrogate_evals,
        "evaluation_reduction": round(brute_evals / surrogate_evals, 2),
        "frontier_precision": round(
            true_positives / max(len(surrogate_frontier), 1), 4),
        "frontier_recall": round(
            true_positives / max(len(brute_frontier), 1), 4),
        "frontier_equal": surrogate_frontier == brute_frontier,
    }


def _bench_corpus() -> dict:
    """The corpus cache: cold fetch+install vs. warm cache-hit loading.

    Runs entirely offline against the committed fixture corpus
    (``tests/data/corpus/``): the cold phase pays transport + checksum +
    atomic install + parse for every fixture matrix across all wire
    formats, the warm phase pays only the installed-file check and parse
    — the per-evaluation overhead a corpus workload adds once cached.
    """
    import tempfile

    from repro.tensor.corpus import CorpusCache, corpus_workload_suite

    manifest = REPO_ROOT / "tests" / "data" / "corpus" / "manifest.json"
    ids = [
        "dlmc:fixture/magnitude-080",
        "dlmc:fixture/random-050",
        "suitesparse:fixture/fem-band",
        "suitesparse:fixture/powerlaw-graph",
        "suitesparse:fixture/cant-mini",
    ]

    with tempfile.TemporaryDirectory(prefix="bench-corpus-") as tmp:
        cache = CorpusCache(Path(tmp) / "cache")

        def build_and_load():
            suite = corpus_workload_suite(
                ids, manifest=manifest, cache=cache, offline=True)
            return [suite.matrix(name) for name in suite.names]

        cold = _timed(build_and_load)
        warm = _timed(build_and_load)
        rounds = 5
        start = time.perf_counter()
        for _ in range(rounds):
            build_and_load()
        warm_loads_per_second = rounds * len(ids) / \
            (time.perf_counter() - start)

    return {
        "matrices": len(ids),
        "cold_fetch_install_load_seconds": round(cold, 4),
        "warm_cache_hit_load_seconds": round(warm, 4),
        "warm_vs_cold_speedup": round(cold / warm, 2),
        "warm_matrix_loads_per_second": round(warm_loads_per_second, 1),
    }


def _bench_server() -> dict:
    """The daemon under concurrent load (see ``scripts/bench_server.py``)."""
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from bench_server import run_server_bench
    finally:
        sys.path.pop(0)
    return run_server_bench()


def run_benchmark(workers_sweep=(1, 2, 4)) -> dict:
    clear_process_caches()

    context = ExperimentContext.full()
    names = context.workload_names

    generation = _timed(lambda: [context.matrix(n) for n in names])
    counts = _timed(lambda: [context.workload(n).operation_counts for n in names])
    evaluation = _timed(context.all_reports)

    clear_process_caches()
    cold = _timed(lambda: ExperimentContext.full().all_reports())

    warm = _timed(lambda: ExperimentContext.full().all_reports())

    # On a 1-core machine the worker sweep measures ProcessPoolExecutor
    # overhead, not parallel scaling (every pool worker timeshares the single
    # core), which badly distorts the recorded trajectory.  Record the core
    # count and skip the sweep with a note instead.
    cpu_count = os.cpu_count() or 1
    if cpu_count <= 1:
        parallel = {}
        parallel_note = (
            "skipped: os.cpu_count() == 1, so a worker sweep would measure "
            "pool overhead rather than scaling; re-run on multi-core "
            "hardware (the serial batch_grid section is still measured)")
    else:
        parallel = {
            str(workers): round(_timed_parallel(workers), 4)
            for workers in workers_sweep
        }
        parallel_note = f"measured on {cpu_count} cores"

    store = _bench_store()

    # Same 1-core caveat as the worker sweep: N shard subprocesses
    # timesharing one core measure contention, not scaling.
    if cpu_count <= 1:
        shards = {}
        shard_note = (
            "skipped: os.cpu_count() == 1, so concurrent shard workers "
            "would measure core contention rather than scaling; re-run on "
            "multi-core hardware (the serial batch_grid section is still "
            "measured)")
    else:
        shards = _bench_shards()
        shard_note = f"measured on {cpu_count} cores"

    batch_grid = _bench_batch_grid()
    search = _bench_search()
    corpus = _bench_corpus()
    server = _bench_server()

    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": cpu_count,
        "seed": {"all_reports_cold_seconds": SEED_ALL_REPORTS_SECONDS},
        "current": {
            "matrix_generation_seconds": round(generation, 4),
            "operation_counts_seconds": round(counts, 4),
            "evaluation_seconds": round(evaluation, 4),
            "all_reports_cold_seconds": round(cold, 4),
            "all_reports_warm_seconds": round(warm, 4),
        },
        "parallel_cold_seconds_by_workers": parallel,
        "parallel_note": parallel_note,
        "store": store,
        "shard_scaling_seconds_by_workers": shards,
        "shard_scaling_note": shard_note,
        "batch_grid": batch_grid,
        "search": search,
        "corpus": corpus,
        "server": server,
        "speedup_cold_vs_seed": round(SEED_ALL_REPORTS_SECONDS / cold, 2),
        "speedup_warm_vs_seed": round(SEED_ALL_REPORTS_SECONDS / warm, 2),
        "speedup_batch_vs_loop": batch_grid["speedup_batch_vs_loop"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_pipeline.json",
                        help="where to write the JSON result")
    parser.add_argument("--workers-sweep", default="1,2,4",
                        help="comma-separated scheduler worker counts to time "
                             "on the cold full suite (default: 1,2,4)")
    args = parser.parse_args(argv)

    workers_sweep = [int(w) for w in args.workers_sweep.split(",") if w.strip()]
    result = run_benchmark(workers_sweep)
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    current = result["current"]
    print(f"matrix generation : {current['matrix_generation_seconds']:.3f}s")
    print(f"operation counts  : {current['operation_counts_seconds']:.3f}s")
    print(f"evaluation        : {current['evaluation_seconds']:.3f}s")
    print(f"all_reports cold  : {current['all_reports_cold_seconds']:.3f}s "
          f"({result['speedup_cold_vs_seed']:.1f}x vs seed "
          f"{SEED_ALL_REPORTS_SECONDS:.3f}s)")
    print(f"all_reports warm  : {current['all_reports_warm_seconds']:.3f}s "
          f"({result['speedup_warm_vs_seed']:.1f}x vs seed)")
    if result["parallel_cold_seconds_by_workers"]:
        for workers, seconds in result["parallel_cold_seconds_by_workers"].items():
            print(f"scheduler cold, {workers} worker(s): {seconds:.3f}s")
    else:
        print(f"worker sweep {result['parallel_note']}")
    store = result["store"]
    print(f"store: 3-target sweep cold {store['sweep_cold_write_seconds']:.3f}s"
          f" -> warm-store {store['sweep_warm_store_seconds']:.3f}s "
          f"({store['warm_vs_cold_speedup']:.1f}x); "
          f"{store['store_hit_entries_per_second']:.0f} entry loads/s, "
          f"{store['store_bulk_load_entries_per_second']:.0f} bulk loads/s")
    if result["shard_scaling_seconds_by_workers"]:
        for count, seconds in \
                result["shard_scaling_seconds_by_workers"].items():
            print(f"sharded sweep, {count} worker(s): {seconds:.3f}s")
    else:
        print(f"shard scaling {result['shard_scaling_note']}")
    grid = result["batch_grid"]
    print(f"batch grid: {grid['cells']} cells cold in "
          f"{grid['batched_seconds']:.3f}s batched vs "
          f"{grid['per_point_seconds']:.3f}s per-point "
          f"({grid['speedup_batch_vs_loop']:.1f}x, "
          f"{grid['batched_cells_per_second']:.0f} cells/s)")
    search = result["search"]
    print(f"search: surrogate {search['surrogate_exact_evaluations']} vs "
          f"brute {search['brute_exact_evaluations']} exact evals "
          f"({search['evaluation_reduction']:.2f}x fewer), frontier "
          f"precision/recall {search['frontier_precision']:.2f}/"
          f"{search['frontier_recall']:.2f}, equal={search['frontier_equal']}")
    corpus = result["corpus"]
    print(f"corpus: {corpus['matrices']} fixture matrices cold "
          f"fetch+install+load {corpus['cold_fetch_install_load_seconds']:.3f}s"
          f" -> warm {corpus['warm_cache_hit_load_seconds']:.3f}s "
          f"({corpus['warm_vs_cold_speedup']:.1f}x, "
          f"{corpus['warm_matrix_loads_per_second']:.0f} loads/s)")
    server = result["server"]
    hot = server["phases"]["hot"]
    print(f"server: {server['clients']} clients, hot phase p50 "
          f"{hot['latency_p50_ms']:.1f}ms / p99 {hot['latency_p99_ms']:.1f}ms "
          f"at {hot['throughput_rps']:.1f} req/s, warm hit rate "
          f"{hot['warm_hit_rate']:.0%}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
