"""Deterministic random-number handling.

Every stochastic component of the reproduction (synthetic tensor generators,
Swiftiles tile sampling, workload suites) accepts either a seed or an existing
:class:`numpy.random.Generator`.  Routing everything through
:func:`resolve_rng` keeps experiments reproducible run-to-run, which matters
because EXPERIMENTS.md records measured numbers.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: The type accepted everywhere a source of randomness is needed.
RandomState = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0xA11CE


def resolve_rng(rng: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, generator, or ``None``.

    Parameters
    ----------
    rng:
        ``None`` (use the library-wide default seed), an integer seed, or an
        already-constructed generator (returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A generator ready for use.

    Examples
    --------
    >>> g = resolve_rng(7)
    >>> isinstance(g, np.random.Generator)
    True
    >>> resolve_rng(g) is g
    True
    """
    if rng is None:
        return np.random.default_rng(_DEFAULT_SEED)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator; got {type(rng).__name__}"
    )


def spawn(rng: RandomState, count: int) -> list[np.random.Generator]:
    """Split a generator into ``count`` independent child generators.

    Used by the workload suite so that each synthetic tensor draws from its own
    stream and adding a new workload does not perturb existing ones.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = resolve_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
