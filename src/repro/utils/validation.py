"""Argument validation helpers.

All public constructors in the library validate their arguments eagerly and
raise ``ValueError``/``TypeError`` with messages that name the offending
parameter.  Centralizing the checks keeps the error messages uniform.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def _is_integer(value: Any) -> bool:
    return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(value, bool)


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    if not _is_integer(value):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    if not _is_integer(value):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_positive(value: Any, name: str) -> float:
    """Validate that ``value`` is a number strictly greater than zero."""
    if not _is_number(value):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return float(value)


def check_non_negative(value: Any, name: str) -> float:
    """Validate that ``value`` is a number greater than or equal to zero."""
    if not _is_number(value):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return float(value)


def check_fraction(value: Any, name: str, *, inclusive_low: bool = True,
                   inclusive_high: bool = True) -> float:
    """Validate that ``value`` lies in the unit interval ``[0, 1]``.

    ``inclusive_low``/``inclusive_high`` control whether the endpoints are
    permitted (e.g. a sparsity of exactly 1.0 — an all-zero tensor — is usually
    disallowed by generators).
    """
    if not _is_number(value):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        lo = "[" if inclusive_low else "("
        hi = "]" if inclusive_high else ")"
        raise ValueError(f"{name} must lie in {lo}0, 1{hi}, got {value}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Validate a probability in ``[0, 1]`` (both endpoints allowed)."""
    return check_fraction(value, name, inclusive_low=True, inclusive_high=True)


def check_non_negative_int_array(array: Any, name: str) -> np.ndarray:
    """Validate a 1-D array of non-negative integers in one vectorized pass.

    This is the bulk counterpart of :func:`check_non_negative_int`: tiling
    constructors validate whole occupancy arrays at once instead of paying a
    per-element Python call.  Returns the array as ``int64`` (without copying
    when the input already is ``int64``).
    """
    arr = np.asarray(array)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got ndim={arr.ndim}")
    if arr.size and arr.dtype.kind not in "iu":
        if arr.dtype.kind == "f" and np.equal(np.mod(arr, 1), 0).all():
            arr = arr.astype(np.int64)
        else:
            raise TypeError(f"{name} must be an integer array, got dtype {arr.dtype}")
    arr = arr.astype(np.int64, copy=False)
    if arr.size and int(arr.min()) < 0:
        raise ValueError(f"{name} must be non-negative, got minimum {int(arr.min())}")
    return arr


def check_range_arrays(starts: Any, stops: Any, name: str) -> tuple[np.ndarray, np.ndarray]:
    """Validate parallel ``[start, stop)`` coordinate-bound arrays.

    Vectorized counterpart of constructing many :class:`~repro.tensor.coords.Range`
    objects: both arrays must be 1-D non-negative integers of equal length with
    ``stops >= starts`` element-wise.
    """
    starts = check_non_negative_int_array(starts, f"{name} starts")
    stops = check_non_negative_int_array(stops, f"{name} stops")
    if len(starts) != len(stops):
        raise ValueError(
            f"{name} starts and stops must align ({len(starts)} vs {len(stops)})"
        )
    if starts.size and bool((stops < starts).any()):
        raise ValueError(f"{name} stops must be >= starts element-wise")
    return starts, stops
