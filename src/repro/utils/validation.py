"""Argument validation helpers.

All public constructors in the library validate their arguments eagerly and
raise ``ValueError``/``TypeError`` with messages that name the offending
parameter.  Centralizing the checks keeps the error messages uniform.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def _is_integer(value: Any) -> bool:
    return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(value, bool)


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    if not _is_integer(value):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    if not _is_integer(value):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_positive(value: Any, name: str) -> float:
    """Validate that ``value`` is a number strictly greater than zero."""
    if not _is_number(value):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return float(value)


def check_non_negative(value: Any, name: str) -> float:
    """Validate that ``value`` is a number greater than or equal to zero."""
    if not _is_number(value):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return float(value)


def check_fraction(value: Any, name: str, *, inclusive_low: bool = True,
                   inclusive_high: bool = True) -> float:
    """Validate that ``value`` lies in the unit interval ``[0, 1]``.

    ``inclusive_low``/``inclusive_high`` control whether the endpoints are
    permitted (e.g. a sparsity of exactly 1.0 — an all-zero tensor — is usually
    disallowed by generators).
    """
    if not _is_number(value):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        lo = "[" if inclusive_low else "("
        hi = "]" if inclusive_high else ")"
        raise ValueError(f"{name} must lie in {lo}0, 1{hi}, got {value}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Validate a probability in ``[0, 1]`` (both endpoints allowed)."""
    return check_fraction(value, name, inclusive_low=True, inclusive_high=True)
