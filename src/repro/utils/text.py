"""Plain-text report formatting.

The experiment harness regenerates the paper's tables and figures as text
(tables for tables, aligned numeric series / ASCII histograms for figures) so
that no plotting dependency is required.  These helpers produce the formatted
output used by ``repro.experiments.report`` and the benchmark harness.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 *, title: str | None = None, float_fmt: str = "{:.3g}") -> str:
    """Render a list of rows as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; each row must have ``len(headers)`` entries.  Floats
        are formatted with ``float_fmt``, everything else with ``str``.
    title:
        Optional line printed above the table.
    float_fmt:
        Format string applied to float cells.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(cells)).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_series(x: Sequence[object], y: Sequence[float], *, x_name: str = "x",
                  y_name: str = "y", title: str | None = None) -> str:
    """Render an ``(x, y)`` series as a two-column table (used for figure data)."""
    if len(x) != len(y):
        raise ValueError(f"x and y must have the same length, got {len(x)} and {len(y)}")
    return format_table([x_name, y_name], zip(x, y), title=title)


def format_histogram(bin_edges: Sequence[float], counts: Sequence[float], *,
                     title: str | None = None, width: int = 40) -> str:
    """Render a histogram as rows of ``[lo, hi)  count  bar`` with ASCII bars."""
    if len(bin_edges) != len(counts) + 1:
        raise ValueError(
            f"expected len(bin_edges) == len(counts) + 1, got {len(bin_edges)} and {len(counts)}"
        )
    peak = max(counts) if counts and max(counts) > 0 else 1.0
    rows = []
    for i, count in enumerate(counts):
        lo, hi = bin_edges[i], bin_edges[i + 1]
        bar = "#" * int(round(width * (count / peak)))
        rows.append((f"[{lo:.3g}, {hi:.3g})", count, bar))
    return format_table(["bin", "count", "histogram"], rows, title=title)
