"""Retry-with-exponential-backoff for transient failures.

The report store and the evaluation scheduler touch shared state — files on
a (possibly networked) filesystem, worker process pools — where failures are
often *transient*: an NFS server hiccups, a filesystem returns ``EIO`` once,
a pool worker is OOM-killed.  :func:`retry_transient` is the single policy
used everywhere such an operation is retried:

* **Exponential backoff** — the delay doubles per attempt, capped at
  ``max_delay``, so a persistent failure backs off instead of hammering.
* **Bounded, seeded jitter** — each delay is stretched by up to 25%% drawn
  from a seeded :class:`random.Random`, decorrelating workers that fail at
  the same instant (e.g. ten shard workers hitting one NFS hiccup) while
  staying deterministic for tests: the jitter sequence is a pure function of
  the seed and the call order, never of wall time.  The default stream is
  **thread-local**: every thread draws from its own seeded generator, so
  concurrent retries (server worker threads, the evaluation service loop)
  neither race on shared RNG state nor perturb each other's schedules —
  each thread's jitter stays a pure function of the seed and *that
  thread's* call order.
* **Immediate give-up classes** — ``give_up_on`` exceptions re-raise at
  once.  ``FileNotFoundError`` is the canonical member: a missing store
  entry is a *miss*, not a transient fault, and must not eat three backoff
  delays before saying so.

Exhausting ``attempts`` re-raises the last error unchanged, so callers'
``except`` clauses keep working whether or not retries happened.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional, Tuple, Type, TypeVar

T = TypeVar("T")

#: Fraction of each backoff delay that jitter may add (bounded above).
_JITTER_FRACTION = 0.25

#: Seed of the default jitter streams (used when no rng is supplied).
_JITTER_SEED = 0x7E7A11

#: Seed handed to each thread's stream on first use (``reset_jitter_rng``
#: updates it for threads that have not drawn yet).
_thread_seed = _JITTER_SEED

#: Thread-local storage of the default jitter stream.  A single module-wide
#: ``random.Random`` is not safe for concurrent server threads: interleaved
#: calls race on the shared Mersenne state and make each call-site's backoff
#: sequence depend on what *other* threads happened to retry.
_local = threading.local()


def _default_rng() -> random.Random:
    """This thread's default jitter stream (created seeded on first use)."""
    rng = getattr(_local, "rng", None)
    if rng is None:
        rng = _local.rng = random.Random(_thread_seed)
    return rng


def reset_jitter_rng(seed: int = _JITTER_SEED) -> None:
    """Re-seed the default jitter stream (tests pin determinism with it).

    Resets the *calling thread's* stream immediately and records ``seed`` as
    the one future threads start their streams from.
    """
    global _thread_seed
    _thread_seed = seed
    _local.rng = random.Random(seed)


def backoff_delays(attempts: int, *, base_delay: float, max_delay: float,
                   rng: Optional[random.Random] = None) -> list:
    """The jittered delay schedule ``retry_transient`` sleeps between tries.

    Exposed separately so tests (and docs) can state the policy exactly:
    ``delay_i = min(max_delay, base_delay * 2**i) * (1 + U_i)`` with
    ``U_i ~ Uniform[0, 0.25)`` drawn from the seeded stream.
    """
    rng = rng if rng is not None else _default_rng()
    return [min(max_delay, base_delay * (2 ** i))
            * (1.0 + _JITTER_FRACTION * rng.random())
            for i in range(max(0, attempts - 1))]


def retry_transient(operation: Callable[[], T], *,
                    attempts: int = 4,
                    base_delay: float = 0.02,
                    max_delay: float = 1.0,
                    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
                    give_up_on: Tuple[Type[BaseException], ...] = (),
                    rng: Optional[random.Random] = None,
                    sleep: Callable[[float], None] = time.sleep,
                    on_retry: Optional[Callable[[BaseException, int], None]] = None,
                    ) -> T:
    """Call ``operation()`` until it succeeds or ``attempts`` are exhausted.

    Parameters
    ----------
    operation:
        Zero-argument callable; its return value is passed through.
    attempts:
        Total tries (the first call counts).  ``attempts=1`` disables retry.
    base_delay / max_delay:
        Backoff schedule bounds in seconds (see :func:`backoff_delays`).
    retry_on:
        Exception classes treated as transient.
    give_up_on:
        Subclasses of ``retry_on`` members that re-raise immediately
        (checked first) — e.g. ``FileNotFoundError`` under ``OSError``.
    rng / sleep:
        Injection points: a private jitter stream and a fake sleeper keep
        tests deterministic and instant.
    on_retry:
        Optional callback ``(error, attempt_index)`` invoked before each
        backoff sleep — the hook retry counters hang off.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    delays = backoff_delays(attempts, base_delay=base_delay,
                            max_delay=max_delay, rng=rng)
    for attempt in range(attempts):
        try:
            return operation()
        except give_up_on:
            raise
        except retry_on as error:
            if attempt == attempts - 1:
                raise
            if on_retry is not None:
                on_retry(error, attempt)
            sleep(delays[attempt])
    raise AssertionError("unreachable")  # pragma: no cover
