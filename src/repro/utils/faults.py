"""Deterministic fault injection for robustness tests and CLI drills.

The sharded sweep protocol is built to survive crashed workers, transient
I/O errors, and corrupt store entries — claims that are only worth anything
if they are *exercised*.  This module is the single switchboard every layer
consults to inject those faults on demand, in-process (tests) or across
process boundaries (CI smoke runs, the kill-resume acceptance test) via the
``REPRO_FAULTS`` environment variable::

    REPRO_FAULTS="store.load=2,shard.kill=2" python -m repro sweep ...

The spec is a comma-separated list of ``site=budget`` pairs.  Each budget
counts *firings*: once a site's budget is exhausted the fault disarms and
the system must behave as if it never existed (that is the whole point —
artifacts must be byte-identical with and without transient faults).

Sites
-----
``store.load`` / ``store.store``
    Raise a transient :class:`OSError` from the store's read/write path,
    inside the retry wrapper — each firing consumes one retry attempt.
``store.corrupt``
    Truncate the entry file just written, simulating a torn write that
    slipped past ``os.replace`` (e.g. pre-crash page-cache loss).  The next
    reader must quarantine it and treat the key as a miss.
``shard.kill``
    ``SIGKILL`` this process immediately after it *claims* its Nth grid
    cell — a worker dying mid-evaluation while holding a lease, the
    worst-case input to the reclaim protocol.  (``kill -9``: no handlers,
    no cleanup, the lease file stays behind.)
``heartbeat.stall``
    Make lease heartbeat renewal a silent no-op, simulating a wedged
    worker: alive, holding leases, never making progress.  Survivors must
    observe the stalled heartbeat and reclaim.  (Stays armed while its
    budget is positive; it does not decrement per renewal skipped.)
``corpus.fetch``
    Raise a transient :class:`OSError` from the corpus cache's download
    path, before the transport is even consulted — a dead network.  The
    cache must degrade to an already-installed copy with a warning, or
    fail with a clear error when the matrix is absent everywhere.
``corpus.corrupt``
    Truncate a completed corpus download before SHA-256 verification — a
    torn transfer.  Verification must quarantine it and re-fetch.

Tests install an injector programmatically with :func:`set_injector`; the
environment is only read once, lazily, in processes that never called it.
"""

from __future__ import annotations

import os
import signal
from typing import Dict, Mapping, Optional

#: Environment variable holding the fault spec for spawned processes.
ENV_VAR = "REPRO_FAULTS"

#: Sites that stay armed (budget is a flag, not a countdown).
_PERSISTENT_SITES = frozenset({"heartbeat.stall"})

_KNOWN_SITES = frozenset({
    "store.load", "store.store", "store.corrupt", "shard.kill",
    "heartbeat.stall", "corpus.fetch", "corpus.corrupt",
})


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec that does not parse or names unknown sites."""


class FaultInjector:
    """Budgeted fault switchboard (see module docstring for the sites)."""

    def __init__(self, budgets: Optional[Mapping[str, int]] = None):
        budgets = dict(budgets or {})
        unknown = sorted(set(budgets) - _KNOWN_SITES)
        if unknown:
            raise FaultSpecError(
                f"unknown fault site(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(_KNOWN_SITES))}")
        self._budgets: Dict[str, int] = {
            site: int(count) for site, count in budgets.items() if count > 0}
        #: Firings per site, for assertions ("both injected faults fired").
        self.fired: Dict[str, int] = {}

    @classmethod
    def from_spec(cls, spec: str) -> "FaultInjector":
        """Parse ``"site=budget,site=budget"`` (whitespace tolerated)."""
        budgets: Dict[str, int] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            site, eq, count = part.partition("=")
            try:
                budgets[site.strip()] = int(count) if eq else 1
            except ValueError:
                raise FaultSpecError(
                    f"bad fault budget {part!r}; expected site=N") from None
        return cls(budgets)

    # ------------------------------------------------------------------ #
    def armed(self, site: str) -> bool:
        """Whether ``site`` still has budget (without consuming any)."""
        return self._budgets.get(site, 0) > 0

    def consume(self, site: str) -> bool:
        """Spend one firing of ``site``; True when the fault should happen."""
        if not self.armed(site):
            return False
        if site not in _PERSISTENT_SITES:
            self._budgets[site] -= 1
        self.fired[site] = self.fired.get(site, 0) + 1
        return True

    # --- site-specific helpers, called from the instrumented layers ----- #
    def maybe_raise(self, site: str) -> None:
        """Raise an injected transient :class:`OSError` while budgeted."""
        if self.consume(site):
            raise OSError(f"injected transient fault at {site} "
                          f"(firing #{self.fired[site]})")

    def maybe_corrupt(self, path, site: str = "store.corrupt") -> bool:
        """Truncate the file at ``path`` to half, if ``site`` fires."""
        if not self.consume(site):
            return False
        data = path.read_bytes()
        path.write_bytes(data[:max(1, len(data) // 2)])
        return True

    def count_claimed_cell(self) -> None:
        """``SIGKILL`` this process when the ``shard.kill`` budget hits zero.

        Called by the shard runner right after each successful lease claim:
        a budget of N kills the worker while it holds the lease on its Nth
        cell, before the cell's result reaches the store.
        """
        if not self.armed("shard.kill"):
            return
        self._budgets["shard.kill"] -= 1
        if self._budgets["shard.kill"] == 0:
            self.fired["shard.kill"] = self.fired.get("shard.kill", 0) + 1
            os.kill(os.getpid(), signal.SIGKILL)

    def heartbeat_stalled(self) -> bool:
        """Whether lease renewal should silently do nothing."""
        return self.consume("heartbeat.stall")


#: The inert injector: every query answers "no fault".
_NULL = FaultInjector()

_active: Optional[FaultInjector] = None


def active() -> FaultInjector:
    """The process-wide injector (lazily parsed from ``REPRO_FAULTS``)."""
    global _active
    if _active is None:
        spec = os.environ.get(ENV_VAR, "")
        _active = FaultInjector.from_spec(spec) if spec.strip() else _NULL
    return _active


def set_injector(injector: Optional[FaultInjector]) -> None:
    """Install ``injector`` process-wide; ``None`` re-reads the environment."""
    global _active
    _active = injector
