"""Shared utilities: deterministic RNG handling, validation helpers, text reports.

These helpers are intentionally small and dependency-free so that every other
subpackage (tensor substrate, tiling, buffers, accelerator model, experiments)
can rely on them without introducing import cycles.
"""

from repro.utils.rng import RandomState, resolve_rng
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.utils.text import format_table, format_histogram, format_series

__all__ = [
    "RandomState",
    "resolve_rng",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "format_table",
    "format_histogram",
    "format_series",
]
