"""A pure-Python Gustavson (row-wise) SpMSpM reference implementation.

The accelerator model is analytical — it never multiplies numbers — so the
library needs an independent functional reference to check that (a) the
operation counting in :mod:`repro.tensor.einsum` is exact and (b) the SciPy
product used elsewhere agrees with a from-scratch implementation.  This module
is that reference: simple, slow, and obviously correct.
"""

from __future__ import annotations

from typing import Dict

from repro.tensor.sparse import SparseMatrix


def gustavson_spmspm(a: SparseMatrix, b: SparseMatrix) -> SparseMatrix:
    """Multiply two sparse matrices row by row (Gustavson's algorithm).

    For each row ``i`` of A, every nonzero ``A[i, k]`` is combined with row
    ``k`` of B, accumulating partial sums into a per-row hash map — the same
    algorithm GAMMA accelerates in hardware.
    """
    if a.num_cols != b.num_rows:
        raise ValueError(
            f"inner dimensions do not match: {a.num_cols} vs {b.num_rows}"
        )
    a_csr = a.csr
    b_csr = b.csr
    rows_out = []
    cols_out = []
    vals_out = []
    for i in range(a.num_rows):
        accumulator: Dict[int, float] = {}
        for idx in range(a_csr.indptr[i], a_csr.indptr[i + 1]):
            k = int(a_csr.indices[idx])
            a_val = float(a_csr.data[idx])
            for jdx in range(b_csr.indptr[k], b_csr.indptr[k + 1]):
                j = int(b_csr.indices[jdx])
                accumulator[j] = accumulator.get(j, 0.0) + a_val * float(b_csr.data[jdx])
        for j, value in accumulator.items():
            if value != 0.0:
                rows_out.append(i)
                cols_out.append(j)
                vals_out.append(value)
    return SparseMatrix.from_coo(rows_out, cols_out, vals_out,
                                 (a.num_rows, b.num_cols),
                                 name=f"{a.name}@{b.name} (gustavson)")


def multiply_count(a: SparseMatrix, b: SparseMatrix) -> int:
    """Count scalar multiplications performed by Gustavson's algorithm.

    This equals the number of *effectual* multiplications an ideal sparse
    accelerator performs and is used to validate
    :func:`repro.tensor.einsum.count_spmspm_operations`.
    """
    if a.num_cols != b.num_rows:
        raise ValueError(
            f"inner dimensions do not match: {a.num_cols} vs {b.num_rows}"
        )
    a_csr = a.csr
    b_row_occ = b.row_occupancies()
    count = 0
    for i in range(a.num_rows):
        for idx in range(a_csr.indptr[i], a_csr.indptr[i + 1]):
            count += int(b_row_occ[int(a_csr.indices[idx])])
    return count
