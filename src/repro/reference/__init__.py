"""Reference (un-accelerated) implementations used as functional ground truth."""

from repro.reference.spmspm import gustavson_spmspm, multiply_count

__all__ = ["gustavson_spmspm", "multiply_count"]
