"""``python -m repro`` — list, run, and sweep the paper's experiments.

Subcommands
-----------

``list``
    Show every registered experiment (name, paper artifact, title).

``run``
    Regenerate figures/tables: pick experiments by name or ``--all``, choose
    the workload suite, pre-compute the shared evaluations on a worker pool,
    print each experiment's text rendering, and write one JSON artifact per
    experiment (plus a manifest) to the output directory.

``sweep``
    Run a grid over the overbooking target ``y`` and GLB/PE capacity scaling
    through the same scheduler, and write JSON + CSV artifacts.  Existing
    outputs are never overwritten without ``--force``; with ``--store DIR``
    every grid cell is persisted as it completes, and ``--resume`` finishes
    an interrupted grid recomputing only the missing cells.  ``--shard i/N``
    turns the sweep into one worker of a fault-tolerant cooperative job (see
    :mod:`repro.experiments.shard`): N workers launched with the same grid
    split the cells deterministically, claim them via lease files in the
    store, reclaim cells from crashed peers, and write no artifacts — run
    ``merge`` when they are done.

``merge``
    Verify a sharded grid is complete in the store and assemble the final
    ``sweep.json``/``sweep.csv`` — byte-identical to a serial ``sweep`` of
    the same grid.  Must be launched with the workers' exact grid arguments.

``status``
    Report a sharded grid's progress (stored / leased / missing cells)
    without evaluating or claiming anything.  Exits 0 when the grid is
    complete and ready to merge, 1 otherwise.

``search``
    Pareto design-space search: generationally expand a ``(y, GLB-scale,
    PE-scale)`` grid, prune dominated configurations, and write the
    traffic/energy frontier per kernel × workload (see
    :mod:`repro.experiments.search`).

``serve``
    Run the evaluation daemon (see :mod:`repro.server` and
    ``docs/SERVER.md``): ``run``, ``sweep`` and ``search`` become JSON
    endpoints over one shared scheduler + store, concurrent clients'
    requests are coalesced into shared evaluation passes, and results
    stream back as chunked JSON lines — byte-identical artifacts to the
    CLI path.

``store``
    Inspect (``store stats``), integrity-check (``store verify``) or
    garbage-collect (``store gc``) a persistent report store directory (see
    :mod:`repro.experiments.store`).  ``verify`` full-decodes every entry,
    quarantines corrupt ones, and with ``--clear`` empties the quarantine.

``corpus``
    Manage the real-world matrix cache (see :mod:`repro.tensor.corpus` and
    ``docs/CORPUS.md``): ``corpus list`` shows the known DLMC/SuiteSparse
    matrices and their install state, ``corpus fetch`` downloads/verifies/
    installs them, ``corpus verify`` re-hashes the installed files against
    their receipts (quarantining corruption), and ``corpus gc`` reclaims the
    re-fetchable tiers (downloads, quarantine).

``run``, ``sweep`` and ``search`` take a kernel axis (``--kernel``; Gram
SpMSpM, general SpMSpM, SpMM, SpMV, SDDMM — see :mod:`repro.tensor.kernels`),
can evaluate real MatrixMarket corpora (``--matrix path.mtx[.gz]``,
repeatable), corpus-managed real datasets (``--corpus
dataset:group/name,...`` with ``--corpus-manifest``/``--corpus-cache``; see
:mod:`repro.tensor.corpus`) or seeded sparsity-model workloads (``--synth
model:param=value,...``, repeatable; see :mod:`repro.tensor.synth`) instead
of the built-in suites, and accept ``--store DIR`` to serve/persist
evaluations through the on-disk report store.

Examples (the full reference with sample output lives in ``docs/CLI.md``)::

    python -m repro list
    python -m repro run --all
    python -m repro run fig7 fig8 --suite quick --workers 2
    python -m repro run fig7 --kernel spmm --suite quick
    python -m repro run table3 --suite quick        # all kernels, one table
    python -m repro run table4 --quick              # structure-skew ladder
    python -m repro run fig7 --matrix data/cage4.mtx.gz
    python -m repro run fig7 --corpus suitesparse:Williams/cant
    python -m repro run table5 --quick               # cross-corpus comparison
    python -m repro run fig7 --synth power_law_rows:alpha=2.1 --synth uniform
    python -m repro corpus list
    python -m repro corpus fetch suitesparse:Williams/cant
    python -m repro corpus verify
    python -m repro corpus gc
    python -m repro sweep --y 0.05,0.10,0.22 --glb-scales 0.5,1.0
    python -m repro sweep --kernel gram,spmm,spmv --suite quick
    python -m repro sweep --synth uniform --synth banded:bandwidth=24
    python -m repro sweep --suite quick --store .repro-store --resume
    python -m repro sweep --suite quick --store .repro-store --shard 1/4
    python -m repro status --suite quick --store .repro-store
    python -m repro merge --suite quick --store .repro-store
    python -m repro run fig14 --quick --store .repro-store
    python -m repro search --suite quick --generations 2 --store .repro-store
    python -m repro serve --port 8734 --store .repro-store
    python -m repro store stats --store .repro-store
    python -m repro store verify --store .repro-store --clear
    python -m repro store gc --store .repro-store
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.experiments import registry
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheduler import EvaluationScheduler
from repro.experiments.search import (
    DEFAULT_SURROGATE_BUDGET,
    format_frontier,
    search_frontier,
)
from repro.experiments.surrogate import parse_constraint
from repro.experiments.shard import (
    DEFAULT_LEASE_TTL,
    format_shard_stats,
    format_status,
    merge_shards,
    run_shard,
    shard_status,
)
from repro.experiments.store import (
    ReportStore,
    StoreError,
    format_stats,
    format_verify,
)
from repro.experiments.sweep import format_summaries, sweep_grid
from repro.server.service import DEFAULT_BATCH_WINDOW as SERVER_DEFAULT_BATCH_WINDOW
from repro.tensor import corpus as corpus_manager
from repro.tensor.kernels import kernel_names
from repro.tensor.suite import corpus_suite, default_suite, small_suite, synth_suite
from repro.tensor.synth import model_names, parse_synth_spec
from repro.utils.text import format_table


def _parse_floats(text: str) -> List[float]:
    try:
        return [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of numbers, got {text!r}") from None


def _parse_kernels(text: str) -> List[str]:
    kernels = [part.strip() for part in text.split(",") if part.strip()]
    unknown = [k for k in kernels if k not in kernel_names()]
    if unknown or not kernels:
        raise argparse.ArgumentTypeError(
            f"unknown kernel(s) {unknown or text!r}; "
            f"known: {', '.join(kernel_names())}")
    return kernels


def _parse_synth(text: str):
    try:
        return parse_synth_spec(text)
    except (KeyError, ValueError) as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _parse_constraint(text: str) -> str:
    try:
        return parse_constraint(text).label
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _parse_corpus(text: str) -> List[str]:
    try:
        return corpus_manager.parse_corpus_ids(text)
    except corpus_manager.CorpusError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _apply_corpus_cache(args: argparse.Namespace) -> None:
    """Export ``--corpus-cache`` so this process *and* forked scheduler
    workers resolve the same on-disk matrix cache."""
    if getattr(args, "corpus_cache", None) is not None:
        os.environ[corpus_manager.ENV_CACHE] = str(args.corpus_cache)


def _suite_for(args: argparse.Namespace):
    """The workload suite for ``run``/``sweep``: synth specs, corpus IDs,
    MatrixMarket files or a built-in."""
    if getattr(args, "synth", None):
        return synth_suite(args.synth)
    if getattr(args, "corpus", None):
        _apply_corpus_cache(args)
        ids = [entry for group in args.corpus for entry in group]
        return corpus_manager.corpus_workload_suite(
            ids, manifest=getattr(args, "corpus_manifest", None))
    if args.matrix:
        return corpus_suite([str(path) for path in args.matrix])
    return {"full": default_suite, "quick": small_suite}[args.suite]()


def _suite_label(args: argparse.Namespace) -> str:
    if getattr(args, "synth", None):
        return "synth"
    if getattr(args, "corpus", None) or args.matrix:
        return "corpus"
    return args.suite


def _store_for(args: argparse.Namespace) -> Optional[ReportStore]:
    """Open the persistent report store when ``--store DIR`` was given."""
    if getattr(args, "store", None) is None:
        return None
    return ReportStore(args.store)


def _add_store_argument(parser: argparse.ArgumentParser, *,
                        required: bool = False) -> None:
    parser.add_argument("--store", type=Path, default=None, required=required,
                        metavar="DIR",
                        help="persistent report store directory: completed "
                             "evaluations are served from it and new ones "
                             "persisted to it (created on first use)")


def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    """The corpus-selection flags shared by ``run``, ``sweep`` and ``search``."""
    parser.add_argument("--corpus", action="append", type=_parse_corpus,
                        default=None, metavar="DATASET:GROUP/NAME,...",
                        help="evaluate corpus-managed real matrices (DLMC / "
                             "SuiteSparse; comma-separated IDs with a sticky "
                             "dataset prefix, repeatable; overrides --suite "
                             "and --matrix; see docs/CORPUS.md)")
    parser.add_argument("--corpus-manifest", type=Path, default=None,
                        metavar="MANIFEST.json",
                        help="descriptor manifest overlaying the built-in "
                             "DLMC/SuiteSparse catalogs (pinned checksums, "
                             "file:// fixtures, private mirrors)")
    parser.add_argument("--corpus-cache", type=Path, default=None,
                        metavar="DIR",
                        help="matrix cache root (default: "
                             f"${corpus_manager.ENV_CACHE} or "
                             "~/.cache/repro/corpus)")


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The grid-shaping flags shared by ``sweep``, ``merge`` and ``status``.

    All three must agree on them — they define the grid's identity (its
    manifest signature), so a cooperative sweep's workers and its merge are
    launched with the same flags.
    """
    parser.add_argument("--y", type=_parse_floats, default=[0.05, 0.10, 0.22],
                        metavar="Y1,Y2,...",
                        help="overbooking targets (default: 0.05,0.10,0.22)")
    parser.add_argument("--glb-scales", type=_parse_floats, default=[1.0],
                        metavar="S1,S2,...",
                        help="GLB capacity scaling factors (default: 1.0)")
    parser.add_argument("--pe-scales", type=_parse_floats, default=[1.0],
                        metavar="S1,S2,...",
                        help="PE buffer scaling factors (default: 1.0)")
    parser.add_argument("--kernel", type=_parse_kernels, default=["gram"],
                        metavar="K1,K2,...", dest="kernels",
                        help="kernel grid dimension (comma-separated; "
                             f"known: {', '.join(kernel_names())}; "
                             "default: gram)")
    parser.add_argument("--suite", choices=("full", "quick"), default="full",
                        help="workload suite (default: full)")
    parser.add_argument("--matrix", action="append", type=Path, default=None,
                        metavar="PATH.mtx[.gz]",
                        help="use real MatrixMarket matrices instead of the "
                             "synthetic suite (repeatable; overrides --suite)")
    parser.add_argument("--synth", action="append", type=_parse_synth,
                        default=None, metavar="MODEL[:K=V,...]",
                        help="use seeded sparsity-model workloads — the "
                             "model/params columns land in the JSON/CSV "
                             "(repeatable; overrides --suite and --matrix; "
                             f"models: {', '.join(model_names())})")
    _add_corpus_arguments(parser)
    parser.add_argument("--workloads", default=None, metavar="W1,W2,...",
                        help="restrict to a comma-separated workload subset")


def _grid_kwargs(args: argparse.Namespace) -> dict:
    """The grid-shaping keyword arguments for sweep/shard/merge/status."""
    return {
        "y_values": args.y,
        "glb_scales": args.glb_scales,
        "pe_scales": args.pe_scales,
        "kernels": args.kernels,
        "workloads": _parse_workload_subset(args),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the figures/tables of the Tailors (MICRO 2023) "
                    "reproduction and run parameter sweeps.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run = subparsers.add_parser("run", help="run experiments, write artifacts")
    run.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                     help="experiment names (see 'list'); default with --all")
    run.add_argument("--all", action="store_true", dest="run_all",
                     help="run every registered experiment")
    run.add_argument("--suite", choices=("full", "quick"), default="full",
                     help="workload suite (default: full; quick also switches "
                          "to each experiment's fast parameter set)")
    run.add_argument("--quick", action="store_const", dest="suite",
                     const="quick", help="shorthand for --suite quick")
    run.add_argument("--matrix", action="append", type=Path, default=None,
                     metavar="PATH.mtx[.gz]",
                     help="evaluate real MatrixMarket matrices instead of the "
                          "synthetic suite (repeatable; overrides --suite)")
    run.add_argument("--synth", action="append", type=_parse_synth,
                     default=None, metavar="MODEL[:K=V,...]",
                     help="evaluate seeded sparsity-model workloads instead "
                          "of a built-in suite (repeatable; overrides --suite "
                          f"and --matrix; models: {', '.join(model_names())})")
    _add_corpus_arguments(run)
    run.add_argument("--kernel", choices=kernel_names(), default="gram",
                     help="kernel to evaluate the workloads under "
                          "(default: gram, the paper's A x A^T)")
    run.add_argument("--overbooking-target", type=float, default=0.10,
                     metavar="Y", help="ExTensor-OB target y (default: 0.10)")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="worker processes for the evaluation scheduler "
                          "(default: CPU count; 1 = serial)")
    run.add_argument("--no-batch", action="store_true",
                     help="evaluate one grid cell at a time instead of "
                          "through the vectorized batch engine (escape "
                          "hatch; results are bit-identical either way)")
    run.add_argument("--no-surrogate", action="store_true",
                     help="for search-driven experiments (fig14): evaluate "
                          "every candidate exactly instead of surrogate "
                          "ranking (escape hatch)")
    run.add_argument("--output-dir", type=Path, default=Path("artifacts"),
                     metavar="DIR",
                     help="where JSON artifacts are written (default: artifacts/)")
    run.add_argument("--no-artifacts", action="store_true",
                     help="print results only, write nothing")
    run.add_argument("--quiet", action="store_true",
                     help="suppress experiment text output (artifacts only)")
    _add_store_argument(run)

    sweep = subparsers.add_parser(
        "sweep", help="run a y / buffer-scaling grid, write JSON + CSV")
    _add_grid_arguments(sweep)
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes (default: CPU count; 1 = serial)")
    sweep.add_argument("--no-batch", action="store_true",
                       help="evaluate one grid cell at a time instead of "
                            "through the vectorized batch engine (escape "
                            "hatch; artifacts are byte-identical either way)")
    sweep.add_argument("--output-dir", type=Path, default=Path("artifacts"),
                       metavar="DIR",
                       help="artifact directory (default: artifacts/)")
    sweep.add_argument("--no-artifacts", action="store_true",
                       help="print the summary only, write nothing")
    sweep.add_argument("--force", action="store_true",
                       help="overwrite existing sweep.json/sweep.csv outputs "
                            "(without this, an existing output path is an "
                            "error)")
    sweep.add_argument("--resume", action="store_true",
                       help="finish an interrupted sweep: grid cells already "
                            "in the store are not re-evaluated (requires "
                            "--store; implies --force for the output files)")
    sweep.add_argument("--shard", default=None, metavar="I/N",
                       help="run as worker I of N in a fault-tolerant "
                            "cooperative sweep (requires --store; writes no "
                            "artifacts — run 'merge' with the same grid "
                            "flags once the workers are done)")
    sweep.add_argument("--lease-ttl", type=float, default=DEFAULT_LEASE_TTL,
                       metavar="SECONDS",
                       help="with --shard: how long a peer's lease heartbeat "
                            "may stay frozen before its cell is reclaimed "
                            f"(default: {DEFAULT_LEASE_TTL:g}s)")
    _add_store_argument(sweep)

    merge = subparsers.add_parser(
        "merge", help="assemble a completed sharded sweep into sweep.json + "
                      "sweep.csv (byte-identical to a serial sweep)")
    _add_grid_arguments(merge)
    merge.add_argument("--output-dir", type=Path, default=Path("artifacts"),
                       metavar="DIR",
                       help="artifact directory (default: artifacts/)")
    merge.add_argument("--no-artifacts", action="store_true",
                       help="print the summary only, write nothing")
    merge.add_argument("--force", action="store_true",
                       help="overwrite existing sweep.json/sweep.csv outputs")
    _add_store_argument(merge, required=True)

    status = subparsers.add_parser(
        "status", help="report a sharded sweep's progress (stored / leased / "
                       "missing cells); exits 0 when ready to merge")
    _add_grid_arguments(status)
    _add_store_argument(status, required=True)

    search = subparsers.add_parser(
        "search", help="Pareto design-space search over (y, GLB, PE) "
                       "configurations; writes frontier.json + frontier.csv")
    search.add_argument("--y", type=_parse_floats, default=[0.05, 0.10, 0.22],
                        metavar="Y1,Y2,...",
                        help="seed overbooking-target axis "
                             "(default: 0.05,0.10,0.22)")
    search.add_argument("--glb-scales", type=_parse_floats,
                        default=[0.5, 1.0, 2.0], metavar="S1,S2,...",
                        help="seed GLB capacity scaling axis "
                             "(default: 0.5,1.0,2.0)")
    search.add_argument("--pe-scales", type=_parse_floats,
                        default=[0.5, 1.0, 2.0], metavar="S1,S2,...",
                        help="seed PE buffer scaling axis "
                             "(default: 0.5,1.0,2.0)")
    search.add_argument("--generations", type=int, default=3, metavar="N",
                        help="search generations: the seed grid plus N-1 "
                             "rounds of axis refinement around the frontier "
                             "(default: 3)")
    search.add_argument("--kernel", type=_parse_kernels, default=["gram"],
                        metavar="K1,K2,...", dest="kernels",
                        help="kernels searched (comma-separated; "
                             f"known: {', '.join(kernel_names())}; "
                             "default: gram)")
    search.add_argument("--suite", choices=("full", "quick"), default="quick",
                        help="workload suite (default: quick — the full "
                             "suite times a large design space; use a store)")
    search.add_argument("--matrix", action="append", type=Path, default=None,
                        metavar="PATH.mtx[.gz]",
                        help="search over real MatrixMarket matrices instead "
                             "of a built-in suite (repeatable)")
    search.add_argument("--synth", action="append", type=_parse_synth,
                        default=None, metavar="MODEL[:K=V,...]",
                        help="search over seeded sparsity-model workloads — "
                             "the frontier is reported per model (repeatable; "
                             f"models: {', '.join(model_names())})")
    _add_corpus_arguments(search)
    search.add_argument("--workloads", default=None, metavar="W1,W2,...",
                        help="restrict to a comma-separated workload subset")
    search.add_argument("--constraint", action="append",
                        type=_parse_constraint, default=None,
                        metavar="METRIC<=BOUND",
                        help="keep only design points satisfying the bound "
                             "(repeatable; metrics: traffic (DRAM words), "
                             "energy (pJ), pe_area (PE buffer words); e.g. "
                             "--constraint 'traffic<=6e4')")
    search.add_argument("--surrogate-budget", type=float,
                        default=DEFAULT_SURROGATE_BUDGET, metavar="F",
                        help="fraction of remaining candidates exactly "
                             "evaluated per surrogate ranking round "
                             f"(default: {DEFAULT_SURROGATE_BUDGET})")
    search.add_argument("--no-surrogate", action="store_true",
                        help="rank nothing: exactly evaluate every candidate "
                             "in every generation (brute-force reference "
                             "path)")
    search.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes (default: CPU count; "
                             "1 = serial)")
    search.add_argument("--no-batch", action="store_true",
                        help="evaluate one design point at a time instead of "
                             "through the vectorized batch engine (escape "
                             "hatch; results are bit-identical either way)")
    search.add_argument("--output-dir", type=Path, default=Path("artifacts"),
                        metavar="DIR",
                        help="artifact directory (default: artifacts/)")
    search.add_argument("--no-artifacts", action="store_true",
                        help="print the frontier only, write nothing")
    search.add_argument("--force", action="store_true",
                        help="overwrite existing frontier.json/frontier.csv")
    _add_store_argument(search)

    serve = subparsers.add_parser(
        "serve", help="run the evaluation daemon: run/sweep/search as JSON "
                      "endpoints, concurrent clients coalesced into shared "
                      "scheduler passes (see docs/SERVER.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8734,
                       help="bind port; 0 picks a free one — the chosen "
                            "port is printed on stderr (default: 8734)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes per evaluation pass "
                            "(default: CPU count; 1 = serial)")
    serve.add_argument("--batch-window", type=float,
                       default=SERVER_DEFAULT_BATCH_WINDOW, metavar="SECONDS",
                       help="how long each pass waits for more clients to "
                            "coalesce with it (default: "
                            f"{SERVER_DEFAULT_BATCH_WINDOW:g}s; 0 disables)")
    serve.add_argument("--no-batch", action="store_true",
                       help="evaluate one cell at a time instead of through "
                            "the vectorized batch engine")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    _add_store_argument(serve)

    store = subparsers.add_parser(
        "store", help="inspect or garbage-collect a report store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    stats = store_sub.add_parser(
        "stats", help="scan the store: entries, bytes, kernels, schemas")
    _add_store_argument(stats, required=True)
    verify = store_sub.add_parser(
        "verify", help="full-decode every entry, quarantine the corrupt, "
                       "report the quarantine backlog")
    verify.add_argument("--clear", action="store_true",
                        help="empty quarantine/ after the scan")
    _add_store_argument(verify, required=True)
    gc = store_sub.add_parser(
        "gc", help="prune unreadable/old-schema entries and stale temp files")
    _add_store_argument(gc, required=True)

    corpus = subparsers.add_parser(
        "corpus", help="manage the real-world matrix cache (DLMC + "
                       "SuiteSparse; see docs/CORPUS.md)")
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)

    def _corpus_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--corpus-manifest", type=Path, default=None,
                         metavar="MANIFEST.json",
                         help="descriptor manifest overlaying the built-in "
                              "catalogs")
        sub.add_argument("--corpus-cache", type=Path, default=None,
                         metavar="DIR",
                         help="matrix cache root (default: "
                              f"${corpus_manager.ENV_CACHE} or "
                              "~/.cache/repro/corpus)")

    corpus_list = corpus_sub.add_parser(
        "list", help="list known matrices and their install state")
    corpus_list.add_argument("--dataset", choices=corpus_manager.KNOWN_DATASETS,
                             default=None,
                             help="restrict the listing to one dataset")
    _corpus_common(corpus_list)
    corpus_fetch = corpus_sub.add_parser(
        "fetch", help="download, verify and install matrices into the cache")
    corpus_fetch.add_argument("ids", nargs="+", type=_parse_corpus,
                              metavar="DATASET:GROUP/NAME,...",
                              help="matrix IDs (comma-separated, sticky "
                                   "dataset prefix)")
    corpus_fetch.add_argument("--refresh", action="store_true",
                              help="re-download even when a cached copy "
                                   "exists")
    corpus_fetch.add_argument("--offline", action="store_true",
                              help="refuse remote URLs (file:// manifests "
                                   "still work)")
    _corpus_common(corpus_fetch)
    corpus_verify = corpus_sub.add_parser(
        "verify", help="re-hash installed matrices against their install "
                       "receipts; corrupt files are quarantined")
    _corpus_common(corpus_verify)
    corpus_gc = corpus_sub.add_parser(
        "gc", help="reclaim the re-fetchable cache tiers (downloads, "
                   "quarantine); installed matrices are kept")
    _corpus_common(corpus_gc)
    return parser


# --------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------- #
def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        (experiment.name, experiment.artifact, experiment.title,
         "-" if experiment.needs_context else "none",
         experiment.kernel_axis)
        for experiment in registry.experiments()
    ]
    print(format_table(["name", "artifact", "title", "suite", "kernels"], rows,
                       title="Registered experiments"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.run_all:
        selected = registry.experiments()
    elif args.experiments:
        selected = [registry.get(name) for name in args.experiments]
    else:
        print("error: name at least one experiment or pass --all",
              file=sys.stderr)
        return 2

    quick = args.suite == "quick"
    params = {
        experiment.name: dict(experiment.quick_params) if quick else {}
        for experiment in selected
    }

    # The kernel(s) actually reflected in each experiment's results: report
    # consumers follow --kernel; matrix-direct experiments model a fixed
    # kernel and cross-kernel tables (table3) always evaluate their whole
    # declared family, both regardless of the flag (warn so artifacts are
    # never mislabeled).
    def effective_kernel(experiment):
        if not experiment.needs_context or not experiment.kernels:
            return None
        if "any" in experiment.kernels:
            return args.kernel
        if len(experiment.kernels) > 1:
            return "all"
        return experiment.kernels[0]

    for experiment in selected:
        effective = effective_kernel(experiment)
        if (experiment.needs_context and args.kernel != "gram"
                and effective != args.kernel):
            pinned = ",".join(experiment.kernels) if experiment.kernels else "no"
            print(f"[warning] {experiment.name} is pinned to kernel(s) "
                  f"{pinned}; --kernel {args.kernel} does not apply to it",
                  file=sys.stderr)
        if ((args.synth or args.matrix or args.corpus)
                and experiment.needs_context
                and not experiment.uses_context_suite):
            flag = ("--synth" if args.synth
                    else "--corpus" if args.corpus else "--matrix")
            print(f"[warning] {experiment.name} evaluates its own workload "
                  f"set; {flag} does not apply to it (only the architecture, "
                  f"overbooking target and seed carry over)", file=sys.stderr)
        # Experiments that schedule their own evaluations take the worker
        # budget as a parameter; thread --workers through so it is honored.
        if experiment.accepts_max_workers and args.workers is not None:
            params[experiment.name].setdefault("max_workers", args.workers)
        if experiment.accepts_use_surrogate and args.no_surrogate:
            params[experiment.name].setdefault("use_surrogate", False)
        # Corpus-evaluating experiments (table5) resolve dataset IDs through
        # a manifest; thread --corpus-manifest so private mirrors and the
        # offline fixtures reach them.
        if experiment.accepts_param("manifest") and args.corpus_manifest:
            params[experiment.name]["manifest"] = str(args.corpus_manifest)
    store = _store_for(args)
    if store is not None:
        for experiment in selected:
            # Same for the report store: self-scheduling experiments with a
            # "reports" store scope take it as a parameter.
            if experiment.accepts_store and experiment.store_scope == "reports":
                params[experiment.name].setdefault("store", store)
    _apply_corpus_cache(args)
    context = None
    if any(experiment.needs_context for experiment in selected):
        if args.matrix or args.synth or args.corpus:
            context = ExperimentContext(
                suite=_suite_for(args),
                overbooking_target=args.overbooking_target,
                kernel=args.kernel)
        else:
            context = ExperimentContext.for_suite(
                args.suite, overbooking_target=args.overbooking_target,
                kernel=args.kernel)

    scheduler = EvaluationScheduler(max_workers=args.workers, store=store,
                                    use_batch=not args.no_batch)
    start = time.perf_counter()
    if context is not None:
        stats = scheduler.prefetch_experiments(context, selected, params)
        if stats.computed:
            store_note = (f", {stats.store_hits} from the store"
                          if stats.store_hits else "")
            print(f"[scheduler] {stats.unique} evaluations requested, "
                  f"{stats.warm} warm{store_note}, {stats.computed} computed "
                  f"on {stats.workers} worker(s) in "
                  f"{time.perf_counter() - start:.2f}s", file=sys.stderr)
        elif stats.store_hits:
            print(f"[scheduler] all {stats.unique} evaluations served warm "
                  f"({stats.store_hits} from the report store)",
                  file=sys.stderr)
        else:
            print(f"[scheduler] all {stats.unique} evaluations served from "
                  f"the report memo", file=sys.stderr)

    output_dir: Optional[Path] = None if args.no_artifacts else args.output_dir
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)

    manifest = []
    for experiment in selected:
        run_start = time.perf_counter()
        result = experiment.run(context if experiment.needs_context else None,
                                **params[experiment.name])
        elapsed = time.perf_counter() - run_start
        if not args.quiet:
            print(experiment.format_result(result))
            print()
        if output_dir is not None:
            artifact_path = output_dir / f"{experiment.name}.json"
            payload = {
                "experiment": experiment.name,
                "artifact": experiment.artifact,
                "title": experiment.title,
                "suite": (_suite_label(args)
                          if experiment.needs_context else None),
                "kernel": effective_kernel(experiment),
                "overbooking_target": (args.overbooking_target
                                       if experiment.needs_context else None),
                # The store parameter is a live handle; record its path.
                "params": {key: (str(value.root)
                                 if isinstance(value, ReportStore) else value)
                           for key, value in params[experiment.name].items()},
                "seconds": round(elapsed, 4),
                "result": experiment.to_json(result),
            }
            artifact_path.write_text(json.dumps(payload, indent=2) + "\n")
            manifest.append({"experiment": experiment.name,
                             "artifact": experiment.artifact,
                             "path": artifact_path.name,
                             "seconds": round(elapsed, 4)})
        print(f"[{experiment.name}] {experiment.artifact} regenerated "
              f"in {elapsed:.2f}s", file=sys.stderr)

    if output_dir is not None:
        manifest_path = output_dir / "manifest.json"
        manifest_path.write_text(json.dumps({
            "suite": _suite_label(args),
            "overbooking_target": args.overbooking_target,
            "total_seconds": round(time.perf_counter() - start, 4),
            "experiments": manifest,
        }, indent=2) + "\n")
        print(f"wrote {len(manifest)} artifact(s) + manifest to {output_dir}/",
              file=sys.stderr)
    return 0


def _parse_workload_subset(args: argparse.Namespace) -> Optional[List[str]]:
    if not args.workloads:
        return None
    return [name.strip() for name in args.workloads.split(",") if name.strip()]


def _check_outputs_writable(args: argparse.Namespace,
                            filenames: List[str]) -> Optional[str]:
    """Refuse-before-computing: the path that would be clobbered, or None."""
    overwrite_ok = args.force or getattr(args, "resume", False)
    if args.no_artifacts or overwrite_ok:
        return None
    for filename in filenames:
        path = args.output_dir / filename
        if path.exists():
            return str(path)
    return None


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.resume and args.store is None:
        print("error: --resume requires --store (there is nothing to resume "
              "from without a persistent store)", file=sys.stderr)
        return 2
    if args.shard is not None:
        if args.store is None:
            print("error: --shard requires --store (the store is the "
                  "coordination substrate the workers share)",
                  file=sys.stderr)
            return 2
        start = time.perf_counter()
        stats = run_shard(
            _suite_for(args),
            shard=args.shard,
            store=_store_for(args),
            lease_ttl=args.lease_ttl,
            use_batch=not args.no_batch,
            **_grid_kwargs(args),
        )
        print(format_shard_stats(stats), file=sys.stderr)
        print(f"shard worker finished in "
              f"{time.perf_counter() - start:.2f}s", file=sys.stderr)
        return 0
    clobbered = _check_outputs_writable(args, ["sweep.json", "sweep.csv"])
    if clobbered is not None:
        print(f"error: {clobbered} already exists; pass --force to overwrite "
              f"it (or --resume to finish an interrupted sweep)",
              file=sys.stderr)
        return 2

    start = time.perf_counter()
    result = sweep_grid(
        _suite_for(args),
        y_values=args.y,
        glb_scales=args.glb_scales,
        pe_scales=args.pe_scales,
        kernels=args.kernels,
        workloads=_parse_workload_subset(args),
        max_workers=args.workers,
        store=_store_for(args),
        resume=args.resume,
        use_batch=not args.no_batch,
    )
    print(format_summaries(result))
    resumed = (f" ({result.schedule.store_hits} cell(s) resumed from the "
               f"store)" if result.schedule.store_hits else "")
    print(f"\nsweep of {len(result.points)} point(s) finished in "
          f"{time.perf_counter() - start:.2f}s{resumed}", file=sys.stderr)

    if not args.no_artifacts:
        args.output_dir.mkdir(parents=True, exist_ok=True)
        force = args.force or args.resume
        json_path = result.write_json(args.output_dir / "sweep.json",
                                      force=force)
        csv_path = result.write_csv(args.output_dir / "sweep.csv",
                                    force=force)
        print(f"wrote {json_path} and {csv_path}", file=sys.stderr)
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    clobbered = _check_outputs_writable(args, ["frontier.json", "frontier.csv"])
    if clobbered is not None:
        print(f"error: {clobbered} already exists; pass --force to overwrite",
              file=sys.stderr)
        return 2

    start = time.perf_counter()
    result = search_frontier(
        _suite_for(args),
        kernels=args.kernels,
        y_values=args.y,
        glb_scales=args.glb_scales,
        pe_scales=args.pe_scales,
        max_generations=args.generations,
        workloads=_parse_workload_subset(args),
        max_workers=args.workers,
        store=_store_for(args),
        use_batch=not args.no_batch,
        use_surrogate=not args.no_surrogate,
        surrogate_budget=args.surrogate_budget,
        constraints=args.constraint,
    )
    print(format_frontier(result))
    pruned = sum(stats.pruned_configs for stats in result.generations)
    pruned_note = f" ({pruned} configs skipped by the surrogate)" if pruned else ""
    print(f"\nsearch evaluated {len(result.points)} design points over "
          f"{len(result.generations)} generation(s){pruned_note} in "
          f"{time.perf_counter() - start:.2f}s", file=sys.stderr)

    if not args.no_artifacts:
        args.output_dir.mkdir(parents=True, exist_ok=True)
        json_path = result.write_json(args.output_dir / "frontier.json",
                                      force=args.force)
        csv_path = result.write_csv(args.output_dir / "frontier.csv",
                                    force=args.force)
        print(f"wrote {json_path} and {csv_path}", file=sys.stderr)
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    args.resume = False  # _check_outputs_writable probes it
    clobbered = _check_outputs_writable(args, ["sweep.json", "sweep.csv"])
    if clobbered is not None:
        print(f"error: {clobbered} already exists; pass --force to overwrite",
              file=sys.stderr)
        return 2

    start = time.perf_counter()
    result = merge_shards(
        _suite_for(args),
        store=ReportStore(args.store, create=False),
        **_grid_kwargs(args),
    )
    print(format_summaries(result))
    print(f"\nmerged {len(result.points)} point(s) from the store in "
          f"{time.perf_counter() - start:.2f}s", file=sys.stderr)

    if not args.no_artifacts:
        args.output_dir.mkdir(parents=True, exist_ok=True)
        json_path = result.write_json(args.output_dir / "sweep.json",
                                      force=args.force)
        csv_path = result.write_csv(args.output_dir / "sweep.csv",
                                    force=args.force)
        print(f"wrote {json_path} and {csv_path}", file=sys.stderr)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    status = shard_status(
        _suite_for(args),
        store=ReportStore(args.store, create=False),
        **_grid_kwargs(args),
    )
    print(format_status(status))
    return 0 if status.complete else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server.http import create_server
    from repro.server.http import serve as run_server

    store = _store_for(args)
    server = create_server(
        host=args.host, port=args.port, store=store,
        max_workers=args.workers, use_batch=not args.no_batch,
        batch_window=args.batch_window, verbose=args.verbose)
    host, port = server.server_address[:2]
    store_note = str(store.root) if store is not None else "none (in-memory)"
    print(f"[server] serving on http://{host}:{port} "
          f"(store: {store_note}); POST /shutdown or Ctrl-C to stop",
          file=sys.stderr, flush=True)
    run_server(server)
    print("[server] drained and stopped", file=sys.stderr)
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    # gc must be able to open a store written under another schema — it is
    # the tool that prunes such entries; stats checks the marker.  Neither
    # creates a store: a mistyped path is an error, not a new empty store.
    store = ReportStore(args.store, check_marker=args.store_command != "gc",
                        create=False)
    if args.store_command == "stats":
        print(format_stats(store.stats(), root=store.root))
        return 0
    if args.store_command == "verify":
        outcome = store.verify(clear=args.clear)
        print(format_verify(outcome, root=store.root))
        # Non-zero when something needs attention: corruption found this
        # pass, or a quarantine backlog left unexamined.
        return 1 if (outcome.quarantined or outcome.quarantine_backlog) else 0
    if args.store_command == "gc":
        outcome = store.gc()
        print(f"scanned {outcome.scanned} entr(ies): kept {outcome.kept}, "
              f"removed {outcome.removed_entries} stale entr(ies) and "
              f"{outcome.removed_temp_files} temp file(s), reclaimed "
              f"{outcome.reclaimed_bytes / 1024:.1f} KiB")
        return 0
    raise AssertionError(f"unhandled store command {args.store_command!r}")


def _cmd_corpus(args: argparse.Namespace) -> int:
    _apply_corpus_cache(args)
    cache = corpus_manager.CorpusCache(args.corpus_cache)
    catalog = corpus_manager.resolve_catalog(args.corpus_manifest)

    if args.corpus_command == "list":
        rows = []
        for descriptor in catalog:
            if args.dataset and descriptor.dataset != args.dataset:
                continue
            installed = cache.installed_path(descriptor)
            rows.append((descriptor.matrix_id, descriptor.format,
                         "yes" if installed is not None else "-",
                         "pinned" if descriptor.sha256 else "first-use"))
        print(format_table(["matrix", "format", "installed", "checksum"],
                           rows, title=f"Corpus catalog ({len(rows)} "
                                       f"matrices; cache: {cache.root})"))
        return 0
    if args.corpus_command == "fetch":
        ids = [entry for group in args.ids for entry in group]
        failures = 0
        for matrix_id in ids:
            descriptor = catalog.get(matrix_id)
            try:
                path = cache.fetch(descriptor, refresh=args.refresh,
                                   offline=args.offline or None)
            except corpus_manager.CorpusError as error:
                print(f"error: {error}", file=sys.stderr)
                failures += 1
                continue
            print(f"[corpus] {matrix_id} -> {path}")
        return 1 if failures else 0
    if args.corpus_command == "verify":
        outcome = cache.verify()
        print(f"checked {outcome.checked} matrice(s): {outcome.ok} ok, "
              f"{len(outcome.missing)} missing receipt(s), "
              f"{len(outcome.corrupt)} corrupt (quarantined)")
        for path in outcome.corrupt:
            print(f"  corrupt: {path}", file=sys.stderr)
        return 1 if outcome.corrupt else 0
    if args.corpus_command == "gc":
        outcome = cache.gc()
        print(f"removed {outcome.removed_downloads} cached download(s) and "
              f"{outcome.removed_quarantined} quarantined file(s), reclaimed "
              f"{outcome.reclaimed_bytes / 1024:.1f} KiB")
        return 0
    raise AssertionError(f"unhandled corpus command {args.corpus_command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run, "sweep": _cmd_sweep,
                "merge": _cmd_merge, "status": _cmd_status,
                "search": _cmd_search, "serve": _cmd_serve,
                "store": _cmd_store, "corpus": _cmd_corpus}
    try:
        return handlers[args.command](args)
    except StoreError as error:
        # Schema mismatches, corrupt entries, missing stores: user-facing
        # conditions with actionable messages, not tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except corpus_manager.CorpusError as error:
        # Unknown matrix IDs, unreachable mirrors with a cold cache, failed
        # checksums: likewise user-facing.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
