"""``python -m repro`` — list, run, and sweep the paper's experiments.

Subcommands
-----------

``list``
    Show every registered experiment (name, paper artifact, title).

``run``
    Regenerate figures/tables: pick experiments by name or ``--all``, choose
    the workload suite, pre-compute the shared evaluations on a worker pool,
    print each experiment's text rendering, and write one JSON artifact per
    experiment (plus a manifest) to the output directory.

``sweep``
    Run a grid over the overbooking target ``y`` and GLB/PE capacity scaling
    through the same scheduler, and write JSON + CSV artifacts.

Both ``run`` and ``sweep`` take a kernel axis (``--kernel``; Gram SpMSpM,
general SpMSpM, SpMM, SpMV, SDDMM — see :mod:`repro.tensor.kernels`) and can
evaluate real MatrixMarket corpora (``--matrix path.mtx[.gz]``, repeatable)
or seeded sparsity-model workloads (``--synth model:param=value,...``,
repeatable; see :mod:`repro.tensor.synth`) instead of the built-in suites.

Examples::

    python -m repro list
    python -m repro run --all
    python -m repro run fig7 fig8 --suite quick --workers 2
    python -m repro run fig7 --kernel spmm --suite quick
    python -m repro run table3 --suite quick        # all kernels, one table
    python -m repro run table4 --quick              # structure-skew ladder
    python -m repro run fig7 --matrix data/cage4.mtx.gz
    python -m repro run fig7 --synth power_law_rows:alpha=2.1 --synth uniform
    python -m repro sweep --y 0.05,0.10,0.22 --glb-scales 0.5,1.0
    python -m repro sweep --kernel gram,spmm,spmv --suite quick
    python -m repro sweep --synth uniform --synth banded:bandwidth=24
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.experiments import registry
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheduler import EvaluationScheduler
from repro.experiments.sweep import format_summaries, sweep_grid
from repro.tensor.kernels import kernel_names
from repro.tensor.suite import corpus_suite, default_suite, small_suite, synth_suite
from repro.tensor.synth import model_names, parse_synth_spec
from repro.utils.text import format_table


def _parse_floats(text: str) -> List[float]:
    try:
        return [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of numbers, got {text!r}") from None


def _parse_kernels(text: str) -> List[str]:
    kernels = [part.strip() for part in text.split(",") if part.strip()]
    unknown = [k for k in kernels if k not in kernel_names()]
    if unknown or not kernels:
        raise argparse.ArgumentTypeError(
            f"unknown kernel(s) {unknown or text!r}; "
            f"known: {', '.join(kernel_names())}")
    return kernels


def _parse_synth(text: str):
    try:
        return parse_synth_spec(text)
    except (KeyError, ValueError) as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _suite_for(args: argparse.Namespace):
    """The workload suite for ``run``/``sweep``: synth specs, corpus files or
    a built-in."""
    if getattr(args, "synth", None):
        return synth_suite(args.synth)
    if args.matrix:
        return corpus_suite([str(path) for path in args.matrix])
    return {"full": default_suite, "quick": small_suite}[args.suite]()


def _suite_label(args: argparse.Namespace) -> str:
    if getattr(args, "synth", None):
        return "synth"
    if args.matrix:
        return "corpus"
    return args.suite


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the figures/tables of the Tailors (MICRO 2023) "
                    "reproduction and run parameter sweeps.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run = subparsers.add_parser("run", help="run experiments, write artifacts")
    run.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                     help="experiment names (see 'list'); default with --all")
    run.add_argument("--all", action="store_true", dest="run_all",
                     help="run every registered experiment")
    run.add_argument("--suite", choices=("full", "quick"), default="full",
                     help="workload suite (default: full; quick also switches "
                          "to each experiment's fast parameter set)")
    run.add_argument("--quick", action="store_const", dest="suite",
                     const="quick", help="shorthand for --suite quick")
    run.add_argument("--matrix", action="append", type=Path, default=None,
                     metavar="PATH.mtx[.gz]",
                     help="evaluate real MatrixMarket matrices instead of the "
                          "synthetic suite (repeatable; overrides --suite)")
    run.add_argument("--synth", action="append", type=_parse_synth,
                     default=None, metavar="MODEL[:K=V,...]",
                     help="evaluate seeded sparsity-model workloads instead "
                          "of a built-in suite (repeatable; overrides --suite "
                          f"and --matrix; models: {', '.join(model_names())})")
    run.add_argument("--kernel", choices=kernel_names(), default="gram",
                     help="kernel to evaluate the workloads under "
                          "(default: gram, the paper's A x A^T)")
    run.add_argument("--overbooking-target", type=float, default=0.10,
                     metavar="Y", help="ExTensor-OB target y (default: 0.10)")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="worker processes for the evaluation scheduler "
                          "(default: CPU count; 1 = serial)")
    run.add_argument("--output-dir", type=Path, default=Path("artifacts"),
                     metavar="DIR",
                     help="where JSON artifacts are written (default: artifacts/)")
    run.add_argument("--no-artifacts", action="store_true",
                     help="print results only, write nothing")
    run.add_argument("--quiet", action="store_true",
                     help="suppress experiment text output (artifacts only)")

    sweep = subparsers.add_parser(
        "sweep", help="run a y / buffer-scaling grid, write JSON + CSV")
    sweep.add_argument("--y", type=_parse_floats, default=[0.05, 0.10, 0.22],
                       metavar="Y1,Y2,...",
                       help="overbooking targets (default: 0.05,0.10,0.22)")
    sweep.add_argument("--glb-scales", type=_parse_floats, default=[1.0],
                       metavar="S1,S2,...",
                       help="GLB capacity scaling factors (default: 1.0)")
    sweep.add_argument("--pe-scales", type=_parse_floats, default=[1.0],
                       metavar="S1,S2,...",
                       help="PE buffer scaling factors (default: 1.0)")
    sweep.add_argument("--kernel", type=_parse_kernels, default=["gram"],
                       metavar="K1,K2,...", dest="kernels",
                       help="kernel grid dimension (comma-separated; "
                            f"known: {', '.join(kernel_names())}; "
                            "default: gram)")
    sweep.add_argument("--suite", choices=("full", "quick"), default="full",
                       help="workload suite (default: full)")
    sweep.add_argument("--matrix", action="append", type=Path, default=None,
                       metavar="PATH.mtx[.gz]",
                       help="sweep over real MatrixMarket matrices instead of "
                            "the synthetic suite (repeatable; overrides "
                            "--suite)")
    sweep.add_argument("--synth", action="append", type=_parse_synth,
                       default=None, metavar="MODEL[:K=V,...]",
                       help="sweep over seeded sparsity-model workloads — the "
                            "model/params columns land in the JSON/CSV "
                            "(repeatable; overrides --suite and --matrix; "
                            f"models: {', '.join(model_names())})")
    sweep.add_argument("--workloads", default=None, metavar="W1,W2,...",
                       help="restrict to a comma-separated workload subset")
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes (default: CPU count; 1 = serial)")
    sweep.add_argument("--output-dir", type=Path, default=Path("artifacts"),
                       metavar="DIR",
                       help="artifact directory (default: artifacts/)")
    sweep.add_argument("--no-artifacts", action="store_true",
                       help="print the summary only, write nothing")
    return parser


# --------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------- #
def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        (experiment.name, experiment.artifact, experiment.title,
         "-" if experiment.needs_context else "none",
         experiment.kernel_axis)
        for experiment in registry.experiments()
    ]
    print(format_table(["name", "artifact", "title", "suite", "kernels"], rows,
                       title="Registered experiments"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.run_all:
        selected = registry.experiments()
    elif args.experiments:
        selected = [registry.get(name) for name in args.experiments]
    else:
        print("error: name at least one experiment or pass --all",
              file=sys.stderr)
        return 2

    quick = args.suite == "quick"
    params = {
        experiment.name: dict(experiment.quick_params) if quick else {}
        for experiment in selected
    }

    # The kernel(s) actually reflected in each experiment's results: report
    # consumers follow --kernel; matrix-direct experiments model a fixed
    # kernel and cross-kernel tables (table3) always evaluate their whole
    # declared family, both regardless of the flag (warn so artifacts are
    # never mislabeled).
    def effective_kernel(experiment):
        if not experiment.needs_context or not experiment.kernels:
            return None
        if "any" in experiment.kernels:
            return args.kernel
        if len(experiment.kernels) > 1:
            return "all"
        return experiment.kernels[0]

    for experiment in selected:
        effective = effective_kernel(experiment)
        if (experiment.needs_context and args.kernel != "gram"
                and effective != args.kernel):
            pinned = ",".join(experiment.kernels) if experiment.kernels else "no"
            print(f"[warning] {experiment.name} is pinned to kernel(s) "
                  f"{pinned}; --kernel {args.kernel} does not apply to it",
                  file=sys.stderr)
        if ((args.synth or args.matrix) and experiment.needs_context
                and not experiment.uses_context_suite):
            flag = "--synth" if args.synth else "--matrix"
            print(f"[warning] {experiment.name} evaluates its own workload "
                  f"set; {flag} does not apply to it (only the architecture, "
                  f"overbooking target and seed carry over)", file=sys.stderr)
        # Experiments that schedule their own evaluations take the worker
        # budget as a parameter; thread --workers through so it is honored.
        if experiment.accepts_max_workers and args.workers is not None:
            params[experiment.name].setdefault("max_workers", args.workers)
    context = None
    if any(experiment.needs_context for experiment in selected):
        if args.matrix or args.synth:
            context = ExperimentContext(
                suite=_suite_for(args),
                overbooking_target=args.overbooking_target,
                kernel=args.kernel)
        else:
            context = ExperimentContext.for_suite(
                args.suite, overbooking_target=args.overbooking_target,
                kernel=args.kernel)

    scheduler = EvaluationScheduler(max_workers=args.workers)
    start = time.perf_counter()
    if context is not None:
        stats = scheduler.prefetch_experiments(context, selected, params)
        if stats.computed:
            print(f"[scheduler] {stats.unique} evaluations requested, "
                  f"{stats.warm} warm, {stats.computed} computed on "
                  f"{stats.workers} worker(s) in "
                  f"{time.perf_counter() - start:.2f}s", file=sys.stderr)
        else:
            print(f"[scheduler] all {stats.unique} evaluations served from "
                  f"the report memo", file=sys.stderr)

    output_dir: Optional[Path] = None if args.no_artifacts else args.output_dir
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)

    manifest = []
    for experiment in selected:
        run_start = time.perf_counter()
        result = experiment.run(context if experiment.needs_context else None,
                                **params[experiment.name])
        elapsed = time.perf_counter() - run_start
        if not args.quiet:
            print(experiment.format_result(result))
            print()
        if output_dir is not None:
            artifact_path = output_dir / f"{experiment.name}.json"
            payload = {
                "experiment": experiment.name,
                "artifact": experiment.artifact,
                "title": experiment.title,
                "suite": (_suite_label(args)
                          if experiment.needs_context else None),
                "kernel": effective_kernel(experiment),
                "overbooking_target": (args.overbooking_target
                                       if experiment.needs_context else None),
                "params": params[experiment.name],
                "seconds": round(elapsed, 4),
                "result": experiment.to_json(result),
            }
            artifact_path.write_text(json.dumps(payload, indent=2) + "\n")
            manifest.append({"experiment": experiment.name,
                             "artifact": experiment.artifact,
                             "path": artifact_path.name,
                             "seconds": round(elapsed, 4)})
        print(f"[{experiment.name}] {experiment.artifact} regenerated "
              f"in {elapsed:.2f}s", file=sys.stderr)

    if output_dir is not None:
        manifest_path = output_dir / "manifest.json"
        manifest_path.write_text(json.dumps({
            "suite": _suite_label(args),
            "overbooking_target": args.overbooking_target,
            "total_seconds": round(time.perf_counter() - start, 4),
            "experiments": manifest,
        }, indent=2) + "\n")
        print(f"wrote {len(manifest)} artifact(s) + manifest to {output_dir}/",
              file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    workloads = None
    if args.workloads:
        workloads = [name.strip() for name in args.workloads.split(",")
                     if name.strip()]
    start = time.perf_counter()
    result = sweep_grid(
        _suite_for(args),
        y_values=args.y,
        glb_scales=args.glb_scales,
        pe_scales=args.pe_scales,
        kernels=args.kernels,
        workloads=workloads,
        max_workers=args.workers,
    )
    print(format_summaries(result))
    print(f"\nsweep of {len(result.points)} point(s) finished in "
          f"{time.perf_counter() - start:.2f}s", file=sys.stderr)

    if not args.no_artifacts:
        args.output_dir.mkdir(parents=True, exist_ok=True)
        json_path = result.write_json(args.output_dir / "sweep.json")
        csv_path = result.write_csv(args.output_dir / "sweep.csv")
        print(f"wrote {json_path} and {csv_path}", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run, "sweep": _cmd_sweep}
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
