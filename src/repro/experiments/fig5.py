"""Figs. 3 and 5: buffet vs. Tailors management of an overbooked tile.

Two artifacts are reproduced:

* the **operation-by-operation trace** of Fig. 5 — a Tailor with capacity 4
  and a FIFO-managed region of 2 slots processing the 6-element tile
  ``a…f``, reporting the FIFO offset, the physical buffer offset accessed and
  the buffer contents after every step;
* the **reuse comparison** of Fig. 3 — the number of parent fetches a buffet
  and a Tailor need to serve repeated scans of an overbooked tile (the buffet
  must drop and re-fill the whole tile every pass; the Tailor re-streams only
  the bumped tail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.reuse import ReuseReport, simulate_buffet_tile, simulate_tailors_tile
from repro.experiments.registry import register
from repro.core.tailors import Tailors, TailorsConfig
from repro.utils.text import format_table


@dataclass(frozen=True)
class TraceStep:
    """One row of the Fig. 5 operation table."""

    step: int
    operation: str
    tile_index: Optional[int]
    fifo_offset: int
    buffer_offset: Optional[int]
    contents: Tuple[Optional[str], ...]


@dataclass(frozen=True)
class Fig5Result:
    trace: List[TraceStep]
    buffet_report: ReuseReport
    tailors_report: ReuseReport

    @property
    def fetch_savings(self) -> float:
        """Factor by which Tailors reduces parent fetches vs. the buffet."""
        if self.tailors_report.parent_fetches == 0:
            return float("inf")
        return self.buffet_report.parent_fetches / self.tailors_report.parent_fetches


@register(name="fig5", artifact="Fig. 3/5", required_suite="none",
          title="buffet vs. Tailors management of an overbooked tile",
          kernels=())
def run(*, capacity: int = 4, fifo_region: int = 2,
        tile_occupancy: int = 20, num_passes: int = 3) -> Fig5Result:
    """Reproduce the Fig. 5 trace and a Fig. 3-style reuse comparison."""
    tailor = Tailors(TailorsConfig(capacity=capacity, fifo_region_size=fifo_region))
    tile = ["a", "b", "c", "d", "e", "f"]
    trace: List[TraceStep] = []
    step = 0

    def record(operation: str, tile_index: Optional[int],
               buffer_offset: Optional[int]) -> None:
        nonlocal step
        step += 1
        trace.append(TraceStep(
            step=step,
            operation=operation,
            tile_index=tile_index,
            fifo_offset=tailor.fifo_offset,
            buffer_offset=buffer_offset,
            contents=tuple(tailor.contents()),
        ))

    # Fill until the buffer is full (the figure starts at Fill(d)).
    for index in range(capacity):
        tailor.fill(tile[index])
        record(f"Fill({tile[index]})", index, index)
    # First traversal beyond the buffer: the tile overbooks.
    record("Read(3)", 3, tailor.offset_of(3))
    tailor.overwriting_fill(tile[4], index=4)
    record("OWFill(e)", 4, tailor.offset_of(4))
    record("Read(4)", 4, tailor.offset_of(4))
    tailor.overwriting_fill(tile[5], index=5)
    record("OWFill(f)", 5, tailor.offset_of(5))
    record("Read(5)", 5, tailor.offset_of(5))
    # Second traversal: the head of the tile is still resident ...
    record("Read(0)", 0, tailor.offset_of(0))
    record("Read(1)", 1, tailor.offset_of(1))
    # ... while the bumped tail is streamed again.
    tailor.overwriting_fill(tile[2], index=2)
    record("OWFill(c)", 2, tailor.offset_of(2))
    record("Read(2)", 2, tailor.offset_of(2))
    tailor.overwriting_fill(tile[3], index=3)
    record("OWFill(d)", 3, tailor.offset_of(3))

    buffet_report = simulate_buffet_tile(tile_occupancy, capacity, num_passes)
    tailors_report = simulate_tailors_tile(tile_occupancy, capacity, fifo_region, num_passes)
    return Fig5Result(trace=trace, buffet_report=buffet_report,
                      tailors_report=tailors_report)


def format_result(result: Fig5Result) -> str:
    trace_table = format_table(
        ["step", "operation", "tile index", "FIFO offset", "buffer offset", "buffer"],
        [
            (s.step, s.operation,
             "-" if s.tile_index is None else s.tile_index,
             s.fifo_offset,
             "-" if s.buffer_offset is None else s.buffer_offset,
             " ".join("_" if c is None else str(c) for c in s.contents))
            for s in result.trace
        ],
        title="Fig. 5: Tailors operation trace (capacity 4, FIFO region 2)",
    )
    reuse_table = format_table(
        ["idiom", "tile occupancy", "capacity", "passes", "parent fetches",
         "reuse fraction"],
        [
            (r.idiom, r.tile_occupancy, r.capacity, r.num_passes, r.parent_fetches,
             f"{r.reuse_fraction:.1%}")
            for r in (result.buffet_report, result.tailors_report)
        ],
        title="Fig. 3: parent fetches for an overbooked tile",
    )
    return trace_table + "\n\n" + reuse_table + (
        f"\n\nTailors reduces parent fetches by {result.fetch_savings:.2f}x"
    )
