"""Table 2: characteristics of the evaluated workloads.

The paper's Table 2 lists the dimensions and sparsity of each SuiteSparse
matrix.  The reproduction lists the same columns for the synthetic stand-ins —
both the original (paper) values and the realized values of the synthetic
workload, so the scaling factor is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.utils.text import format_table


@dataclass(frozen=True)
class Table2Row:
    """One workload's characteristics."""

    name: str
    category: str
    paper_rows: int
    paper_sparsity: float
    rows: int
    cols: int
    nnz: int
    sparsity: float


@dataclass(frozen=True)
class Table2Result:
    rows: List[Table2Row]

    def row(self, name: str) -> Table2Row:
        for entry in self.rows:
            if entry.name == name:
                return entry
        raise KeyError(name)


@register(name="table2", artifact="Table 2",
          title="workload characteristics", kernels=("gram",))
def run(context: ExperimentContext) -> Table2Result:
    """Collect the workload characteristics of every suite entry."""
    rows = []
    for spec in context.suite:
        matrix = context.matrix(spec.name)
        rows.append(Table2Row(
            name=spec.name,
            category=spec.category,
            paper_rows=spec.paper_rows,
            paper_sparsity=spec.paper_sparsity,
            rows=matrix.num_rows,
            cols=matrix.num_cols,
            nnz=matrix.nnz,
            sparsity=matrix.sparsity,
        ))
    return Table2Result(rows=rows)


def format_result(result: Table2Result) -> str:
    """Render the table in the paper's layout (plus synthetic columns)."""
    return format_table(
        ["Tensor", "Class", "Paper dims", "Paper sparsity",
         "Synthetic dims", "Synthetic nnz", "Synthetic sparsity"],
        [
            (r.name, r.category, f"{r.paper_rows}x{r.paper_rows}",
             f"{r.paper_sparsity:.6%}", f"{r.rows}x{r.cols}", r.nnz,
             f"{r.sparsity:.4%}")
            for r in result.rows
        ],
        title="Table 2: characteristics of the evaluated tensors",
    )
