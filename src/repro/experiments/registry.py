"""Registry of the paper's experiments (every figure and table).

Each experiment module declares itself with the :func:`register` decorator on
its ``run`` function::

    @register(name="fig7", artifact="Fig. 7",
              title="speedup over ExTensor-N", needs_reports=True)
    def run(context): ...

which replaces the hand-maintained table that used to live in
``experiments/__init__.py``: the registry *is* the list of experiments, and
anything driving them (the CLI, the scheduler, the completeness tests) asks it
instead of hard-coding module names.

An :class:`Experiment` bundles the spec the drivers need:

* ``name`` / ``artifact`` / ``title`` — identity and what paper artifact the
  experiment regenerates;
* ``required_suite`` — ``"any"`` for experiments that evaluate the workload
  suite, ``"none"`` for self-contained ones (the Fig. 5 trace);
* ``needs_reports`` — whether ``run`` consumes the per-variant
  :class:`~repro.model.stats.PerformanceReport`s of every suite workload (what
  the scheduler pre-computes in parallel);
* ``compute(context, **params)`` — the module's ``run`` function;
* ``format_result(result)`` / ``to_json(result)`` — rendering, resolved
  lazily from the defining module (``to_json`` falls back to a generic
  dataclass-aware converter);
* ``quick_params`` — parameter overrides that keep the experiment meaningful
  *and fast* on the three-workload quick suite (used by smoke tests and CI);
* ``store_scope`` — whether the experiment's evaluations flow through the
  persistent report store (:mod:`repro.experiments.store`): ``"reports"``
  for everything that evaluates per-variant reports (the CLI attaches
  ``--store`` to these), ``"none"`` for self-contained experiments with
  nothing cacheable on disk (the Fig. 5 trace).

:func:`discover` imports every experiment module exactly once so their
decorators run; every registry accessor calls it, so callers never need to.
"""

from __future__ import annotations

import dataclasses
import importlib
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

#: The experiment modules, in the paper's artifact order.  ``discover``
#: imports them; each registers itself via the decorator below.
EXPERIMENT_MODULES = (
    "table1", "table2", "table3", "table4", "table5",
    "fig1", "fig5", "fig7", "fig8", "fig9",
    "fig10", "fig11", "fig12", "fig13", "fig14",
)

_REGISTRY: Dict[str, "Experiment"] = {}
_DISCOVERED = False


def to_jsonable(value: Any) -> Any:
    """Convert an experiment result into JSON-serializable data.

    Handles (recursively) dataclasses — fields plus any cheap ``@property``
    aggregates they expose (the geomeans of Fig. 7/8, the MAEs of Fig. 11/12),
    numpy scalars and arrays, tuples and mappings.  Non-finite floats become
    strings so the artifact stays valid JSON.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(value):
            out[f.name] = to_jsonable(getattr(value, f.name))
        for attr_name, attr in vars(type(value)).items():
            if isinstance(attr, property) and attr_name not in out:
                try:
                    out[attr_name] = to_jsonable(getattr(value, attr_name))
                except Exception:  # a property needing arguments/state: skip
                    continue
        return out
    if isinstance(value, Mapping):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and not np.isfinite(value):
        return repr(value)
    return value


#: Result fields that are run-dependent *ephemera* — how the answer was
#: obtained, never part of the answer itself.  Artifacts must be a pure
#: function of the evaluation identity (suite, architecture, y, kernel,
#: workload grid), so anything that varies between a serial run, a resumed
#: run, and an N-shard run — scheduling statistics, lease/heartbeat state,
#: retry counters — is stripped by :func:`deterministic_payload`.  This is
#: the single place the identity-vs-ephemera split lives: sweep, search, and
#: the shard merge all serialize through it, which is what makes their
#: byte-identity guarantees (resumed == uninterrupted, merged == serial)
#: hold by construction instead of by per-module exclusion conventions.
EPHEMERAL_FIELDS = frozenset({
    "schedule",        # ScheduleStats: warm/cold/store-hit/pool-restart split
    "generations",     # per-generation ScheduleStats of the Pareto search
    "shard",           # which worker computed which cells
    "leases",          # live lease/claim state of a sharded run
    "heartbeat",       # lease heartbeat counters
    "retries",         # transient-I/O retry counters
})


def deterministic_payload(result: Any) -> Any:
    """``to_jsonable(result)`` minus every :data:`EPHEMERAL_FIELDS` key.

    Use this — not hand-rolled ``payload.pop(...)`` calls — wherever a
    result becomes a JSON artifact whose bytes must not depend on *how* the
    run was executed (serial vs. parallel vs. sharded vs. resumed).
    """
    payload = to_jsonable(result)
    if isinstance(payload, dict):
        for field_name in EPHEMERAL_FIELDS:
            payload.pop(field_name, None)
    return payload


@dataclass(frozen=True)
class Experiment:
    """Spec of one registered experiment (see the module docstring)."""

    name: str
    artifact: str
    title: str
    compute: Callable[..., Any] = field(repr=False, compare=False)
    module: str
    required_suite: str = "any"
    needs_reports: bool = False
    #: Whether ``run`` evaluates the *context's* workload suite.  ``table4``
    #: declares ``False``: it consumes the context only for its
    #: architecture/target/seed and evaluates its own synthetic structure
    #: ladder, so the CLI warns when ``--synth``/``--matrix`` cannot apply.
    uses_suite: bool = True
    quick_params: Mapping[str, Any] = field(default_factory=dict)
    #: Which kernels the experiment applies to: ``("any",)`` for experiments
    #: that consume per-variant reports (they follow the context's kernel
    #: axis), ``("gram",)`` for ones that model the Gram kernel's occupancy
    #: structure directly, the full family tuple for cross-kernel tables
    #: (table3 evaluates every kernel regardless of the context's), ``()``
    #: for self-contained experiments.
    kernels: tuple = ("any",)
    #: Persistent-store scope: ``"reports"`` when the experiment's
    #: evaluations are per-variant reports addressable by the canonical
    #: ``(suite token, architecture, y, kernel, workload)`` identity (so the
    #: on-disk store can serve/persist them), ``"none"`` when nothing it
    #: computes is report-shaped (Fig. 5's cycle-level trace).
    store_scope: str = "reports"

    @property
    def needs_context(self) -> bool:
        """Whether ``run`` takes an :class:`ExperimentContext`."""
        return self.required_suite != "none"

    @property
    def uses_context_suite(self) -> bool:
        """Whether the experiment evaluates the *context's* workload suite
        (declared via ``@register(..., uses_suite=False)`` to opt out)."""
        return self.needs_context and self.uses_suite

    def accepts_param(self, name: str) -> bool:
        """Whether ``run`` declares parameter ``name`` — how drivers decide
        which cross-cutting knobs (``--workers``, ``--store``,
        ``--no-surrogate``) an experiment can receive."""
        import inspect

        return name in inspect.signature(self.compute).parameters

    @property
    def accepts_max_workers(self) -> bool:
        """Whether ``run`` takes a ``max_workers`` parameter.

        Experiments that schedule their own evaluations (``table4`` batches
        a suite the CLI never sees) declare the parameter; drivers thread
        their worker budget through it so ``--workers`` is honored
        everywhere.
        """
        return self.accepts_param("max_workers")

    @property
    def accepts_store(self) -> bool:
        """Whether ``run`` takes a ``store`` parameter.

        Experiments that schedule their own evaluations (``fig14``'s
        generational search) accept the report store directly; drivers
        thread ``--store`` through it the same way ``--workers`` reaches
        ``max_workers``.
        """
        return self.accepts_param("store")

    @property
    def accepts_use_surrogate(self) -> bool:
        """Whether ``run`` takes a ``use_surrogate`` parameter (``fig14``'s
        generational search) — lets the CLI thread ``--no-surrogate``."""
        return self.accepts_param("use_surrogate")

    @property
    def kernel_axis(self) -> str:
        """Human-readable kernel applicability (the ``list`` column)."""
        if not self.kernels:
            return "-"
        if len(self.kernels) > 1:
            return "all"
        return self.kernels[0]

    def run(self, context=None, **params) -> Any:
        """Run the experiment (``context`` is ignored when not needed)."""
        if self.needs_context:
            if context is None:
                raise ValueError(f"experiment {self.name!r} requires a context")
            return self.compute(context, **params)
        return self.compute(**params)

    def run_quick(self, context=None) -> Any:
        """Run with the quick-suite parameter overrides (smoke tests, CI)."""
        return self.run(context, **dict(self.quick_params))

    def _module_attr(self, attr: str) -> Optional[Callable]:
        return getattr(sys.modules[self.module], attr, None)

    def evaluation_targets(self, context, **params) -> List[tuple]:
        """``(overbooking_target, workload)`` pairs this run will evaluate.

        The scheduler unions these across selected experiments and computes
        the cold ones in parallel before any experiment runs.  A module may
        refine the default (all suite workloads at the context's target) by
        defining ``evaluation_requests(context, **params)`` — Fig. 10 does, to
        announce its ``y`` grid.
        """
        hook = self._module_attr("evaluation_requests")
        if hook is not None and context is not None:
            return list(hook(context, **params))
        if self.needs_reports and context is not None:
            return [(context.overbooking_target, name)
                    for name in context.workload_names]
        return []

    def format_result(self, result: Any) -> str:
        """Render ``result`` as text via the defining module's formatter."""
        formatter = self._module_attr("format_result")
        if formatter is None:
            raise AttributeError(
                f"module {self.module} defines no format_result()")
        return formatter(result)

    def to_json(self, result: Any) -> Any:
        """Convert ``result`` for the JSON artifact.

        Uses the defining module's ``to_json`` when present, else the generic
        dataclass converter.
        """
        converter = self._module_attr("to_json")
        if converter is not None:
            return converter(result)
        return to_jsonable(result)


def register(*, name: str, artifact: str, title: str,
             required_suite: str = "any", needs_reports: bool = False,
             uses_suite: bool = True,
             quick_params: Optional[Mapping[str, Any]] = None,
             kernels: tuple = ("any",),
             store_scope: Optional[str] = None):
    """Class the decorated ``run`` function as the experiment ``name``.

    ``store_scope`` defaults to ``"reports"`` for context-consuming
    experiments and ``"none"`` for self-contained ones
    (``required_suite="none"``).
    """
    if required_suite not in ("any", "none"):
        raise ValueError(f"required_suite must be 'any' or 'none', "
                         f"got {required_suite!r}")
    if store_scope is None:
        store_scope = "none" if required_suite == "none" else "reports"
    if store_scope not in ("reports", "none"):
        raise ValueError(f"store_scope must be 'reports' or 'none', "
                         f"got {store_scope!r}")

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        if name in _REGISTRY and _REGISTRY[name].module != func.__module__:
            raise ValueError(f"experiment {name!r} already registered by "
                             f"{_REGISTRY[name].module}")
        _REGISTRY[name] = Experiment(
            name=name,
            artifact=artifact,
            title=title,
            compute=func,
            module=func.__module__,
            required_suite=required_suite,
            needs_reports=needs_reports,
            uses_suite=bool(uses_suite),
            quick_params=dict(quick_params or {}),
            kernels=tuple(kernels),
            store_scope=store_scope,
        )
        return func

    return decorate


def discover() -> None:
    """Import every experiment module so their ``@register`` decorators run."""
    global _DISCOVERED
    if _DISCOVERED:
        return
    package = __name__.rsplit(".", 1)[0]
    for module in EXPERIMENT_MODULES:
        importlib.import_module(f"{package}.{module}")
    _DISCOVERED = True


def _canonical_order(experiment: Experiment) -> tuple:
    # Sort by position in EXPERIMENT_MODULES (imports may happen in any
    # order — e.g. a test importing fig7 before discover() runs); experiments
    # from unlisted modules go last, in registration order.
    module = experiment.module.rsplit(".", 1)[-1]
    try:
        return (0, EXPERIMENT_MODULES.index(module))
    except ValueError:
        return (1, list(_REGISTRY).index(experiment.name))


def names() -> List[str]:
    """Registered experiment names, in the paper's artifact order."""
    return [experiment.name for experiment in experiments()]


def experiments() -> List[Experiment]:
    """All registered experiments, in the paper's artifact order."""
    discover()
    return sorted(_REGISTRY.values(), key=_canonical_order)


def get(name: str) -> Experiment:
    """The experiment registered as ``name`` (``KeyError`` with hint if not)."""
    discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"registered: {list(_REGISTRY)}") from None
