"""Fig. 10: speedup of ExTensor-OB over ExTensor-P as a function of ``y``.

The paper sweeps the overbooking probability from 0% (no tile may overbook)
to 100% (every tile overbooks) and reports the speedup over ExTensor-P
averaged across workloads: a rise up to roughly y = 22%, a plateau around the
chosen y = 10%, and a collapse toward y = 100% where every tile pays the
re-streaming penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.model.stats import geometric_mean
from repro.utils.text import format_series

#: The default sweep points (fractions of tiles allowed to overbook).
DEFAULT_SWEEP = (0.0, 0.05, 0.10, 0.15, 0.22, 0.30, 0.40, 0.50, 0.70, 0.85, 1.00)


@dataclass(frozen=True)
class Fig10Result:
    """Geometric-mean speedup over ExTensor-P at each swept ``y``."""

    y_values: List[float]
    speedups: List[float]
    workloads: List[str]

    @property
    def best_y(self) -> float:
        """The swept ``y`` with the highest mean speedup."""
        best_index = max(range(len(self.speedups)), key=lambda i: self.speedups[i])
        return self.y_values[best_index]

    def speedup_at(self, y: float) -> float:
        for value, speedup in zip(self.y_values, self.speedups):
            if abs(value - y) < 1e-9:
                return speedup
        raise KeyError(f"y={y} was not swept")


def evaluation_requests(context: ExperimentContext, *,
                        y_values: Sequence[float] = DEFAULT_SWEEP,
                        workloads: Sequence[str] | None = None):
    """Scheduler hook: the full ``y`` grid, plus the baseline at the context's y."""
    names = list(workloads) if workloads is not None else context.workload_names
    targets = [(context.overbooking_target, name) for name in names]
    targets.extend((float(y), name) for y in y_values for name in names)
    return targets


@register(name="fig10", artifact="Fig. 10",
          title="speedup of OB over P as a function of y", needs_reports=True,
          quick_params={"y_values": (0.0, 0.10, 0.30)})
def run(context: ExperimentContext, *, y_values: Sequence[float] = DEFAULT_SWEEP,
        workloads: Sequence[str] | None = None) -> Fig10Result:
    """Sweep ``y`` and measure the speedup of ExTensor-OB over ExTensor-P.

    ``workloads`` restricts the sweep to a subset of the suite (the default
    uses every workload, which is what the paper averages over).  Each swept
    ``y`` is evaluated through a derived context sharing this context's suite,
    so the sweep hits the process-wide report memo — including reports the
    parallel scheduler computed ahead of time.
    """
    names = list(workloads) if workloads is not None else context.workload_names
    prescient_cycles = {
        name: context.reports(name)[context.prescient_name].cycles for name in names
    }

    speedups: List[float] = []
    for y in y_values:
        swept = context.with_overbooking_target(float(y))
        ratios = []
        for name in names:
            report = swept.reports(name)[swept.overbooking_name]
            ratios.append(prescient_cycles[name] / report.cycles)
        speedups.append(geometric_mean(ratios))
    return Fig10Result(y_values=[float(y) for y in y_values],
                       speedups=speedups, workloads=names)


def format_result(result: Fig10Result) -> str:
    series = format_series(
        [f"{y:.0%}" for y in result.y_values],
        result.speedups,
        x_name="y (overbooked tiles)",
        y_name="speedup over ExTensor-P (geomean)",
        title="Fig. 10: ExTensor-OB speedup over ExTensor-P vs. overbooking probability",
    )
    return series + f"\n\nbest swept y: {result.best_y:.0%}"
