"""Fig. 9: impact of overbooking on DRAM traffic and data reuse.

Two panels are reproduced for the ExTensor-OB variant at y = 10%:

* **Fig. 9a** — the share of DRAM traffic spent streaming bumped data,
  relative to the baseline traffic of the same tiling with an infinitely
  large buffer (the paper reports a 26% average overhead);
* **Fig. 9b** — the percentage of data reused as a function of the percentage
  of data bumped, which the paper shows to be strongly (negatively)
  correlated, demonstrating that Tailors' efficacy depends on how much data
  is bumped rather than on particular sparsity patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.utils.text import format_table


@dataclass(frozen=True)
class ReuseRow:
    """Per-workload overbooking cost metrics (ExTensor-OB, y = 10%)."""

    workload: str
    overhead_fraction: float
    bumped_fraction: float
    data_reuse_fraction: float
    overbooking_rate: float


@dataclass(frozen=True)
class Fig9Result:
    rows: List[ReuseRow]

    @property
    def mean_overhead(self) -> float:
        return float(np.mean([r.overhead_fraction for r in self.rows]))

    @property
    def reuse_bumped_correlation(self) -> float:
        """Pearson correlation between bumped % and reuse % (expected < 0)."""
        bumped = np.array([r.bumped_fraction for r in self.rows])
        reuse = np.array([r.data_reuse_fraction for r in self.rows])
        if bumped.std() == 0 or reuse.std() == 0:
            return 0.0
        return float(np.corrcoef(bumped, reuse)[0, 1])

    def row(self, workload: str) -> ReuseRow:
        for entry in self.rows:
            if entry.workload == workload:
                return entry
        raise KeyError(workload)


@register(name="fig9", artifact="Fig. 9",
          title="streaming overhead and data reuse", needs_reports=True)
def run(context: ExperimentContext) -> Fig9Result:
    """Collect streaming-overhead and reuse statistics for ExTensor-OB."""
    rows = []
    for name in context.workload_names:
        report = context.reports(name)[context.overbooking_name]
        rows.append(ReuseRow(
            workload=name,
            overhead_fraction=report.traffic.dram_overhead_fraction,
            bumped_fraction=report.bumped_fraction,
            data_reuse_fraction=report.data_reuse_fraction,
            overbooking_rate=report.glb_overbooking_rate,
        ))
    return Fig9Result(rows=rows)


def format_result(result: Fig9Result) -> str:
    table = format_table(
        ["Workload", "Streaming overhead (9a)", "Bumped data % (9b x)",
         "Data reused % (9b y)", "Overbooked tiles %"],
        [
            (r.workload, f"{r.overhead_fraction:.1%}", f"{r.bumped_fraction:.1%}",
             f"{r.data_reuse_fraction:.1%}", f"{r.overbooking_rate:.0%}")
            for r in result.rows
        ],
        title="Fig. 9: overbooking overhead and data reuse (ExTensor-OB, y=10%)",
    )
    footer = (
        f"\n\naverage streaming overhead: {result.mean_overhead:.1%}"
        f"\ncorrelation(bumped %, reused %): {result.reuse_bumped_correlation:+.2f}"
    )
    return table + footer
