"""Table 1: buffer utilization vs. tiling tax of the four tiling strategies.

The paper's Table 1 is qualitative ("Very Low" / "High" / ...).  The
reproduction measures the two axes on the evaluation suite:

* *buffer utilization* — average fraction of the global buffer occupied while
  tiles are resident, averaged over workloads;
* *tiling tax* — preprocessing plus runtime operand-matching cost, expressed
  in elements traversed per operand nonzero (0 means no tax, 1 means one full
  extra traversal of the tensor, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.overbooking import NaiveTiler, OverbookingTiler, PrescientTiler
from repro.core.swiftiles import SwiftilesConfig
from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.tiling.position import position_space_tiling
from repro.utils.text import format_table


@dataclass(frozen=True)
class StrategyRow:
    """Measured adaptability/efficiency of one tiling strategy."""

    strategy: str
    mean_buffer_utilization: float
    mean_tiling_tax: float
    qualitative_utilization: str
    qualitative_tax: str


@dataclass(frozen=True)
class Table1Result:
    rows: List[StrategyRow]

    def row(self, strategy: str) -> StrategyRow:
        for entry in self.rows:
            if entry.strategy == strategy:
                return entry
        raise KeyError(strategy)


def _qualitative(value: float, thresholds: List[float], labels: List[str]) -> str:
    for threshold, label in zip(thresholds, labels):
        if value < threshold:
            return label
    return labels[-1]


@register(name="table1", artifact="Table 1",
          title="tiling strategies: utilization vs. tiling tax",
          kernels=("gram",))
def run(context: ExperimentContext) -> Table1Result:
    """Measure utilization and tax of the four strategies over the suite."""
    capacity = context.architecture.glb_capacity_words
    naive = NaiveTiler()
    prescient = PrescientTiler()
    overbooking = OverbookingTiler(
        SwiftilesConfig(overbooking_target=context.overbooking_target), rng=11)

    util = {"uniform shape": [], "prescient uniform shape": [],
            "uniform occupancy (PST)": [], "overbooking (this work)": []}
    tax = {key: [] for key in util}

    for name in context.workload_names:
        matrix = context.matrix(name)
        nnz = max(1, matrix.nnz)

        res_n = naive.tile(matrix, capacity)
        util["uniform shape"].append(res_n.buffer_utilization(capacity))
        tax["uniform shape"].append(res_n.tax.total_elements / nnz)

        res_p = prescient.tile(matrix, capacity)
        util["prescient uniform shape"].append(res_p.buffer_utilization(capacity))
        tax["prescient uniform shape"].append(res_p.tax.total_elements / nnz)

        pst = position_space_tiling(matrix, capacity, other_operand_nnz=matrix.nnz)
        util["uniform occupancy (PST)"].append(pst.buffer_utilization(capacity))
        tax["uniform occupancy (PST)"].append(pst.tax.total_elements / nnz)

        res_ob = overbooking.tile(matrix, capacity)
        util["overbooking (this work)"].append(res_ob.buffer_utilization(capacity))
        tax["overbooking (this work)"].append(res_ob.tax.total_elements / nnz)

    rows = []
    for strategy in util:
        mean_util = float(np.mean(util[strategy]))
        mean_tax = float(np.mean(tax[strategy]))
        rows.append(StrategyRow(
            strategy=strategy,
            mean_buffer_utilization=mean_util,
            mean_tiling_tax=mean_tax,
            qualitative_utilization=_qualitative(
                mean_util, [0.05, 0.3, 0.7], ["Very Low", "Low", "High", "Very High"]),
            qualitative_tax=_qualitative(
                mean_tax, [0.05, 2.0, 20.0], ["None", "Low", "High", "Very High"]),
        ))
    return Table1Result(rows=rows)


def format_result(result: Table1Result) -> str:
    return format_table(
        ["Tiling strategy", "Buffer utilization", "(qualitative)",
         "Tiling tax (elem/nnz)", "(qualitative)"],
        [
            (r.strategy, f"{r.mean_buffer_utilization:.1%}", r.qualitative_utilization,
             f"{r.mean_tiling_tax:.2f}", r.qualitative_tax)
            for r in result.rows
        ],
        title="Table 1: measured comparison of tiling strategies "
              "(utilization and tax averaged over the suite)",
    )
