"""Table 3 (extension): overbooking benefit across the kernel family.

The paper evaluates overbooking on a single kernel — the Gram SpMSpM.  The
kernel-pluggable workload layer (:mod:`repro.tensor.kernels`) makes the same
question answerable for every kernel: *how much of the overbooking win
survives when the streaming operand is a distinct sparse matrix (SpMSpM), a
dense feature factor (SpMM), a vector (SpMV), or when the sparse tensor only
samples a dense product (SDDMM)?*

For each kernel the experiment evaluates every suite workload on all three
variants (ExTensor-N / -P / -OB) and reports the geometric-mean speedups and
energy ratio plus the mean GLB overbooking rate — one row per kernel, in the
style of the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.model.stats import geometric_mean
from repro.tensor.kernels import kernel_names, kernel_spec
from repro.utils.text import format_table

#: Kernel order of the table: the paper's kernel first, then the extensions.
DEFAULT_KERNELS = kernel_names()


@dataclass(frozen=True)
class KernelRow:
    """Aggregated overbooking outcome of one kernel over the suite."""

    kernel: str
    einsum: str
    geomean_speedup_ob_vs_naive: float
    geomean_speedup_ob_vs_prescient: float
    geomean_energy_ratio_ob_vs_naive: float
    mean_glb_overbooking_rate: float
    mean_ob_bound_fraction_dram: float


@dataclass(frozen=True)
class Table3Result:
    """One :class:`KernelRow` per evaluated kernel."""

    workloads: List[str]
    overbooking_target: float
    rows: List[KernelRow]

    def row(self, kernel: str) -> KernelRow:
        for entry in self.rows:
            if entry.kernel == kernel:
                return entry
        raise KeyError(kernel)


@register(name="table3", artifact="Table 3",
          title="overbooking benefit across kernels", needs_reports=True,
          kernels=DEFAULT_KERNELS)
def run(context: ExperimentContext,
        kernels: Sequence[str] = DEFAULT_KERNELS) -> Table3Result:
    """Evaluate the suite under every kernel and aggregate per kernel."""
    rows: List[KernelRow] = []
    for kernel in kernels:
        ctx = context.with_kernel(kernel)
        speedups_n, speedups_p, energy_ratios, ob_rates, dram_bound = \
            [], [], [], [], []
        for name in ctx.workload_names:
            reports = ctx.reports(name)
            naive = reports[ctx.naive_name]
            prescient = reports[ctx.prescient_name]
            overbooking = reports[ctx.overbooking_name]
            speedups_n.append(overbooking.speedup_over(naive))
            speedups_p.append(overbooking.speedup_over(prescient))
            energy_ratios.append(overbooking.energy_ratio_over(naive))
            ob_rates.append(overbooking.glb_overbooking_rate)
            dram_bound.append(1.0 if overbooking.bound == "dram" else 0.0)
        rows.append(KernelRow(
            kernel=kernel,
            einsum=kernel_spec(kernel).einsum,
            geomean_speedup_ob_vs_naive=geometric_mean(speedups_n),
            geomean_speedup_ob_vs_prescient=geometric_mean(speedups_p),
            geomean_energy_ratio_ob_vs_naive=geometric_mean(energy_ratios),
            mean_glb_overbooking_rate=float(np.mean(ob_rates)),
            mean_ob_bound_fraction_dram=float(np.mean(dram_bound)),
        ))
    return Table3Result(
        workloads=list(context.workload_names),
        overbooking_target=context.overbooking_target,
        rows=rows,
    )


def evaluation_requests(context: ExperimentContext,
                        kernels: Sequence[str] = DEFAULT_KERNELS):
    """Announce the ``(y, workload, kernel)`` grid to the scheduler."""
    return [(context.overbooking_target, name, kernel)
            for kernel in kernels for name in context.workload_names]


def format_result(result: Table3Result) -> str:
    return format_table(
        ["kernel", "einsum", "OB/N speedup", "OB/P speedup", "OB/N energy",
         "GLB overbook rate", "DRAM-bound"],
        [
            (r.kernel, r.einsum,
             f"{r.geomean_speedup_ob_vs_naive:.2f}x",
             f"{r.geomean_speedup_ob_vs_prescient:.2f}x",
             f"{r.geomean_energy_ratio_ob_vs_naive:.2f}x",
             f"{r.mean_glb_overbooking_rate:.1%}",
             f"{r.mean_ob_bound_fraction_dram:.0%}")
            for r in result.rows
        ],
        title=(f"Table 3: overbooking benefit per kernel "
               f"(geomeans over {len(result.workloads)} workloads, "
               f"y={result.overbooking_target:.0%})"),
    )
