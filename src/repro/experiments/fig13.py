"""Fig. 13: tile-occupancy distributions before and after Swiftiles scaling.

For one workload (the paper uses amazon0312 with an 8 K-nonzero buffer and
y = 10%) three distributions are compared:

* the sampled distribution at the initial estimate ``T_initial``;
* that distribution linearly rescaled by Swiftiles (``T_target`` predicted);
* the distribution actually observed when tiling at ``T_target``.

The reproduction reports the three distributions as CDF tables plus the
quantile alignment at the ``y`` point, which is what the scaling step is
supposed to fix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.swiftiles import Swiftiles, SwiftilesConfig
from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.tiling.stats import OccupancyStats
from repro.utils.text import format_table


@dataclass(frozen=True)
class Fig13Result:
    """The three occupancy distributions and their y-quantile occupancies."""

    workload: str
    buffer_capacity: int
    target: float
    initial_size: float
    target_size: float
    initial_quantile: float
    predicted_quantile: float
    observed_quantile: float
    cdf_points: List[Tuple[float, float, float, float]]
    observed_overbooking_rate: float

    @property
    def prediction_alignment(self) -> float:
        """|predicted − observed| quantile occupancy, relative to the capacity."""
        return abs(self.predicted_quantile - self.observed_quantile) / self.buffer_capacity


@register(name="fig13", artifact="Fig. 13",
          title="occupancy distributions for one workload",
          quick_params={"buffer_capacity": 512}, kernels=("gram",))
def run(context: ExperimentContext, *, workload: str = "amazon0312",
        buffer_capacity: int = 8192, target: float = 0.10,
        num_cdf_points: int = 16) -> Fig13Result:
    """Compute the Fig. 13 distributions for one workload."""
    if workload not in context.suite:
        workload = context.workload_names[0]
    matrix = context.matrix(workload)

    estimator = Swiftiles(SwiftilesConfig(overbooking_target=target, sample_all_tiles=True))
    estimate = estimator.estimate(matrix, buffer_capacity)

    initial_stats = OccupancyStats(estimate.sampled_occupancies)
    predicted_stats = estimate.predicted_distribution()
    observed_rows = max(1, int(round(estimate.target_size / matrix.num_cols)))
    observed_stats = OccupancyStats(
        matrix.row_block_occupancies(min(observed_rows, matrix.num_rows)))

    top = max(initial_stats.max, predicted_stats.max, observed_stats.max)
    xs = np.linspace(0, top, num_cdf_points)
    cdf_points = []
    for x in xs:
        _, f_init = initial_stats.cdf([x])
        _, f_pred = predicted_stats.cdf([x])
        _, f_obs = observed_stats.cdf([x])
        cdf_points.append((float(x), float(f_init[0]), float(f_pred[0]), float(f_obs[0])))

    return Fig13Result(
        workload=matrix.name,
        buffer_capacity=buffer_capacity,
        target=target,
        initial_size=estimate.initial_size,
        target_size=estimate.target_size,
        initial_quantile=initial_stats.quantile_for_overbooking(target),
        predicted_quantile=predicted_stats.quantile_for_overbooking(target),
        observed_quantile=observed_stats.quantile_for_overbooking(target),
        cdf_points=cdf_points,
        observed_overbooking_rate=float(
            (observed_stats.occupancies > buffer_capacity).mean()),
    )


def format_result(result: Fig13Result) -> str:
    header = format_table(
        ["quantity", "value"],
        [
            ("workload", result.workload),
            ("buffer capacity (nonzeros)", result.buffer_capacity),
            ("target y", f"{result.target:.0%}"),
            ("T_initial (points)", f"{result.initial_size:.3g}"),
            ("T_target (points)", f"{result.target_size:.3g}"),
            ("Q_y at T_initial", f"{result.initial_quantile:.0f}"),
            ("Q_y predicted at T_target", f"{result.predicted_quantile:.0f}"),
            ("Q_y observed at T_target", f"{result.observed_quantile:.0f}"),
            ("observed overbooking rate", f"{result.observed_overbooking_rate:.1%}"),
        ],
        title="Fig. 13: Swiftiles distributions",
    )
    cdf = format_table(
        ["occupancy", "CDF @ T_initial", "CDF @ T_target (predicted)",
         "CDF @ T_target (observed)"],
        [
            (f"{x:.0f}", f"{a:.2f}", f"{b:.2f}", f"{c:.2f}")
            for x, a, b, c in result.cdf_points
        ],
        title="Cumulative distribution of tile occupancies",
    )
    return header + "\n\n" + cdf
