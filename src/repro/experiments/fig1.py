"""Fig. 1: tile-occupancy distribution of a fixed-size uniform-shape tiling.

The paper tiles a SuiteSparse tensor with a fixed (dense-worst-case) tile size
of 51.4 M points and observes that the maximum tile occupancy (31.6 K) is more
than three orders of magnitude smaller than the tile size, and that 90% of the
tiles hold less than 2 K nonzeros.  The reproduction performs the same
measurement on a suite workload: tile with a fixed square tile, report the
occupancy histogram and the headline percentiles, and compare them with the
uncompressed tile size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.tiling.stats import OccupancyStats
from repro.utils.text import format_histogram, format_table


@dataclass(frozen=True)
class Fig1Result:
    """Occupancy distribution of a fixed-size tiling of one workload."""

    workload: str
    tile_rows: int
    tile_cols: int
    tile_size: int
    num_tiles: int
    max_occupancy: int
    p90_occupancy: float
    p99_occupancy: float
    mean_occupancy: float
    histogram_counts: Tuple[int, ...]
    histogram_edges: Tuple[float, ...]

    @property
    def size_to_max_ratio(self) -> float:
        """Uncompressed tile size / maximum occupancy (≫ 1 for sparse tensors)."""
        if self.max_occupancy == 0:
            return float("inf")
        return self.tile_size / self.max_occupancy

    @property
    def max_to_p90_ratio(self) -> float:
        """Maximum occupancy / 90th-percentile occupancy (the paper reports >15×)."""
        if self.p90_occupancy == 0:
            return float("inf")
        return self.max_occupancy / self.p90_occupancy


@register(name="fig1", artifact="Fig. 1",
          title="occupancy distribution of fixed-size tiles",
          kernels=("gram",))
def run(context: ExperimentContext, *, workload: str | None = None,
        tile_fraction: float = 0.125, bins: int = 24) -> Fig1Result:
    """Measure the occupancy distribution of a fixed uniform-shape tiling.

    ``tile_fraction`` sets the tile edge as a fraction of the tensor edge
    (1/8 by default, giving an 8×8 grid of tiles like the paper's example).
    """
    if workload is None:
        # Pick the suite workload with the most skewed structure available:
        # prefer the road-network stand-in, else the first workload.
        names = context.workload_names
        workload = "roadNet-CA" if "roadNet-CA" in names else names[0]
    matrix = context.matrix(workload)

    tile_rows = max(1, int(matrix.num_rows * tile_fraction))
    tile_cols = max(1, int(matrix.num_cols * tile_fraction))
    occupancies = matrix.tile_occupancies(tile_rows, tile_cols, include_empty=True)
    stats = OccupancyStats(occupancies)
    counts, edges = stats.histogram(bins=bins)

    return Fig1Result(
        workload=workload,
        tile_rows=tile_rows,
        tile_cols=tile_cols,
        tile_size=tile_rows * tile_cols,
        num_tiles=int(occupancies.size),
        max_occupancy=int(stats.max),
        p90_occupancy=stats.percentile(90.0),
        p99_occupancy=stats.percentile(99.0),
        mean_occupancy=stats.mean,
        histogram_counts=tuple(int(c) for c in counts),
        histogram_edges=tuple(float(e) for e in edges),
    )


def format_result(result: Fig1Result) -> str:
    summary = format_table(
        ["quantity", "value"],
        [
            ("workload", result.workload),
            ("tile shape", f"{result.tile_rows} x {result.tile_cols}"),
            ("uncompressed tile size", result.tile_size),
            ("number of tiles", result.num_tiles),
            ("max tile occupancy", result.max_occupancy),
            ("90th percentile occupancy", f"{result.p90_occupancy:.0f}"),
            ("99th percentile occupancy", f"{result.p99_occupancy:.0f}"),
            ("mean occupancy", f"{result.mean_occupancy:.1f}"),
            ("tile size / max occupancy", f"{result.size_to_max_ratio:.1f}x"),
            ("max / 90th percentile", f"{result.max_to_p90_ratio:.1f}x"),
        ],
        title="Fig. 1: occupancy of fixed uniform-shape tiles",
    )
    histogram = format_histogram(
        list(result.histogram_edges), list(result.histogram_counts),
        title="Tile occupancy histogram")
    return summary + "\n\n" + histogram
