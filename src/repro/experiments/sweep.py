"""Parameter-sweep runner: grids over ``y`` and buffer scaling, scheduled.

The ROADMAP's scenario sweeps (overbooking target, GLB/PE capacity scaling,
kernels, suite subsets, sparsity models) all reduce to evaluating a suite
under a grid of ``(architecture, overbooking_target, kernel)`` configurations.
:func:`sweep_grid`
builds one :class:`~repro.experiments.runner.ExperimentContext` per grid
point, batches *all* their evaluation requests through the
:class:`~repro.experiments.scheduler.EvaluationScheduler` (one fan-out for
the whole grid, deduplicated against anything already evaluated), then
collects per-workload rows and per-point geometric-mean summaries from the
warm memo.

Results serialize to JSON (:meth:`SweepResult.write_json`) and CSV
(:meth:`SweepResult.write_csv`); both refuse to overwrite an existing file
unless ``force=True`` (the CLI's ``--force``).  The artifacts are
*deterministic*: run-dependent scheduling statistics are kept out of the
JSON, so the same grid over the same suite always produces byte-identical
files — which is what makes resumption verifiable.

Attach a :class:`~repro.experiments.store.ReportStore` (``store=``) to make
a sweep durable: every grid cell is persisted the moment it is evaluated,
and a *sweep manifest* describing the grid is published under the store's
``manifests/`` directory before evaluation starts.  A sweep that crashes
mid-grid can then be rerun with ``resume=True`` (CLI: ``--resume``) — cells
already on disk are served from the store and only the missing ones are
recomputed, yielding the same bytes an uninterrupted run would have written.

The CLI's ``sweep`` subcommand is a thin wrapper over this module.
"""

from __future__ import annotations

import csv
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.accelerator.config import ArchitectureConfig, scaled_default_config
from repro.experiments.registry import deterministic_payload, to_jsonable
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheduler import (
    EvaluationScheduler,
    ScheduleStats,
    requests_for_context,
)
from repro.model.stats import geometric_mean
from repro.tensor.suite import WorkloadSuite, synth_suite
from repro.tensor.synth import specs_by_workload_name

#: Default overbooking-target grid: below, at, and above the paper's y = 10%.
DEFAULT_Y_VALUES = (0.05, 0.10, 0.22)


@dataclass(frozen=True)
class SweepPoint:
    """One grid configuration (scales are relative to the base architecture)."""

    overbooking_target: float
    glb_scale: float
    pe_scale: float
    glb_capacity_words: int
    pe_buffer_capacity_words: int
    kernel: str = "gram"

    @property
    def label(self) -> str:
        return (f"{self.kernel} y={self.overbooking_target:.0%} "
                f"glb×{self.glb_scale:g} pe×{self.pe_scale:g}")


@dataclass(frozen=True)
class SweepRow:
    """Per-workload outcome at one grid point.

    ``model`` / ``model_params`` carry the sparsity-model identity when the
    swept suite is synthetic (:func:`repro.tensor.suite.synth_suite`); they
    are empty strings for canonical and corpus suites.
    """

    overbooking_target: float
    glb_scale: float
    pe_scale: float
    kernel: str
    workload: str
    model: str
    model_params: str
    naive_cycles: float
    prescient_cycles: float
    overbooking_cycles: float
    naive_energy_pj: float
    prescient_energy_pj: float
    overbooking_energy_pj: float
    overbooking_dram_words: float
    glb_overbooking_rate: float

    @property
    def speedup_ob_vs_naive(self) -> float:
        return self.naive_cycles / self.overbooking_cycles

    @property
    def speedup_ob_vs_prescient(self) -> float:
        return self.prescient_cycles / self.overbooking_cycles

    @property
    def energy_ratio_ob_vs_naive(self) -> float:
        return self.naive_energy_pj / self.overbooking_energy_pj


@dataclass(frozen=True)
class SweepSummary:
    """Geometric-mean aggregates of one grid point over its workloads."""

    point: SweepPoint
    geomean_speedup_ob_vs_naive: float
    geomean_speedup_ob_vs_prescient: float
    geomean_energy_ratio_ob_vs_naive: float


#: Column order of :meth:`SweepResult.write_csv`.
_CSV_COLUMNS = (
    "overbooking_target", "glb_scale", "pe_scale", "kernel", "workload",
    "model", "model_params",
    "naive_cycles", "prescient_cycles", "overbooking_cycles",
    "speedup_ob_vs_naive", "speedup_ob_vs_prescient",
    "naive_energy_pj", "prescient_energy_pj", "overbooking_energy_pj",
    "energy_ratio_ob_vs_naive", "overbooking_dram_words",
    "glb_overbooking_rate",
)


@dataclass(frozen=True)
class SweepResult:
    """Everything a sweep produced, ready for artifacts."""

    suite_workloads: List[str]
    base_architecture: str
    points: List[SweepPoint]
    rows: List[SweepRow]
    summaries: List[SweepSummary]
    schedule: ScheduleStats

    def summary_at(self, y: float, *, glb_scale: float = 1.0,
                   pe_scale: float = 1.0, kernel: str = "gram") -> SweepSummary:
        for summary in self.summaries:
            point = summary.point
            if (abs(point.overbooking_target - y) < 1e-9
                    and abs(point.glb_scale - glb_scale) < 1e-9
                    and abs(point.pe_scale - pe_scale) < 1e-9
                    and point.kernel == kernel):
                return summary
        raise KeyError(f"no sweep point kernel={kernel} y={y} "
                       f"glb×{glb_scale} pe×{pe_scale}")

    def to_jsonable(self) -> dict:
        """JSON payload of the sweep — deterministic by construction.

        Run-dependent fields (the ``schedule`` statistics: warm/cold split,
        store hits, pool restarts) are stripped by
        :func:`repro.experiments.registry.deterministic_payload`, the
        centralized identity-vs-ephemera filter — so an interrupted-and-
        resumed run, an N-shard merged run, and an uninterrupted serial run
        all write *byte-identical* artifacts.  Read the schedule statistics
        from :attr:`SweepResult.schedule` in-process instead.
        """
        return deterministic_payload(self)

    def write_json(self, path, *, force: bool = False) -> Path:
        path = _refusing_overwrite(path, force)
        path.write_text(json.dumps(self.to_jsonable(), indent=2) + "\n")
        return path

    def write_csv(self, path, *, force: bool = False) -> Path:
        path = _refusing_overwrite(path, force)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(_CSV_COLUMNS)
            for row in self.rows:
                writer.writerow([getattr(row, column) for column in _CSV_COLUMNS])
        return path


def _refusing_overwrite(path, force: bool) -> Path:
    """Guard artifact writes: refuse to clobber an existing file.

    Sweeps can be expensive; silently overwriting last night's grid with
    today's is never what anyone wanted.  Pass ``force=True`` (CLI:
    ``--force``, or ``--resume``, which by definition re-writes the outputs
    of the interrupted run) to overwrite deliberately.
    """
    path = Path(path)
    if path.exists() and not force:
        raise FileExistsError(
            f"{path} already exists; pass force=True (CLI: --force) to "
            f"overwrite it")
    return path


def sweep_signature(suite: WorkloadSuite, *, y_values, glb_scales, pe_scales,
                    kernels, base: ArchitectureConfig) -> str:
    """Stable identity of a sweep grid (names the manifest in the store).

    Two invocations with the same suite token (which encodes any workload
    subset via the token's workload order), grid axes and base architecture
    share a signature — and therefore a manifest — so a resumed run finds
    the record its interrupted predecessor published.
    """
    from repro.experiments.store import _plain

    payload = json.dumps({
        "suite": _plain(suite.cache_token),
        "y_values": [float(y) for y in y_values],
        "glb_scales": [float(s) for s in glb_scales],
        "pe_scales": [float(s) for s in pe_scales],
        "kernels": [str(k) for k in kernels],
        "architecture": to_jsonable(base),
    }, sort_keys=True, separators=(",", ":"))
    return "sweep-" + hashlib.sha256(payload.encode()).hexdigest()[:16]


def _store_aware_scheduler(scheduler: Optional[EvaluationScheduler], store,
                           max_workers: Optional[int],
                           use_batch: bool = True) -> EvaluationScheduler:
    """The scheduler a store-aware driver should use.

    Never mutates a caller-supplied scheduler: when one is given without a
    store attached, an equivalently-configured scheduler carrying ``store``
    is built for this call only (the scheduler holds configuration, not
    state, so this loses nothing).  A caller-supplied scheduler's own
    ``use_batch`` always wins over the driver default.
    """
    if scheduler is None:
        return EvaluationScheduler(max_workers=max_workers, store=store,
                                   use_batch=use_batch)
    if store is not None and scheduler.store is None:
        return EvaluationScheduler(
            max_workers=scheduler.max_workers,
            min_parallel_requests=scheduler.min_parallel_requests,
            store=store,
            use_batch=scheduler.use_batch,
            use_shared_memory=scheduler.use_shared_memory)
    return scheduler


def _scaled_architecture(base: ArchitectureConfig, glb_scale: float,
                         pe_scale: float) -> ArchitectureConfig:
    if glb_scale == 1.0 and pe_scale == 1.0:
        return base
    return base.with_overrides(
        glb_capacity_words=max(1, int(round(base.glb_capacity_words * glb_scale))),
        pe_buffer_capacity_words=max(
            1, int(round(base.pe_buffer_capacity_words * pe_scale))),
    )


@dataclass(frozen=True)
class GridPlan:
    """Everything a grid evaluation *is*, before anything is evaluated.

    The plan is a pure function of its inputs: the same suite, axes and base
    architecture always produce the same contexts, points, requests (in the
    same order) and signature.  :func:`sweep_grid` evaluates a plan in one
    process; :mod:`repro.experiments.shard` partitions the same plan across
    cooperating workers and merges it back — both write identical artifacts
    because both start from this object.
    """

    suite: WorkloadSuite
    base: ArchitectureConfig
    y_values: tuple
    glb_scales: tuple
    pe_scales: tuple
    kernels: tuple
    contexts: tuple
    points: tuple
    requests: tuple
    signature: str

    @property
    def unique_requests(self) -> List:
        """The grid's evaluation cells, deduplicated in plan order."""
        seen = {}
        for request in self.requests:
            seen.setdefault(request.memo_key, request)
        return list(seen.values())

    def manifest_payload(self, status: str, **extra) -> dict:
        """The store manifest describing this grid (``status`` = lifecycle).

        Identity fields only, plus whatever run-dependent ``extra`` the
        caller appends (e.g. ``computed`` on completion) — manifests are
        progress records inside the store, never artifacts, so ephemera are
        allowed but the identity part must be byte-stable so every shard
        worker publishes the same "in-progress" record.
        """
        payload = {
            "kind": "sweep",
            "status": status,
            "suite_workloads": list(self.suite.names),
            "y_values": [float(y) for y in self.y_values],
            "glb_scales": [float(s) for s in self.glb_scales],
            "pe_scales": [float(s) for s in self.pe_scales],
            "kernels": [str(k) for k in self.kernels],
            "grid_points": len(self.points),
            "cells": len(self.requests),
        }
        payload.update(extra)
        return payload


def plan_grid(suite: Optional[WorkloadSuite] = None, *,
              y_values: Sequence[float] = DEFAULT_Y_VALUES,
              glb_scales: Sequence[float] = (1.0,),
              pe_scales: Sequence[float] = (1.0,),
              kernels: Sequence[str] = ("gram",),
              synth: Optional[Sequence] = None,
              corpus: Optional[Sequence[str]] = None,
              corpus_manifest=None,
              base_architecture: Optional[ArchitectureConfig] = None,
              workloads: Optional[Sequence[str]] = None) -> GridPlan:
    """Resolve a sweep grid into its deterministic :class:`GridPlan`.

    Accepts exactly the grid-shaping arguments of :func:`sweep_grid` (which
    calls this first); the sharded runner and the ``merge``/``status``
    subcommands call it too, so every cooperating process agrees on the cell
    set, the request order, and the manifest signature.
    """
    if not y_values:
        raise ValueError("y_values must not be empty")
    if not kernels:
        raise ValueError("kernels must not be empty")
    if sum(axis is not None for axis in (suite, synth, corpus)) > 1:
        raise ValueError(
            "pass exactly one of a suite, synth specs, or corpus ids")
    if synth is not None:
        suite = synth_suite(synth)
    elif corpus is not None:
        from repro.tensor.corpus import corpus_workload_suite

        suite = corpus_workload_suite(list(corpus),
                                      manifest=corpus_manifest)
    elif suite is None:
        raise ValueError("a grid needs a suite (or synth specs, or corpus "
                         "ids)")
    base = base_architecture or scaled_default_config()
    if workloads is not None:
        suite = suite.subset(list(workloads))

    contexts: List[ExperimentContext] = []
    points: List[SweepPoint] = []
    for kernel in kernels:
        for glb_scale in glb_scales:
            for pe_scale in pe_scales:
                architecture = _scaled_architecture(base, float(glb_scale),
                                                    float(pe_scale))
                for y in y_values:
                    contexts.append(ExperimentContext(
                        suite=suite, architecture=architecture,
                        overbooking_target=float(y), kernel=str(kernel)))
                    points.append(SweepPoint(
                        overbooking_target=float(y),
                        glb_scale=float(glb_scale),
                        pe_scale=float(pe_scale),
                        glb_capacity_words=architecture.glb_capacity_words,
                        pe_buffer_capacity_words=architecture.pe_buffer_capacity_words,
                        kernel=str(kernel),
                    ))

    requests = []
    for context in contexts:
        requests.extend(requests_for_context(context))

    signature = sweep_signature(
        suite, y_values=y_values, glb_scales=glb_scales,
        pe_scales=pe_scales, kernels=kernels, base=base)
    return GridPlan(
        suite=suite,
        base=base,
        y_values=tuple(float(y) for y in y_values),
        glb_scales=tuple(float(s) for s in glb_scales),
        pe_scales=tuple(float(s) for s in pe_scales),
        kernels=tuple(str(k) for k in kernels),
        contexts=tuple(contexts),
        points=tuple(points),
        requests=tuple(requests),
        signature=signature,
    )


def collect_result(plan: GridPlan, stats: ScheduleStats) -> SweepResult:
    """Assemble the :class:`SweepResult` of an evaluated plan.

    Every cell must already be warm (prefetched, store-served, or computed);
    this only reads reports out of the contexts and aggregates.  Shared by
    :func:`sweep_grid` and the shard ``merge`` so both produce artifacts
    from literally the same code path.
    """
    synth_specs = specs_by_workload_name(plan.suite)
    rows: List[SweepRow] = []
    summaries: List[SweepSummary] = []
    for context, point in zip(plan.contexts, plan.points):
        point_rows: List[SweepRow] = []
        for name in context.workload_names:
            reports = context.reports(name)
            naive = reports[context.naive_name]
            prescient = reports[context.prescient_name]
            overbooking = reports[context.overbooking_name]
            spec = synth_specs.get(name)
            point_rows.append(SweepRow(
                overbooking_target=point.overbooking_target,
                glb_scale=point.glb_scale,
                pe_scale=point.pe_scale,
                kernel=point.kernel,
                workload=name,
                model=spec.model if spec is not None else "",
                model_params=spec.params_label if spec is not None else "",
                naive_cycles=naive.cycles,
                prescient_cycles=prescient.cycles,
                overbooking_cycles=overbooking.cycles,
                naive_energy_pj=naive.total_energy_pj,
                prescient_energy_pj=prescient.total_energy_pj,
                overbooking_energy_pj=overbooking.total_energy_pj,
                overbooking_dram_words=overbooking.dram_words,
                glb_overbooking_rate=overbooking.glb_overbooking_rate,
            ))
        rows.extend(point_rows)
        summaries.append(SweepSummary(
            point=point,
            geomean_speedup_ob_vs_naive=geometric_mean(
                r.speedup_ob_vs_naive for r in point_rows),
            geomean_speedup_ob_vs_prescient=geometric_mean(
                r.speedup_ob_vs_prescient for r in point_rows),
            geomean_energy_ratio_ob_vs_naive=geometric_mean(
                r.energy_ratio_ob_vs_naive for r in point_rows),
        ))

    return SweepResult(
        suite_workloads=list(plan.suite.names),
        base_architecture=plan.base.name,
        points=list(plan.points),
        rows=rows,
        summaries=summaries,
        schedule=stats,
    )


def sweep_grid(suite: Optional[WorkloadSuite] = None, *,
               y_values: Sequence[float] = DEFAULT_Y_VALUES,
               glb_scales: Sequence[float] = (1.0,),
               pe_scales: Sequence[float] = (1.0,),
               kernels: Sequence[str] = ("gram",),
               synth: Optional[Sequence] = None,
               corpus: Optional[Sequence[str]] = None,
               corpus_manifest=None,
               base_architecture: Optional[ArchitectureConfig] = None,
               workloads: Optional[Sequence[str]] = None,
               scheduler: Optional[EvaluationScheduler] = None,
               max_workers: Optional[int] = None,
               store=None, resume: bool = False,
               use_batch: bool = True) -> SweepResult:
    """Evaluate the full ``kernel × glb × pe × y`` grid over ``suite``.

    ``workloads`` restricts the sweep to a subset of the suite; ``kernels``
    adds a kernel dimension to the grid (default: the paper's Gram kernel
    only).  ``synth`` makes sparsity *structure* the workload axis instead of
    a suite: a sequence of :class:`~repro.tensor.synth.SynthSpec`s (or CLI
    strings ``"model:param=value,..."``) swept as one synthetic suite, with
    each row carrying ``model`` / ``model_params`` columns in the JSON/CSV
    artifacts.  ``corpus`` instead sweeps *real* matrices: a sequence of
    ``dataset:group/name`` IDs resolved through the corpus cache
    (:func:`~repro.tensor.corpus.corpus_workload_suite`), with
    ``corpus_manifest`` overlaying a descriptor manifest (the offline CI
    fixtures are one).  All grid points are batched through one scheduler
    prefetch;
    pass ``max_workers=1`` (or a pre-configured ``scheduler``) to force
    serial evaluation.

    ``store`` (a :class:`~repro.experiments.store.ReportStore`) makes the
    sweep durable: each cell is persisted as it completes and a grid
    manifest is published before evaluation starts.  ``resume=True``
    (requires ``store``) reruns an interrupted grid — cells already on disk
    are not re-evaluated, and the resulting artifacts are byte-identical to
    an uninterrupted run's.

    ``use_batch`` (default ``True``) evaluates the grid through the
    vectorized batch engine (:mod:`repro.model.batch`), one batched
    evaluation per ``(kernel, workload)`` instead of one per cell —
    bit-identical artifacts, an order of magnitude faster on cold grids;
    ``False`` (CLI: ``--no-batch``) forces the golden per-point loop.
    """
    if resume and store is None:
        raise ValueError("resume=True needs a store to resume from "
                         "(CLI: --resume requires --store)")
    plan = plan_grid(suite, y_values=y_values, glb_scales=glb_scales,
                     pe_scales=pe_scales, kernels=kernels, synth=synth,
                     corpus=corpus, corpus_manifest=corpus_manifest,
                     base_architecture=base_architecture, workloads=workloads)
    scheduler = _store_aware_scheduler(scheduler, store, max_workers,
                                       use_batch=use_batch)

    if store is not None:
        # Publish (atomically) what this sweep is about to do *before* doing
        # it, so a crash mid-grid leaves a record the rerun can check
        # against.  The manifest is keyed by the grid's signature: a resumed
        # run of the same grid finds — and finishes — its predecessor's.
        store.write_manifest(plan.signature,
                             plan.manifest_payload("in-progress"))

    stats = scheduler.prefetch(list(plan.requests))

    if store is not None:
        store.write_manifest(plan.signature, plan.manifest_payload(
            "complete", computed=stats.computed, store_hits=stats.store_hits))

    return collect_result(plan, stats)


def format_summaries(result: SweepResult) -> str:
    """Plain-text summary table of a sweep (one line per grid point)."""
    from repro.utils.text import format_table

    schedule = result.schedule
    notes = []
    if schedule.computed:
        notes.append(f"scheduler computed {schedule.computed} evaluations on "
                     f"{schedule.workers} worker(s)")
    if schedule.store_hits:
        notes.append(f"{schedule.store_hits} served from the report store")
    if not notes:
        notes.append("all evaluations served from the report memo")
    schedule_note = "; ".join(notes)
    return format_table(
        ["point", "OB/N speedup", "OB/P speedup", "OB/N energy"],
        [
            (s.point.label,
             f"{s.geomean_speedup_ob_vs_naive:.2f}x",
             f"{s.geomean_speedup_ob_vs_prescient:.2f}x",
             f"{s.geomean_energy_ratio_ob_vs_naive:.2f}x")
            for s in result.summaries
        ],
        title=(f"Sweep over {len(result.points)} grid points, "
               f"{len(result.suite_workloads)} workloads "
               f"(geometric means; {schedule_note})"),
    )
