"""Parameter-sweep runner: grids over ``y`` and buffer scaling, scheduled.

The ROADMAP's scenario sweeps (overbooking target, GLB/PE capacity scaling,
kernels, suite subsets, sparsity models) all reduce to evaluating a suite
under a grid of ``(architecture, overbooking_target, kernel)`` configurations.
:func:`sweep_grid`
builds one :class:`~repro.experiments.runner.ExperimentContext` per grid
point, batches *all* their evaluation requests through the
:class:`~repro.experiments.scheduler.EvaluationScheduler` (one fan-out for
the whole grid, deduplicated against anything already evaluated), then
collects per-workload rows and per-point geometric-mean summaries from the
warm memo.

Results serialize to JSON (:meth:`SweepResult.write_json`) and CSV
(:meth:`SweepResult.write_csv`); the CLI's ``sweep`` subcommand is a thin
wrapper over this module.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.accelerator.config import ArchitectureConfig, scaled_default_config
from repro.experiments.registry import to_jsonable
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheduler import (
    EvaluationScheduler,
    ScheduleStats,
    requests_for_context,
)
from repro.model.stats import geometric_mean
from repro.tensor.suite import WorkloadSuite, synth_suite
from repro.tensor.synth import specs_by_workload_name

#: Default overbooking-target grid: below, at, and above the paper's y = 10%.
DEFAULT_Y_VALUES = (0.05, 0.10, 0.22)


@dataclass(frozen=True)
class SweepPoint:
    """One grid configuration (scales are relative to the base architecture)."""

    overbooking_target: float
    glb_scale: float
    pe_scale: float
    glb_capacity_words: int
    pe_buffer_capacity_words: int
    kernel: str = "gram"

    @property
    def label(self) -> str:
        return (f"{self.kernel} y={self.overbooking_target:.0%} "
                f"glb×{self.glb_scale:g} pe×{self.pe_scale:g}")


@dataclass(frozen=True)
class SweepRow:
    """Per-workload outcome at one grid point.

    ``model`` / ``model_params`` carry the sparsity-model identity when the
    swept suite is synthetic (:func:`repro.tensor.suite.synth_suite`); they
    are empty strings for canonical and corpus suites.
    """

    overbooking_target: float
    glb_scale: float
    pe_scale: float
    kernel: str
    workload: str
    model: str
    model_params: str
    naive_cycles: float
    prescient_cycles: float
    overbooking_cycles: float
    naive_energy_pj: float
    prescient_energy_pj: float
    overbooking_energy_pj: float
    overbooking_dram_words: float
    glb_overbooking_rate: float

    @property
    def speedup_ob_vs_naive(self) -> float:
        return self.naive_cycles / self.overbooking_cycles

    @property
    def speedup_ob_vs_prescient(self) -> float:
        return self.prescient_cycles / self.overbooking_cycles

    @property
    def energy_ratio_ob_vs_naive(self) -> float:
        return self.naive_energy_pj / self.overbooking_energy_pj


@dataclass(frozen=True)
class SweepSummary:
    """Geometric-mean aggregates of one grid point over its workloads."""

    point: SweepPoint
    geomean_speedup_ob_vs_naive: float
    geomean_speedup_ob_vs_prescient: float
    geomean_energy_ratio_ob_vs_naive: float


#: Column order of :meth:`SweepResult.write_csv`.
_CSV_COLUMNS = (
    "overbooking_target", "glb_scale", "pe_scale", "kernel", "workload",
    "model", "model_params",
    "naive_cycles", "prescient_cycles", "overbooking_cycles",
    "speedup_ob_vs_naive", "speedup_ob_vs_prescient",
    "naive_energy_pj", "prescient_energy_pj", "overbooking_energy_pj",
    "energy_ratio_ob_vs_naive", "overbooking_dram_words",
    "glb_overbooking_rate",
)


@dataclass(frozen=True)
class SweepResult:
    """Everything a sweep produced, ready for artifacts."""

    suite_workloads: List[str]
    base_architecture: str
    points: List[SweepPoint]
    rows: List[SweepRow]
    summaries: List[SweepSummary]
    schedule: ScheduleStats

    def summary_at(self, y: float, *, glb_scale: float = 1.0,
                   pe_scale: float = 1.0, kernel: str = "gram") -> SweepSummary:
        for summary in self.summaries:
            point = summary.point
            if (abs(point.overbooking_target - y) < 1e-9
                    and abs(point.glb_scale - glb_scale) < 1e-9
                    and abs(point.pe_scale - pe_scale) < 1e-9
                    and point.kernel == kernel):
                return summary
        raise KeyError(f"no sweep point kernel={kernel} y={y} "
                       f"glb×{glb_scale} pe×{pe_scale}")

    def to_jsonable(self) -> dict:
        return to_jsonable(self)

    def write_json(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_jsonable(), indent=2) + "\n")
        return path

    def write_csv(self, path) -> Path:
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(_CSV_COLUMNS)
            for row in self.rows:
                writer.writerow([getattr(row, column) for column in _CSV_COLUMNS])
        return path


def _scaled_architecture(base: ArchitectureConfig, glb_scale: float,
                         pe_scale: float) -> ArchitectureConfig:
    if glb_scale == 1.0 and pe_scale == 1.0:
        return base
    return base.with_overrides(
        glb_capacity_words=max(1, int(round(base.glb_capacity_words * glb_scale))),
        pe_buffer_capacity_words=max(
            1, int(round(base.pe_buffer_capacity_words * pe_scale))),
    )


def sweep_grid(suite: Optional[WorkloadSuite] = None, *,
               y_values: Sequence[float] = DEFAULT_Y_VALUES,
               glb_scales: Sequence[float] = (1.0,),
               pe_scales: Sequence[float] = (1.0,),
               kernels: Sequence[str] = ("gram",),
               synth: Optional[Sequence] = None,
               base_architecture: Optional[ArchitectureConfig] = None,
               workloads: Optional[Sequence[str]] = None,
               scheduler: Optional[EvaluationScheduler] = None,
               max_workers: Optional[int] = None) -> SweepResult:
    """Evaluate the full ``kernel × glb × pe × y`` grid over ``suite``.

    ``workloads`` restricts the sweep to a subset of the suite; ``kernels``
    adds a kernel dimension to the grid (default: the paper's Gram kernel
    only).  ``synth`` makes sparsity *structure* the workload axis instead of
    a suite: a sequence of :class:`~repro.tensor.synth.SynthSpec`s (or CLI
    strings ``"model:param=value,..."``) swept as one synthetic suite, with
    each row carrying ``model`` / ``model_params`` columns in the JSON/CSV
    artifacts.  All grid points are batched through one scheduler prefetch;
    pass ``max_workers=1`` (or a pre-configured ``scheduler``) to force
    serial evaluation.
    """
    if not y_values:
        raise ValueError("y_values must not be empty")
    if not kernels:
        raise ValueError("kernels must not be empty")
    if synth is not None:
        if suite is not None:
            raise ValueError("pass either a suite or synth specs, not both")
        suite = synth_suite(synth)
    elif suite is None:
        raise ValueError("sweep_grid needs a suite (or synth specs)")
    synth_specs = specs_by_workload_name(suite)
    base = base_architecture or scaled_default_config()
    if workloads is not None:
        suite = suite.subset(list(workloads))
    if scheduler is None:
        scheduler = EvaluationScheduler(max_workers=max_workers)

    contexts: List[ExperimentContext] = []
    points: List[SweepPoint] = []
    for kernel in kernels:
        for glb_scale in glb_scales:
            for pe_scale in pe_scales:
                architecture = _scaled_architecture(base, float(glb_scale),
                                                    float(pe_scale))
                for y in y_values:
                    contexts.append(ExperimentContext(
                        suite=suite, architecture=architecture,
                        overbooking_target=float(y), kernel=str(kernel)))
                    points.append(SweepPoint(
                        overbooking_target=float(y),
                        glb_scale=float(glb_scale),
                        pe_scale=float(pe_scale),
                        glb_capacity_words=architecture.glb_capacity_words,
                        pe_buffer_capacity_words=architecture.pe_buffer_capacity_words,
                        kernel=str(kernel),
                    ))

    requests = []
    for context in contexts:
        requests.extend(requests_for_context(context))
    stats = scheduler.prefetch(requests)

    rows: List[SweepRow] = []
    summaries: List[SweepSummary] = []
    for context, point in zip(contexts, points):
        point_rows: List[SweepRow] = []
        for name in context.workload_names:
            reports = context.reports(name)
            naive = reports[context.naive_name]
            prescient = reports[context.prescient_name]
            overbooking = reports[context.overbooking_name]
            spec = synth_specs.get(name)
            point_rows.append(SweepRow(
                overbooking_target=point.overbooking_target,
                glb_scale=point.glb_scale,
                pe_scale=point.pe_scale,
                kernel=point.kernel,
                workload=name,
                model=spec.model if spec is not None else "",
                model_params=spec.params_label if spec is not None else "",
                naive_cycles=naive.cycles,
                prescient_cycles=prescient.cycles,
                overbooking_cycles=overbooking.cycles,
                naive_energy_pj=naive.total_energy_pj,
                prescient_energy_pj=prescient.total_energy_pj,
                overbooking_energy_pj=overbooking.total_energy_pj,
                overbooking_dram_words=overbooking.dram_words,
                glb_overbooking_rate=overbooking.glb_overbooking_rate,
            ))
        rows.extend(point_rows)
        summaries.append(SweepSummary(
            point=point,
            geomean_speedup_ob_vs_naive=geometric_mean(
                r.speedup_ob_vs_naive for r in point_rows),
            geomean_speedup_ob_vs_prescient=geometric_mean(
                r.speedup_ob_vs_prescient for r in point_rows),
            geomean_energy_ratio_ob_vs_naive=geometric_mean(
                r.energy_ratio_ob_vs_naive for r in point_rows),
        ))

    return SweepResult(
        suite_workloads=list(suite.names),
        base_architecture=base.name,
        points=points,
        rows=rows,
        summaries=summaries,
        schedule=stats,
    )


def format_summaries(result: SweepResult) -> str:
    """Plain-text summary table of a sweep (one line per grid point)."""
    from repro.utils.text import format_table

    schedule = result.schedule
    schedule_note = (
        f"scheduler computed {schedule.computed} evaluations on "
        f"{schedule.workers} worker(s)" if schedule.computed
        else "all evaluations served from the report memo")
    return format_table(
        ["point", "OB/N speedup", "OB/P speedup", "OB/N energy"],
        [
            (s.point.label,
             f"{s.geomean_speedup_ob_vs_naive:.2f}x",
             f"{s.geomean_speedup_ob_vs_prescient:.2f}x",
             f"{s.geomean_energy_ratio_ob_vs_naive:.2f}x")
            for s in result.summaries
        ],
        title=(f"Sweep over {len(result.points)} grid points, "
               f"{len(result.suite_workloads)} workloads "
               f"(geometric means; {schedule_note})"),
    )
