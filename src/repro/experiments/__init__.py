"""Experiment framework: registry, shared context, scheduler, sweeps.

Every table and figure of the paper is an :class:`~repro.experiments.registry.
Experiment` that registers itself (via the ``@register`` decorator on its
``run`` function) when its module is imported — the registry, not a
hand-maintained table here, is the source of truth for what exists.  Ask it::

    from repro.experiments import registry
    for experiment in registry.experiments():
        print(experiment.name, experiment.artifact, experiment.title)

The moving parts:

* :mod:`~repro.experiments.registry` — experiment specs and discovery.
* :mod:`~repro.experiments.runner` — :class:`ExperimentContext`, the cached
  workloads/model/reports a single process shares across experiments.
* :mod:`~repro.experiments.scheduler` — batches the evaluation requests of
  many experiments/contexts, deduplicates them against the process-wide
  report memo, and fans the cold ones out over worker processes.
* :mod:`~repro.experiments.sweep` — grids over the overbooking target and
  buffer scaling, run through the scheduler, serialized to JSON/CSV; with a
  store attached, durable and resumable (``--resume``).
* :mod:`~repro.experiments.store` — the content-addressed on-disk report
  store: every evaluation persisted once, served forever (atomic writes,
  versioned schema, ``store stats`` / ``store gc``).
* :mod:`~repro.experiments.search` — generational Pareto design-space
  search over ``(y, GLB, PE)`` configurations, pruning dominated
  configurations between generations.

``python -m repro`` (:mod:`repro.cli`) drives all of this from the command
line; the experiment modules (``fig1`` … ``fig14``, ``table1`` …
``table4``) keep their importable ``run(context)`` /
``format_result(result)`` API for direct use.  ``docs/ARCHITECTURE.md``
walks through how the layers fit together; ``docs/CLI.md`` is the command
reference.
"""

from repro.experiments.runner import ExperimentContext, clear_process_caches

__all__ = ["ExperimentContext", "clear_process_caches", "registry"]


def __getattr__(name):
    # Lazy: ``repro.experiments.registry`` imports experiment modules that
    # import this package; deferring the import keeps startup cheap and
    # avoids the cycle at package-import time.
    if name == "registry":
        import importlib

        return importlib.import_module("repro.experiments.registry")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
