"""Experiment harness: regenerate every table and figure of the paper.

Each module exposes a ``run(context)`` function returning a result dataclass
and a ``format_result(result)`` function rendering it as plain text.  The
:class:`~repro.experiments.runner.ExperimentContext` caches workload matrices
and per-variant performance reports so that experiments sharing inputs
(Figs. 7, 8, 9 all reuse the same evaluations) do not recompute them.

Mapping to the paper:

========  =====================================================  =============
Artifact  What it shows                                          Module
========  =====================================================  =============
Table 1   tiling strategies: utilization vs. tiling tax          ``table1``
Table 2   workload characteristics                               ``table2``
Fig. 1    occupancy distribution of fixed-size tiles             ``fig1``
Fig. 3/5  buffet vs. Tailors management of an overbooked tile    ``fig5``
Fig. 7    speedup over ExTensor-N                                ``fig7``
Fig. 8    energy relative to ExTensor-N                          ``fig8``
Fig. 9    streaming overhead and data reuse                      ``fig9``
Fig. 10   speedup of OB over P as a function of y                ``fig10``
Fig. 11   overbooking rate: initial estimate vs. Swiftiles       ``fig11``
Fig. 12   Swiftiles error vs. number of samples k                ``fig12``
Fig. 13   occupancy distributions for one workload               ``fig13``
========  =====================================================  =============
"""

from repro.experiments.runner import ExperimentContext

__all__ = ["ExperimentContext"]
