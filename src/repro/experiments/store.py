"""Content-addressed on-disk report store: durable, resumable evaluation.

Every evaluation in this codebase is a *pure function* of its identity — the
``(suite token, architecture, overbooking target, kernel, workload)`` tuple
that already keys the process-wide report memo and the scheduler's
:class:`~repro.experiments.scheduler.EvaluationRequest`.  The memo makes
repeated contexts free *within* a process; this module makes them free
*across* processes and crashes:

* **Content-addressed layout.**  Each entry lives at
  ``<root>/objects/<aa>/<digest>.json`` where ``digest`` is the SHA-256 of
  the canonical JSON encoding of the evaluation identity.  Two runs that
  evaluate the same thing — today, tomorrow, on another machine with the
  same seeds — address the same file; nothing is ever stored twice.
* **Atomic writes.**  Entries are written to a unique temporary file in the
  same directory and published with :func:`os.replace`, so concurrent
  writers (scheduler workers, parallel sweeps sharing one store) can race on
  the same key and readers never observe a torn file.  Last writer wins with
  bit-identical content, because the content is a function of the key.
* **Versioned schema.**  Entries and the store marker both carry
  ``schema_version``; loading an entry written under a different schema
  raises :class:`StoreSchemaError` instead of silently misreading it
  (``python -m repro store gc`` prunes such entries).
* **Corrupt entries are quarantined, never fatal.**  An entry that does not
  parse or decode (torn write that beat ``os.replace``, bit rot, a truncated
  copy) is atomically sidelined into ``<root>/quarantine/`` and treated as a
  cache *miss* — the key is simply re-evaluated and re-stored.  ``python -m
  repro store verify`` scans the whole store for such entries up front (and
  ``--clear`` empties the quarantine).
* **Transient I/O is retried.**  Reads and writes go through
  :func:`repro.utils.retry.retry_transient` (exponential backoff, seeded
  jitter), so a filesystem hiccup costs milliseconds instead of a sweep.
* **Exact round-trips.**  Reports serialize field-by-field with Python's
  shortest-repr float encoding, so ``report -> disk -> report`` reproduces
  every float bit-for-bit — golden tests pin the round-trip to 1e-9 and the
  resumable sweep relies on it for byte-identical artifacts.

The scheduler consults the store before dispatching work and persists each
request's reports the moment they arrive (see
:meth:`~repro.experiments.scheduler.EvaluationScheduler.prefetch`), which is
what makes ``python -m repro sweep --store DIR --resume`` recompute only the
grid cells a crashed run never finished.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.accelerator.config import ArchitectureConfig
from repro.energy.accelergy import EnergyReport
from repro.model.stats import PerformanceReport, TrafficBreakdown
from repro.model.traffic import LevelTraffic
from repro.utils import faults
from repro.utils.retry import retry_transient

#: Bump when the entry layout (key payload or report encoding) changes in a
#: way old readers would misinterpret.  ``store gc`` prunes mismatched
#: entries; ``load`` refuses them.
SCHEMA_VERSION = 1

#: Name of the store marker file at the store root.
MARKER_NAME = "store.json"

#: Subdirectory holding the content-addressed entries.
OBJECTS_DIR = "objects"

#: Subdirectory holding sweep/search run manifests (see repro.experiments.sweep).
MANIFESTS_DIR = "manifests"

#: Subdirectory corrupt entries are sidelined into (see ``store verify``).
QUARANTINE_DIR = "quarantine"

#: Subdirectory holding shard work-claim leases (see repro.experiments.shard).
LEASES_DIR = "leases"

#: How old (seconds since last modification) a leftover ``*.tmp*`` file must
#: be before :meth:`ReportStore.gc` reaps it.  A temp file younger than this
#: may belong to a *live* writer between its write and its ``os.replace`` —
#: unlinking it would fail that write out from under the writer (and the
#: retry layer would misreport the resulting ``FileNotFoundError`` burst as
#: transient I/O).  Genuinely orphaned temp files (a writer that died) age
#: past the grace period and are collected by the next gc.
TMP_GRACE_SECONDS = 60.0


class StoreError(RuntimeError):
    """Base class for report-store failures."""


class StoreSchemaError(StoreError):
    """An entry (or the store itself) was written under another schema."""


# --------------------------------------------------------------------- #
# Canonical key encoding
# --------------------------------------------------------------------- #
def _plain(value):
    """Recursively convert a memo-key component into plain JSON-able data."""
    if isinstance(value, ArchitectureConfig):
        return {"__architecture__": dataclasses.asdict(value)}
    if isinstance(value, (tuple, list)):
        return [_plain(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"cannot canonicalize key component {value!r} "
                    f"of type {type(value).__name__}")


def key_payload(memo_key: tuple) -> dict:
    """The canonical JSON payload of an evaluation identity.

    ``memo_key`` is the 5-tuple the report memo and the scheduler use:
    ``(suite token, architecture, overbooking target, kernel, workload)``.
    The payload is what gets hashed for the entry path and recorded inside
    the entry for inspection (``store stats``) and garbage collection.
    """
    suite_token, architecture, target, kernel, workload = memo_key
    return {
        "suite_token": _plain(suite_token),
        "architecture": dataclasses.asdict(architecture),
        "overbooking_target": float(target),
        "kernel": str(kernel),
        "workload": str(workload),
    }


def key_digest(memo_key: tuple) -> str:
    """SHA-256 content address of an evaluation identity (hex)."""
    canonical = json.dumps(key_payload(memo_key), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# Report (de)serialization — exact float round-trips
# --------------------------------------------------------------------- #
def encode_report(report: PerformanceReport) -> dict:
    """Encode one report as plain JSON data (floats via shortest repr)."""
    return {
        "workload": report.workload,
        "variant": report.variant,
        "cycles": float(report.cycles),
        "energy": {key: float(value)
                   for key, value in report.energy.per_component_pj.items()},
        "traffic": {
            level_name: {
                "level": level.level,
                "stationary_reads": float(level.stationary_reads),
                "stationary_baseline": float(level.stationary_baseline),
                "streaming_reads": float(level.streaming_reads),
                "output_writes": float(level.output_writes),
            }
            for level_name, level in (("dram", report.traffic.dram),
                                      ("global_buffer",
                                       report.traffic.global_buffer))
        },
        "effectual_multiplies": int(report.effectual_multiplies),
        "output_nonzeros": int(report.output_nonzeros),
        "glb_block_rows": int(report.glb_block_rows),
        "glb_overbooking_rate": float(report.glb_overbooking_rate),
        "glb_utilization": float(report.glb_utilization),
        "bumped_fraction": float(report.bumped_fraction),
        "data_reuse_fraction": float(report.data_reuse_fraction),
        "tiling_tax_elements": float(report.tiling_tax_elements),
        "bound": report.bound,
        "details": {key: float(value)
                    for key, value in report.details.items()},
        "kernel": report.kernel,
    }


def decode_report(payload: dict) -> PerformanceReport:
    """Rebuild a :class:`PerformanceReport` encoded by :func:`encode_report`."""
    def level(name: str) -> LevelTraffic:
        data = payload["traffic"][name]
        return LevelTraffic(
            level=data["level"],
            stationary_reads=data["stationary_reads"],
            stationary_baseline=data["stationary_baseline"],
            streaming_reads=data["streaming_reads"],
            output_writes=data["output_writes"],
        )

    return PerformanceReport(
        workload=payload["workload"],
        variant=payload["variant"],
        cycles=payload["cycles"],
        energy=EnergyReport(per_component_pj=dict(payload["energy"])),
        traffic=TrafficBreakdown(dram=level("dram"),
                                 global_buffer=level("global_buffer")),
        effectual_multiplies=payload["effectual_multiplies"],
        output_nonzeros=payload["output_nonzeros"],
        glb_block_rows=payload["glb_block_rows"],
        glb_overbooking_rate=payload["glb_overbooking_rate"],
        glb_utilization=payload["glb_utilization"],
        bumped_fraction=payload["bumped_fraction"],
        data_reuse_fraction=payload["data_reuse_fraction"],
        tiling_tax_elements=payload["tiling_tax_elements"],
        bound=payload["bound"],
        details=dict(payload["details"]),
        kernel=payload["kernel"],
    )


# --------------------------------------------------------------------- #
# Statistics containers
# --------------------------------------------------------------------- #
@dataclass
class SessionStats:
    """What *this* :class:`ReportStore` instance did (in-memory counters).

    ``quarantined`` counts corrupt entries this instance sidelined (each was
    also a miss); ``io_retries`` counts transient I/O errors absorbed by the
    retry wrapper — run-dependent *ephemera*, never part of any artifact.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    quarantined: int = 0
    io_retries: int = 0


@dataclass(frozen=True)
class StoreStats:
    """On-disk state of a store, from a full scan (``store stats``).

    ``skipped`` counts entries that vanished between being listed and being
    read — a concurrent ``gc`` or quarantine move on a *live* store; the
    scan tolerates and reports them instead of crashing.
    """

    entries: int
    total_bytes: int
    reports: int
    kernels: Dict[str, int]
    workloads: int
    schema_versions: Dict[str, int]
    manifests: int
    quarantined: int = 0
    skipped: int = 0


@dataclass(frozen=True)
class VerifyStats:
    """Outcome of one ``store verify`` pass.

    ``quarantined`` counts entries sidelined by *this* pass;
    ``quarantine_backlog`` is what sits in ``quarantine/`` afterwards
    (``--clear`` empties it, reported as ``cleared``).  ``stale_schema``
    entries are readable-but-old: left in place for ``store gc``.
    """

    scanned: int
    ok: int
    quarantined: int
    stale_schema: int
    quarantine_backlog: int
    cleared: int
    skipped: int = 0


@dataclass(frozen=True)
class GcStats:
    """Outcome of one ``store gc`` pass.

    ``skipped`` counts paths that vanished mid-pass (a racing gc/quarantine
    on a live store) plus temp files left alone because they are younger
    than the grace period — i.e. possibly a live writer's in-flight file.
    """

    scanned: int
    removed_entries: int
    removed_temp_files: int
    reclaimed_bytes: int
    kept: int
    skipped: int = 0


# --------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------- #
@dataclass
class ReportStore:
    """Content-addressed persistent store of per-variant report dicts.

    Parameters
    ----------
    root:
        Directory the store lives in.  Created (with a schema marker) on
        first use; an existing marker with a different ``schema_version``
        raises :class:`StoreSchemaError` immediately rather than on first
        read.
    check_marker:
        Pass ``False`` to open a store whose marker disagrees with this
        build's schema — only :meth:`gc` (which prunes the unreadable
        entries and refreshes the marker) should do this.
    create:
        Pass ``False`` to refuse to open a directory that is not already a
        store (no marker): inspection commands (``store stats`` /
        ``store gc``) use this so a mistyped ``--store`` path errors
        instead of silently initializing an empty store there.
    """

    root: Path
    check_marker: bool = True
    create: bool = True
    session: SessionStats = field(default_factory=SessionStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        marker = self.root / MARKER_NAME
        if not marker.exists() and not self.create:
            raise StoreError(
                f"no report store at {self.root} (missing {MARKER_NAME}); "
                f"check the --store path — stores are created by the first "
                f"run/sweep/search that writes to one")
        if marker.exists():
            meta = json.loads(marker.read_text())
            version = meta.get("schema_version")
            if version != SCHEMA_VERSION and self.check_marker:
                raise StoreSchemaError(
                    f"store at {self.root} uses schema {version!r}; this "
                    f"build reads schema {SCHEMA_VERSION} — run "
                    f"'python -m repro store gc --store {self.root}' to "
                    f"prune entries this build cannot read, or point "
                    f"--store at a fresh directory")
        else:
            (self.root / OBJECTS_DIR).mkdir(parents=True, exist_ok=True)
            (self.root / MANIFESTS_DIR).mkdir(parents=True, exist_ok=True)
            _atomic_write_json(marker, {
                "schema_version": SCHEMA_VERSION,
                "created_unix": time.time(),
            })

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def path_for(self, memo_key: tuple) -> Path:
        """The entry path of an evaluation identity (may not exist yet)."""
        digest = key_digest(memo_key)
        return self.root / OBJECTS_DIR / digest[:2] / f"{digest}.json"

    def manifest_path(self, name: str) -> Path:
        """Path of a run manifest (sweep/search progress records)."""
        return self.root / MANIFESTS_DIR / f"{name}.json"

    # ------------------------------------------------------------------ #
    # Read / write
    # ------------------------------------------------------------------ #
    def contains(self, memo_key: tuple) -> bool:
        return self.path_for(memo_key).exists()

    def load(self, memo_key: tuple) -> Optional[Dict[str, PerformanceReport]]:
        """The stored per-variant reports for ``memo_key``, or ``None``.

        Never crashes on a *corrupt* entry (torn/truncated/mangled bytes, or
        JSON that does not decode back into reports): the file is atomically
        quarantined under ``quarantine/`` and the key is reported as a miss,
        so callers simply re-evaluate and re-store it.  Transient
        :class:`OSError`\\ s from the filesystem are retried with backoff.
        Raises :class:`StoreSchemaError` only for *well-formed* entries
        written under a different schema version — a deliberate upgrade
        condition that ``store gc`` resolves, not a fault.
        """
        return self._load_entry(self.path_for(memo_key))

    def load_many(self, memo_keys) -> Dict[tuple, Dict[str, PerformanceReport]]:
        """Batch :meth:`load`: ``{memo_key: reports}`` for every present key.

        Instead of one ``open`` attempt per key, the needed shard
        directories (``objects/<aa>/``) are each scanned **once** with
        ``os.scandir`` — existence is decided for the whole batch up front
        and only the entries actually present are read and decoded.  For the
        bulk lookups the scheduler issues (warm-starting a design-space
        search, resuming a sweep) this turns N mostly-missing probes into a
        handful of directory listings plus the hits.

        Per-key semantics are identical to :meth:`load`: corrupt entries are
        quarantined and treated as misses, entries under another schema
        raise :class:`StoreSchemaError`, and the session hit/miss counters
        advance exactly as N individual loads would advance them.  Keys
        absent from the returned mapping are misses.
        """
        paths: Dict[tuple, Path] = {}
        for memo_key in memo_keys:
            if memo_key not in paths:
                paths[memo_key] = self.path_for(memo_key)
        shards: Dict[Path, set] = {}
        for path in paths.values():
            shards.setdefault(path.parent, set()).add(path.name)

        present: set = set()
        for shard_dir, names in shards.items():
            def scan(shard_dir=shard_dir) -> set:
                faults.active().maybe_raise("store.load")
                try:
                    with os.scandir(shard_dir) as entries:
                        return {entry.name for entry in entries}
                except FileNotFoundError:
                    return set()

            existing = retry_transient(scan, on_retry=self._count_io_retry)
            present.update(shard_dir / name for name in names & existing)

        loaded: Dict[tuple, Dict[str, PerformanceReport]] = {}
        for memo_key, path in paths.items():
            if path not in present:
                self.session.misses += 1
                continue
            # _load_entry re-checks at read time, so a racing quarantine or
            # delete between the scan and the read is still just a miss.
            reports = self._load_entry(path)
            if reports is not None:
                loaded[memo_key] = reports
        return loaded

    def _load_entry(self, path: Path) -> Optional[Dict[str, PerformanceReport]]:
        """Read + decode one entry file (the shared body of ``load``/
        ``load_many``), with quarantine-on-corruption and retry-on-transient
        semantics as documented on :meth:`load`."""

        def read() -> str:
            faults.active().maybe_raise("store.load")
            return path.read_text()

        try:
            raw = retry_transient(read, give_up_on=(FileNotFoundError,),
                                  on_retry=self._count_io_retry)
        except FileNotFoundError:
            self.session.misses += 1
            return None
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError(f"expected a JSON object, got "
                                 f"{type(payload).__name__}")
        except (json.JSONDecodeError, ValueError) as error:
            self.quarantine_entry(path, reason=str(error))
            self.session.misses += 1
            return None
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise StoreSchemaError(
                f"store entry {path} uses schema {version!r}, expected "
                f"{SCHEMA_VERSION}; run 'python -m repro store gc --store "
                f"{self.root}' to prune stale entries")
        try:
            reports = {variant: decode_report(data)
                       for variant, data in payload["reports"].items()}
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            self.quarantine_entry(path, reason=f"undecodable reports "
                                               f"({error!r})")
            self.session.misses += 1
            return None
        self.session.hits += 1
        return reports

    def store(self, memo_key: tuple,
              reports: Dict[str, PerformanceReport]) -> Path:
        """Persist per-variant reports atomically; returns the entry path.

        Transient :class:`OSError`\\ s (full temp write + publish) are
        retried with backoff; the publish itself stays ``os.replace``-atomic
        on every attempt.
        """
        path = self.path_for(memo_key)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "key": key_payload(memo_key),
            "reports": {variant: encode_report(report)
                        for variant, report in reports.items()},
        }
        path.parent.mkdir(parents=True, exist_ok=True)

        def write() -> None:
            faults.active().maybe_raise("store.store")
            _atomic_write_json(path, payload)

        retry_transient(write, on_retry=self._count_io_retry)
        faults.active().maybe_corrupt(path)
        self.session.writes += 1
        return path

    def _count_io_retry(self, error: BaseException, attempt: int) -> None:
        self.session.io_retries += 1

    def quarantine_entry(self, path: Path, *, reason: str) -> Optional[Path]:
        """Atomically sideline a corrupt entry file into ``quarantine/``.

        Returns the quarantine path, or ``None`` when a racing reader beat
        us to it.  One stderr line announces the event — quarantining is
        survivable by design but should never be invisible.
        """
        destination_dir = self.root / QUARANTINE_DIR
        destination_dir.mkdir(parents=True, exist_ok=True)
        destination = destination_dir / path.name
        try:
            os.replace(path, destination)
        except FileNotFoundError:
            return None
        self.session.quarantined += 1
        print(f"[store] quarantined corrupt entry {path.name}: {reason} "
              f"(treated as a miss; inspect/clear with "
              f"'python -m repro store verify --store {self.root}')",
              file=sys.stderr)
        return destination

    def write_manifest(self, name: str, payload: dict) -> Path:
        """Atomically publish a run manifest under ``manifests/``."""
        path = self.manifest_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(path, dict(payload, schema_version=SCHEMA_VERSION))
        return path

    def read_manifest(self, name: str) -> Optional[dict]:
        """The manifest published as ``name``, or ``None``."""
        path = self.manifest_path(name)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def _entry_paths(self) -> Iterator[Path]:
        objects = self.root / OBJECTS_DIR
        if not objects.exists():
            return
        for shard in sorted(objects.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.json"))

    def quarantine_paths(self) -> Iterator[Path]:
        quarantine = self.root / QUARANTINE_DIR
        if quarantine.exists():
            yield from sorted(quarantine.glob("*.json"))

    def verify(self, *, clear: bool = False) -> VerifyStats:
        """Scan every entry; quarantine the corrupt, report the rest.

        A full-decode pass over the store (``python -m repro store
        verify``): each entry must parse as JSON, carry the current schema
        version, and decode back into :class:`PerformanceReport`\\ s.
        Entries that fail parse/decode are quarantined exactly as a
        :meth:`load` hitting them would; entries under an *older* schema are
        counted (``stale_schema``) but left for ``store gc``, which owns
        schema migration.  ``clear=True`` empties ``quarantine/`` after the
        scan.
        """
        scanned = ok = quarantined = stale = skipped = 0
        for path in list(self._entry_paths()):
            scanned += 1
            try:
                payload = json.loads(path.read_text())
                if not isinstance(payload, dict):
                    raise ValueError(f"expected a JSON object, got "
                                     f"{type(payload).__name__}")
                if payload.get("schema_version") != SCHEMA_VERSION:
                    stale += 1
                    continue
                for data in payload["reports"].values():
                    decode_report(data)
            except FileNotFoundError:
                # Vanished between listing and reading (a racing gc or
                # quarantine move on a live store): nothing left to verify.
                skipped += 1
                continue
            except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                    AttributeError) as error:
                self.quarantine_entry(path, reason=f"verify: {error!r}")
                quarantined += 1
                continue
            ok += 1
        cleared = 0
        if clear:
            for quarantine_path in list(self.quarantine_paths()):
                try:
                    quarantine_path.unlink()
                except FileNotFoundError:
                    continue
                cleared += 1
        backlog = len(list(self.quarantine_paths()))
        return VerifyStats(scanned=scanned, ok=ok, quarantined=quarantined,
                           stale_schema=stale, quarantine_backlog=backlog,
                           cleared=cleared, skipped=skipped)

    def stats(self) -> StoreStats:
        """Scan the store and summarize what it holds.

        Safe against a concurrently mutating store: entries that vanish
        between being listed and being read (a racing ``gc`` or quarantine
        move) are skipped and counted in :attr:`StoreStats.skipped` instead
        of crashing the scan.
        """
        entries = 0
        total_bytes = 0
        reports = 0
        skipped = 0
        kernels: Dict[str, int] = {}
        workloads = set()
        versions: Dict[str, int] = {}
        for path in self._entry_paths():
            try:
                size = path.stat().st_size
                raw = path.read_text()
            except FileNotFoundError:
                skipped += 1
                continue
            entries += 1
            total_bytes += size
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                versions["corrupt"] = versions.get("corrupt", 0) + 1
                continue
            version = str(payload.get("schema_version"))
            versions[version] = versions.get(version, 0) + 1
            key = payload.get("key", {})
            kernel = key.get("kernel", "?")
            kernels[kernel] = kernels.get(kernel, 0) + 1
            workloads.add((kernel, key.get("workload")))
            reports += len(payload.get("reports", {}))
        manifests = len(list((self.root / MANIFESTS_DIR).glob("*.json"))) \
            if (self.root / MANIFESTS_DIR).exists() else 0
        return StoreStats(
            entries=entries,
            total_bytes=total_bytes,
            reports=reports,
            kernels=kernels,
            workloads=len(workloads),
            schema_versions=versions,
            manifests=manifests,
            quarantined=len(list(self.quarantine_paths())),
            skipped=skipped,
        )

    def gc(self, *, tmp_grace_seconds: float = TMP_GRACE_SECONDS,
           now: Optional[float] = None) -> GcStats:
        """Prune entries this build cannot read, plus *orphaned* temp files.

        Removes entries whose ``schema_version`` differs from
        :data:`SCHEMA_VERSION`, entries that fail to parse, leftover
        ``*.tmp*`` files from interrupted writers, and shard directories
        emptied by the above.

        Safe to run against a *live* store: temp files younger than
        ``tmp_grace_seconds`` are left alone — they may belong to a writer
        between its write and its atomic ``os.replace`` publish, and
        unlinking them would fail that write out from under it.  Paths that
        vanish mid-pass (a concurrent gc, a racing writer's publish) are
        skipped, never fatal.  ``now`` is injectable for tests (defaults to
        ``time.time()``, the clock ``st_mtime`` is measured against).
        """
        scanned = removed = reclaimed = kept = skipped = 0
        objects = self.root / OBJECTS_DIR
        reap_before = (time.time() if now is None else now) - tmp_grace_seconds
        for path in list(self._entry_paths()):
            scanned += 1
            try:
                payload = json.loads(path.read_text())
                stale = payload.get("schema_version") != SCHEMA_VERSION
            except FileNotFoundError:
                skipped += 1
                continue
            except json.JSONDecodeError:
                stale = True
            if stale:
                try:
                    reclaimed += path.stat().st_size
                    path.unlink()
                except FileNotFoundError:
                    skipped += 1
                    continue
                removed += 1
            else:
                kept += 1
        removed_tmp = 0
        if objects.exists():
            for tmp in objects.rglob("*.tmp*"):
                try:
                    status = tmp.stat()
                    if status.st_mtime > reap_before:
                        # Young enough to be a live writer's in-flight file:
                        # leave it for a later gc to judge again.
                        skipped += 1
                        continue
                    tmp.unlink()
                except FileNotFoundError:
                    skipped += 1
                    continue
                reclaimed += status.st_size
                removed_tmp += 1
            for shard in objects.iterdir():
                try:
                    if shard.is_dir() and not any(shard.iterdir()):
                        shard.rmdir()
                except (FileNotFoundError, OSError):
                    # Vanished, or a racing writer repopulated it between
                    # the emptiness check and the rmdir: both fine.
                    continue
        # Everything left is readable under the current schema: refresh the
        # marker so future opens (which check it) succeed.
        _atomic_write_json(self.root / MARKER_NAME, {
            "schema_version": SCHEMA_VERSION,
            "created_unix": time.time(),
        })
        return GcStats(scanned=scanned, removed_entries=removed,
                       removed_temp_files=removed_tmp,
                       reclaimed_bytes=reclaimed, kept=kept, skipped=skipped)


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write JSON via a same-directory temp file + ``os.replace``.

    ``os.replace`` is atomic on POSIX and Windows for same-filesystem moves,
    so readers either see the old entry or the complete new one, never a
    prefix; racing writers simply replace each other with identical content.
    """
    handle = tempfile.NamedTemporaryFile(
        mode="w", dir=path.parent, prefix=path.name + ".tmp", delete=False)
    try:
        with handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def format_stats(stats: StoreStats, session: Optional[SessionStats] = None,
                 *, root: Optional[Path] = None) -> str:
    """Human-readable rendering of :meth:`ReportStore.stats` (``store stats``)."""
    lines = []
    if root is not None:
        lines.append(f"report store at {root}")
    lines.append(f"  entries        : {stats.entries} "
                 f"({stats.total_bytes / 1024:.1f} KiB, "
                 f"{stats.reports} variant reports)")
    lines.append(f"  distinct cells : {stats.workloads} (kernel x workload)")
    if stats.kernels:
        per_kernel = ", ".join(f"{kernel}={count}" for kernel, count
                               in sorted(stats.kernels.items()))
        lines.append(f"  per kernel     : {per_kernel}")
    versions = ", ".join(f"{version}: {count}" for version, count
                         in sorted(stats.schema_versions.items()))
    lines.append(f"  schema versions: {versions or '-'} "
                 f"(current: {SCHEMA_VERSION})")
    lines.append(f"  manifests      : {stats.manifests}")
    lines.append(f"  quarantined    : {stats.quarantined}"
                 + (" (inspect/clear with 'store verify')"
                    if stats.quarantined else ""))
    if stats.skipped:
        lines.append(f"  skipped        : {stats.skipped} entr(ies) vanished "
                     f"mid-scan (concurrent gc/quarantine)")
    if session is not None:
        lines.append(f"  this session   : {session.hits} hits, "
                     f"{session.misses} misses, {session.writes} writes, "
                     f"{session.quarantined} quarantined, "
                     f"{session.io_retries} I/O retries")
    return "\n".join(lines)


def format_verify(outcome: VerifyStats, *, root: Optional[Path] = None) -> str:
    """Human-readable rendering of :meth:`ReportStore.verify`."""
    lines = []
    if root is not None:
        lines.append(f"verified report store at {root}")
    lines.append(f"  scanned      : {outcome.scanned} entr(ies)")
    lines.append(f"  ok           : {outcome.ok}")
    lines.append(f"  quarantined  : {outcome.quarantined} (this pass)")
    if outcome.stale_schema:
        lines.append(f"  stale schema : {outcome.stale_schema} "
                     f"(left in place; prune with 'store gc')")
    if outcome.cleared:
        lines.append(f"  cleared      : {outcome.cleared} from quarantine/")
    lines.append(f"  quarantine   : {outcome.quarantine_backlog} file(s) "
                 f"pending" + ("" if outcome.quarantine_backlog
                               else " (empty)"))
    return "\n".join(lines)
