"""Fig. 14 (extension): the traffic/energy Pareto frontier of the design space.

The paper evaluates one buffer geometry and reads the overbooking benefit at
a single design point.  This experiment asks the design-space question the
persistent store makes affordable: across ``(overbooking target, GLB
capacity, PE buffer capacity)`` configurations, which ones are *Pareto
optimal* in DRAM traffic versus energy — and how does that frontier shift
with sparsity structure and kernel?

It runs :func:`~repro.experiments.search.search_frontier` over a synthetic
structure ladder (uniform → banded → power-law hub skew, the same axis as
Table 4) × a kernel pair, with generational axis refinement pruning
dominated configurations between generations.  With a
:class:`~repro.experiments.store.ReportStore` attached (CLI: ``--store``),
every evaluated design point is durable, so re-running the figure — or
widening the grid — only pays for configurations never seen before.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheduler import EvaluationScheduler
from repro.experiments.search import (
    DEFAULT_GLB_SCALES,
    DEFAULT_PE_SCALES,
    DEFAULT_Y_VALUES,
    FrontierResult,
    format_frontier,
    search_frontier,
)
from repro.tensor.suite import synth_suite

#: The structure ladder the frontier is computed over (one suite, three
#: regimes: estimate-friendly, banded, heavy-tailed).
DEFAULT_SPECS = (
    "uniform",
    "banded",
    "power_law_rows:alpha=2.0",
)

#: Smaller instances + a smaller grid for the quick/CI path.
QUICK_SPECS = (
    "uniform:n=400,nnz=3000",
    "power_law_rows:n=400,nnz=3200,alpha=1.9",
)

DEFAULT_KERNELS = ("gram", "spmv")


@register(name="fig14", artifact="Fig. 14",
          title="traffic/energy Pareto frontier of the design space",
          uses_suite=False,  # the workloads are this module's own ladder
          quick_params={"specs": QUICK_SPECS, "kernels": ("gram",),
                        "glb_scales": (0.5, 1.0), "pe_scales": (1.0,),
                        "max_generations": 2},
          kernels=DEFAULT_KERNELS)
def run(context: ExperimentContext,
        specs: Sequence = DEFAULT_SPECS,
        kernels: Sequence[str] = DEFAULT_KERNELS,
        y_values: Sequence[float] = DEFAULT_Y_VALUES,
        glb_scales: Sequence[float] = DEFAULT_GLB_SCALES,
        pe_scales: Sequence[float] = DEFAULT_PE_SCALES,
        max_generations: int = 3,
        max_workers: Optional[int] = None,
        store=None,
        use_surrogate: bool = True) -> FrontierResult:
    """Search the design space over the structure ladder.

    The context supplies the base architecture, and suite seed (the
    overbooking target is a *search axis* here, so the context's ``y`` seeds
    the axis rather than pinning it); the workloads come from the synthetic
    structure ladder.  All evaluations are batched per generation through
    the scheduler, store-aware when ``store`` is attached.  Refinement
    generations rank candidates through the surrogate by default (CLI:
    ``--no-surrogate`` for the brute-force reference; the quick grid is
    too small to train it, so the quick path is brute force either way).
    """
    y_axis = sorted({round(float(y), 6) for y in
                     (*y_values, context.overbooking_target)})
    suite = synth_suite(specs, seed=context.suite.seed)
    return search_frontier(
        suite=suite,
        kernels=kernels,
        y_values=y_axis,
        glb_scales=glb_scales,
        pe_scales=pe_scales,
        max_generations=max_generations,
        base_architecture=context.architecture,
        scheduler=EvaluationScheduler(max_workers=max_workers, store=store),
        use_surrogate=use_surrogate,
    )


def format_result(result: FrontierResult) -> str:
    return format_frontier(result)


def to_json(result: FrontierResult):
    return result.to_jsonable()
