"""Table 5 (extension): overbooking benefit across real corpora vs. synth.

The synthetic structure ladder (``table4``) measures overbooking against
*controlled* sparsity structure; this experiment closes the loop against
*real* structure.  It evaluates three workload sources side by side —
pruned-DNN weight masks from the Deep Learning Matrix Collection,
scientific/graph matrices from SuiteSparse, and the synthetic ladder — and
reports, per ``(source, workload, kernel)``, the tile-occupancy skew next to
the overbooking speedups, with per-source geomeans for the cross-corpus
comparison the synth subsystem was built to be measured against.

All three sources become canonical suites (``("corpus", ...)`` and
``("synth", ...)`` cache scopes), so every evaluation is batched through one
scheduler prefetch and is addressable by the report store: scheduler workers
rebuild the corpus suites from their dataset IDs through the shared on-disk
matrix cache (``$REPRO_CORPUS_CACHE``), exactly like they regenerate
synthetic matrices from seeds.

The quick/CI parameterization points at the offline fixture corpus under
``tests/data/corpus/`` — the whole experiment runs hermetically, zero
network access, which is also how its determinism (serial == parallel ==
resumed-from-store, byte-for-byte) is enforced in CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheduler import EvaluationScheduler, requests_for_context
from repro.model.stats import geometric_mean
from repro.tensor.suite import synth_suite
from repro.tensor.synth import synth_specs, tile_occupancy_cv

#: Default DLMC slice: magnitude vs. random pruning at two sparsities
#: (resolved through the built-in catalog; needs network or a warm cache).
DEFAULT_DLMC = (
    "dlmc:rn50/magnitude_pruning/0.5/"
    "bottleneck_projection_block_group_projection_block_group1",
    "dlmc:rn50/magnitude_pruning/0.9/"
    "bottleneck_projection_block_group_projection_block_group1",
    "dlmc:rn50/random_pruning/0.5/"
    "bottleneck_projection_block_group_projection_block_group1",
    "dlmc:rn50/random_pruning/0.9/"
    "bottleneck_projection_block_group_projection_block_group1",
)

#: Default SuiteSparse slice: one matrix per structure class of the paper's
#: evaluation (FEM band, power-law social graph, road network, web graph).
DEFAULT_SUITESPARSE = (
    "suitesparse:Williams/cant",
    "suitesparse:SNAP/soc-Epinions1",
    "suitesparse:SNAP/roadNet-CA",
    "suitesparse:SNAP/web-Google",
)

#: The synthetic comparison ladder (a subset of table4's).
DEFAULT_SYNTH = (
    "uniform",
    "banded",
    "power_law_rows:alpha=1.9",
)

DEFAULT_KERNELS = ("gram", "spmm", "spmv")

#: Offline CI parameterization: the committed fixture corpus.
QUICK_MANIFEST = "tests/data/corpus/manifest.json"
QUICK_DLMC = ("dlmc:fixture/magnitude-080", "dlmc:fixture/random-050")
QUICK_SUITESPARSE = ("suitesparse:fixture/fem-band",
                     "suitesparse:fixture/powerlaw-graph",
                     "suitesparse:fixture/cant-mini")
QUICK_SYNTH = ("uniform:n=300,nnz=2600",
               "power_law_rows:n=300,nnz=2800,alpha=1.9")
QUICK_KERNELS = ("gram", "spmv")


@dataclass(frozen=True)
class Table5Row:
    """Overbooking outcome of one ``(source, workload, kernel)`` triple."""

    source: str                  # "dlmc" | "suitesparse" | "synth"
    workload: str
    kernel: str
    rows: int
    cols: int
    nnz: int
    occupancy_cv: float
    speedup_ob_vs_naive: float
    speedup_ob_vs_prescient: float
    energy_ratio_ob_vs_naive: float
    glb_overbooking_rate: float


@dataclass(frozen=True)
class Table5Summary:
    """Per-source geomeans across workloads and kernels."""

    source: str
    workloads: int
    geomean_speedup_ob_vs_naive: float
    geomean_speedup_ob_vs_prescient: float
    geomean_energy_ratio_ob_vs_naive: float
    mean_occupancy_cv: float


@dataclass(frozen=True)
class Table5Result:
    """Rows source-major (dlmc, suitesparse, synth), kernel-minor."""

    sources: List[str]
    kernels: List[str]
    overbooking_target: float
    rows: List[Table5Row]
    summaries: List[Table5Summary]

    def summary(self, source: str) -> Table5Summary:
        for entry in self.summaries:
            if entry.source == source:
                return entry
        raise KeyError(source)


def _resolve_manifest(manifest):
    """Anchor a relative manifest path at the repo root when cwd misses.

    The quick parameterization names the committed fixture manifest by its
    repo-relative path; resolve it against this package's checkout so
    ``run table5 --quick`` works from any working directory.
    """
    from pathlib import Path

    if manifest is None or Path(manifest).exists():
        return manifest
    candidate = Path(__file__).resolve().parents[3] / manifest
    return str(candidate) if candidate.exists() else manifest


def _source_suites(context: ExperimentContext,
                   dlmc: Sequence[str], suitesparse: Sequence[str],
                   synth: Sequence, manifest) -> List[tuple]:
    """``(source, suite)`` pairs, skipping sources configured empty."""
    from repro.tensor.corpus import corpus_workload_suite

    manifest = _resolve_manifest(manifest)
    seed = context.suite.seed
    suites = []
    if dlmc:
        suites.append(("dlmc", corpus_workload_suite(
            list(dlmc), seed=seed, manifest=manifest)))
    if suitesparse:
        suites.append(("suitesparse", corpus_workload_suite(
            list(suitesparse), seed=seed, manifest=manifest)))
    if synth:
        suites.append(("synth", synth_suite(synth_specs(synth), seed=seed)))
    if not suites:
        raise ValueError("table5 needs at least one non-empty source "
                         "(dlmc, suitesparse, or synth)")
    return suites


@register(name="table5", artifact="Table 5",
          title="overbooking benefit across real corpora",
          uses_suite=False,  # the workloads are the corpora themselves
          quick_params={"dlmc": QUICK_DLMC, "suitesparse": QUICK_SUITESPARSE,
                        "synth": QUICK_SYNTH, "manifest": QUICK_MANIFEST,
                        "kernels": QUICK_KERNELS},
          kernels=DEFAULT_KERNELS)
def run(context: ExperimentContext,
        dlmc: Sequence[str] = DEFAULT_DLMC,
        suitesparse: Sequence[str] = DEFAULT_SUITESPARSE,
        synth: Sequence = DEFAULT_SYNTH,
        manifest: Union[str, None] = None,
        kernels: Sequence[str] = DEFAULT_KERNELS,
        max_workers: Optional[int] = None,
        store=None) -> Table5Result:
    """Evaluate all three workload sources under every kernel.

    The context supplies the architecture, overbooking target and suite
    seed; the workloads come from the corpus manager (``dlmc`` /
    ``suitesparse`` dataset IDs, resolved through ``manifest`` when given)
    and the synthetic ladder.  Every ``(source, kernel)`` suite evaluation
    goes through one scheduler prefetch — parallel workers rebuild the
    corpus suites from their ``("corpus", ...)`` tokens via the shared
    matrix cache — and through ``store`` when given, so reruns resume
    warm.
    """
    suites = _source_suites(context, dlmc, suitesparse, synth, manifest)

    contexts = {}
    requests = []
    for source, suite in suites:
        base = ExperimentContext(
            suite=suite,
            architecture=context.architecture,
            overbooking_target=context.overbooking_target,
            kernel=kernels[0],
        )
        for kernel in kernels:
            ctx = base.with_kernel(kernel)
            contexts[(source, kernel)] = ctx
            requests.extend(requests_for_context(ctx))
    EvaluationScheduler(max_workers=max_workers,
                        store=store).prefetch(requests)

    rows: List[Table5Row] = []
    for source, suite in suites:
        for name in suite.names:
            matrix = suite.matrix(name)
            skew = tile_occupancy_cv(matrix)
            for kernel in kernels:
                ctx = contexts[(source, kernel)]
                reports = ctx.reports(name)
                naive = reports[ctx.naive_name]
                prescient = reports[ctx.prescient_name]
                overbooking = reports[ctx.overbooking_name]
                rows.append(Table5Row(
                    source=source,
                    workload=name,
                    kernel=kernel,
                    rows=matrix.num_rows,
                    cols=matrix.num_cols,
                    nnz=matrix.nnz,
                    occupancy_cv=skew,
                    speedup_ob_vs_naive=overbooking.speedup_over(naive),
                    speedup_ob_vs_prescient=overbooking.speedup_over(prescient),
                    energy_ratio_ob_vs_naive=overbooking.energy_ratio_over(naive),
                    glb_overbooking_rate=overbooking.glb_overbooking_rate,
                ))

    summaries = []
    for source, suite in suites:
        source_rows = [row for row in rows if row.source == source]
        summaries.append(Table5Summary(
            source=source,
            workloads=len(suite.names),
            geomean_speedup_ob_vs_naive=geometric_mean(
                row.speedup_ob_vs_naive for row in source_rows),
            geomean_speedup_ob_vs_prescient=geometric_mean(
                row.speedup_ob_vs_prescient for row in source_rows),
            geomean_energy_ratio_ob_vs_naive=geometric_mean(
                row.energy_ratio_ob_vs_naive for row in source_rows),
            mean_occupancy_cv=(sum(row.occupancy_cv for row in source_rows)
                               / len(source_rows)),
        ))

    return Table5Result(
        sources=[source for source, _ in suites],
        kernels=list(kernels),
        overbooking_target=context.overbooking_target,
        rows=rows,
        summaries=summaries,
    )


def format_result(result: Table5Result) -> str:
    from repro.utils.text import format_table

    lines = [format_table(
        ["source", "workload", "kernel", "shape", "nnz", "occ. CV",
         "OB/N speedup", "OB/P speedup", "OB/N energy"],
        [
            (r.source, r.workload, r.kernel, f"{r.rows}x{r.cols}", r.nnz,
             f"{r.occupancy_cv:.2f}", f"{r.speedup_ob_vs_naive:.2f}x",
             f"{r.speedup_ob_vs_prescient:.2f}x",
             f"{r.energy_ratio_ob_vs_naive:.2f}x")
            for r in result.rows
        ],
        title=(f"Table 5: overbooking benefit across real corpora "
               f"({' vs. '.join(result.sources)}, "
               f"y={result.overbooking_target:.0%})"),
    )]
    lines.append(format_table(
        ["source", "workloads", "geomean OB/N", "geomean OB/P",
         "geomean energy", "mean occ. CV"],
        [
            (s.source, s.workloads,
             f"{s.geomean_speedup_ob_vs_naive:.2f}x",
             f"{s.geomean_speedup_ob_vs_prescient:.2f}x",
             f"{s.geomean_energy_ratio_ob_vs_naive:.2f}x",
             f"{s.mean_occupancy_cv:.2f}")
            for s in result.summaries
        ],
        title="per-source geomeans",
    ))
    return "\n\n".join(lines)
