"""Fig. 12: Swiftiles prediction error as a function of the sample budget k.

``k`` is the number of samples Swiftiles expects to land in the top ``y``
quantile (the total samples drawn are ``k / y``).  The paper sweeps k from 0
(no sampling — fall back to the initial estimate) to full sampling and shows
diminishing returns: at k = 10 the MAE is 5.8%, vs. 5.5% with every tile
sampled; the residual error is the price of the one-shot (single tile size)
estimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.swiftiles import Swiftiles, SwiftilesConfig
from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.utils.text import format_series

#: Default sweep of the sample budget (k = 0 means "no sampling").
DEFAULT_K_SWEEP = (0, 1, 2, 5, 10, 20, 50)


@dataclass(frozen=True)
class Fig12Result:
    """MAE of the achieved overbooking rate vs. the target, per sample budget."""

    k_values: List[int]
    mae_values: List[float]
    full_sampling_mae: float
    target: float

    def mae_at(self, k: int) -> float:
        for value, mae in zip(self.k_values, self.mae_values):
            if value == k:
                return mae
        raise KeyError(f"k={k} was not swept")


@register(name="fig12", artifact="Fig. 12",
          title="Swiftiles error vs. number of samples k",
          quick_params={"k_values": (0, 2, 5), "capacity": 256},
          kernels=("gram",))
def run(context: ExperimentContext, *, k_values: Sequence[int] = DEFAULT_K_SWEEP,
        capacity: int | None = None, target: float = 0.10,
        seed: int = 5) -> Fig12Result:
    """Sweep the Swiftiles sample budget and measure the prediction MAE."""
    if capacity is None:
        capacity = max(256, context.architecture.glb_capacity_words // 4)
    matrices = [context.matrix(name) for name in context.workload_names]

    def mae_for(config: SwiftilesConfig, rng_seed: int) -> float:
        errors = []
        for matrix in matrices:
            estimator = Swiftiles(config, rng=rng_seed)
            if config.samples_in_tail == 0:
                raise ValueError("samples_in_tail must be positive")
            estimate = estimator.estimate(matrix, capacity)
            achieved = estimator.observed_overbooking_rate(
                matrix, estimate.target_size, capacity)
            errors.append(abs(achieved - target))
        return float(np.mean(errors))

    mae_values: List[float] = []
    for k in k_values:
        if k == 0:
            # No sampling: tile with the initial estimate directly.
            estimator = Swiftiles(SwiftilesConfig(overbooking_target=target))
            errors = []
            for matrix in matrices:
                initial = estimator.initial_estimate(matrix, capacity)
                achieved = estimator.observed_overbooking_rate(matrix, initial, capacity)
                errors.append(abs(achieved - target))
            mae_values.append(float(np.mean(errors)))
        else:
            config = SwiftilesConfig(overbooking_target=target, samples_in_tail=int(k))
            mae_values.append(mae_for(config, seed))

    full_config = SwiftilesConfig(overbooking_target=target, sample_all_tiles=True)
    full_mae = mae_for(full_config, seed)
    return Fig12Result(k_values=[int(k) for k in k_values], mae_values=mae_values,
                       full_sampling_mae=full_mae, target=target)


def format_result(result: Fig12Result) -> str:
    series = format_series(
        result.k_values,
        [mae * 100.0 for mae in result.mae_values],
        x_name="k (samples in the top-y quantile)",
        y_name=f"MAE of achieved rate vs. y={result.target:.0%} (percentage points)",
        title="Fig. 12: Swiftiles prediction error vs. sample budget",
    )
    return series + (
        f"\n\nfull-sampling MAE: {result.full_sampling_mae * 100.0:.1f} percentage points"
    )
