"""Parallel evaluation scheduler: batch, deduplicate, fan out, merge.

Every figure/table experiment ultimately consumes per-variant
:class:`~repro.model.stats.PerformanceReport`s keyed by ``(suite,
architecture, overbooking target, kernel, workload)``.  The scheduler turns
that into a batch problem:

1. **Batch** — union the :class:`EvaluationRequest`s of all selected
   experiments (and sweep grid points) up front.
2. **Deduplicate** — drop requests already present in the process-wide report
   memo of :mod:`repro.experiments.runner`; experiments sharing evaluations
   (Figs. 7/8/9, every sweep point at the default ``y``) cost one evaluation.
3. **Fan out** — evaluate the cold requests on a
   :class:`~concurrent.futures.ProcessPoolExecutor`.  A request is picklable
   because it carries the suite's *token*, not the suite: workers rebuild
   suites from seeds via :func:`repro.tensor.suite.suite_from_token` and keep
   them (plus their matrix/tiling caches) alive for the life of the worker.
4. **Merge** — per-variant reports come back pickled and are merged into the
   process-wide memo, so the experiments afterwards run serially against warm
   caches.

When constructed with a :class:`~repro.experiments.store.ReportStore`, the
scheduler adds a *durable* tier between steps 2 and 3: cold requests are
first looked up in the on-disk store (a hit is merged into the memo without
any evaluation), and every freshly computed request is persisted the moment
its reports arrive — one atomic file per request — so an interrupted batch
leaves everything it finished on disk for the next run to resume from.

Evaluation is a deterministic function of the request (seeded generators end
to end), so the merged reports are identical to what serial execution would
have produced — ``tests/experiments/test_scheduler.py`` pins that down to
1e-9 against the single-process golden path.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.accelerator.config import ArchitectureConfig
from repro.experiments.runner import (
    ExperimentContext,
    memoized_reports,
    store_memoized_reports,
)

#: Signature of the per-request completion hook: ``(request, reports,
#: source)`` with ``source`` one of ``"store"`` (served from the on-disk
#: store) or ``"computed"`` (freshly evaluated this pass).
ResultHook = Callable[
    ["EvaluationRequest", Dict[str, "PerformanceReport"], str], None]
from repro.model.stats import PerformanceReport
from repro.tensor.suite import suite_from_token


@dataclass(frozen=True)
class EvaluationRequest:
    """One unit of schedulable work: evaluate a workload on every variant.

    ``suite_token`` is the picklable identity of a canonical suite (see
    :attr:`repro.tensor.suite.WorkloadSuite.cache_token`); the other fields —
    including the ``kernel`` axis — mirror the report-memo key, which is what
    makes deduplication exact.
    """

    suite_token: tuple
    architecture: ArchitectureConfig
    overbooking_target: float
    workload: str
    kernel: str = "gram"

    @property
    def memo_key(self) -> tuple:
        return (self.suite_token, self.architecture,
                self.overbooking_target, self.kernel, self.workload)


@dataclass(frozen=True)
class ScheduleStats:
    """What a :meth:`EvaluationScheduler.prefetch` call actually did.

    ``warm`` counts in-process memo hits; ``store_hits`` counts requests
    served from the on-disk report store (when one is attached) and
    ``store_writes`` the freshly computed requests persisted to it.  Both
    are always **per-cell** counts: the batched evaluator returns one result
    per request of a group, and each is merged (and persisted) individually,
    so a 100-cell batch records 100 writes, never 1.
    ``batched`` / ``batch_groups`` record whether the cold requests went
    through the vectorized :mod:`repro.model.batch` evaluator and how many
    ``(suite, kernel, workload)`` groups they collapsed into;
    ``shm_segments`` counts suites shipped to workers via shared memory
    (:mod:`repro.tensor.shm`) instead of per-worker rebuilds.
    ``pool_restarts`` / ``degraded_serial`` record worker-pool crash
    recovery (see :meth:`EvaluationScheduler.prefetch`) — run-dependent
    ephemera, like every other field here, and therefore excluded from all
    artifacts (see :func:`repro.experiments.registry.deterministic_payload`).
    """

    requested: int
    unique: int
    warm: int
    computed: int
    workers: int
    store_hits: int = 0
    store_writes: int = 0
    pool_restarts: int = 0
    degraded_serial: bool = False
    batched: bool = False
    batch_groups: int = 0
    shm_segments: int = 0


def requests_for_context(
        context: ExperimentContext,
        targets: Optional[Iterable[tuple]] = None,
) -> List[EvaluationRequest]:
    """Requests covering ``targets`` of a context.

    Each target is a ``(y, workload)`` pair — evaluated under the context's
    kernel — or a ``(y, workload, kernel)`` triple for experiments that sweep
    the kernel axis (e.g. the cross-kernel Table 3).  ``targets`` defaults to
    every suite workload at the context's overbooking target and kernel.
    Returns ``[]`` for custom suites (no token — nothing to ship to a worker;
    such contexts evaluate serially as before).
    """
    token = context.suite_token
    if token is None:
        return []
    if targets is None:
        targets = [(context.overbooking_target, name)
                   for name in context.workload_names]
    requests = []
    for target in targets:
        y, name = target[0], target[1]
        kernel = target[2] if len(target) > 2 else context.kernel
        requests.append(EvaluationRequest(
            suite_token=token,
            architecture=context.architecture,
            overbooking_target=float(y),
            workload=str(name),
            kernel=str(kernel),
        ))
    return requests


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #
#: Per-worker caches: suites keyed by token (sharing matrices and their
#: tiling caches across requests), contexts keyed by full configuration, and
#: batched evaluators keyed by ``(suite token, kernel, workload)``.
_WORKER_SUITES: Dict[tuple, object] = {}
_WORKER_CONTEXTS: Dict[tuple, ExperimentContext] = {}
_WORKER_EVALUATORS: Dict[tuple, object] = {}


def clear_worker_caches() -> None:
    """Evict the scheduler's suite/context/evaluator caches (this process
    only).

    Called by :func:`repro.experiments.runner.clear_process_caches` so a
    "cold" measurement is cold on the serial-fallback path too; worker
    processes of a *future* pool start from whatever the parent holds at
    fork time.
    """
    _WORKER_SUITES.clear()
    _WORKER_CONTEXTS.clear()
    _WORKER_EVALUATORS.clear()


def _worker_context(request: EvaluationRequest) -> ExperimentContext:
    key = (request.suite_token, request.architecture,
           request.overbooking_target, request.kernel)
    context = _WORKER_CONTEXTS.get(key)
    if context is None:
        suite = _WORKER_SUITES.get(request.suite_token)
        if suite is None:
            suite = suite_from_token(request.suite_token)
            _WORKER_SUITES[request.suite_token] = suite
        context = ExperimentContext(
            suite=suite,
            architecture=request.architecture,
            overbooking_target=request.overbooking_target,
            kernel=request.kernel,
        )
        _WORKER_CONTEXTS[key] = context
    return context


def _evaluate_request(
        request: EvaluationRequest,
) -> Tuple[EvaluationRequest, Dict[str, PerformanceReport]]:
    """Worker entry point: rebuild state from the request and evaluate.

    Runs the exact serial code path (``ExperimentContext.reports``) on
    reconstructed-but-bit-identical inputs, so the returned reports match
    serial execution exactly.
    """
    context = _worker_context(request)
    return request, context.reports(request.workload)


def _group_key(request: EvaluationRequest) -> tuple:
    """The batching axis: requests differing only in architecture / ``y``
    share one workload (operands, tilings, occupancy reductions)."""
    return (request.suite_token, request.kernel, request.workload)


def workload_evaluator(request: EvaluationRequest):
    """The (cached) batched evaluator for a request's ``(kernel, workload)``.

    Builds the workload through the same suite/context caches the per-point
    path uses, so operands — and every tiling memoized on them — are shared
    between the two paths bit-for-bit.
    """
    from repro.model.batch import BatchWorkloadEvaluator

    key = _group_key(request)
    evaluator = _WORKER_EVALUATORS.get(key)
    if evaluator is None:
        context = _worker_context(request)
        evaluator = BatchWorkloadEvaluator(context.workload(request.workload))
        _WORKER_EVALUATORS[key] = evaluator
    return evaluator


def _evaluate_request_group(
        unit: Tuple[EvaluationRequest, ...],
) -> List[Tuple[EvaluationRequest, Dict[str, PerformanceReport]]]:
    """Worker entry point for one batch group: every (architecture, y) cell
    of one ``(suite, kernel, workload)`` through the vectorized evaluator.

    Returns one ``(request, reports)`` pair *per cell* — the parent merges
    (and persists) each individually, so store accounting stays per-cell.
    """
    evaluator = workload_evaluator(unit[0])
    evaluator.prime([(request.architecture, request.overbooking_target)
                     for request in unit])
    return [(request, evaluator.reports(request.architecture,
                                        request.overbooking_target))
            for request in unit]


def _evaluate_request_loop(
        unit: Tuple[EvaluationRequest, ...],
) -> List[Tuple[EvaluationRequest, Dict[str, PerformanceReport]]]:
    """Worker entry point for one unit on the golden per-point path."""
    return [_evaluate_request(request) for request in unit]


def _attach_worker_suites(manifests) -> None:
    """Pool initializer: attach shared-memory suites before any request runs."""
    from repro.tensor import shm

    for manifest in manifests:
        shm.attach_suite(manifest)


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #
class EvaluationScheduler:
    """Evaluate batches of requests, in parallel when it pays off.

    Parameters
    ----------
    max_workers:
        Upper bound on worker processes.  ``None`` uses the CPU count; ``1``
        forces serial in-process evaluation (no pool, no pickling).
    min_parallel_requests:
        Below this many cold requests the pool start-up cost outweighs the
        win; they are evaluated in-process instead.
    store:
        Optional :class:`~repro.experiments.store.ReportStore`.  Cold
        requests are looked up in it before any evaluation happens, and
        computed reports are persisted to it as they complete (making the
        batch resumable after a crash).
    use_batch:
        Evaluate cold requests through the vectorized grid evaluator
        (:mod:`repro.model.batch`), grouping cells by ``(suite, kernel,
        workload)`` so shared tilings and scaffolding are computed once per
        group.  Bit-identical to the per-point path; ``False`` (CLI:
        ``--no-batch``) forces the golden per-point loop.
    use_shared_memory:
        Ship suites to pool workers through one shared-memory segment
        (:mod:`repro.tensor.shm`) instead of letting every worker rebuild
        them from seeds.  Falls back transparently when unavailable.
    """

    def __init__(self, max_workers: Optional[int] = None, *,
                 min_parallel_requests: int = 4, store=None,
                 use_batch: bool = True, use_shared_memory: bool = True):
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.max_workers = max(1, int(max_workers))
        self.min_parallel_requests = max(1, int(min_parallel_requests))
        self.store = store
        self.use_batch = bool(use_batch)
        self.use_shared_memory = bool(use_shared_memory)

    # ------------------------------------------------------------------ #
    def prefetch(self, requests: Sequence[EvaluationRequest], *,
                 on_result: Optional[ResultHook] = None) -> ScheduleStats:
        """Ensure every request's reports are in the process-wide memo.

        Deduplicates against the memo, evaluates the cold remainder (in
        parallel when worth it), merges the results, and reports what it did.
        Afterwards ``context.reports(...)`` for any covered configuration is
        a memo hit.

        ``on_result`` is an optional per-request completion hook, invoked in
        *this* process the moment a request's reports become available —
        with ``source="store"`` for on-disk hits and ``source="computed"``
        for fresh evaluations (requests already warm in the memo never fire
        it; they were never scheduled).  The evaluation service streams
        per-cell progress to its clients through this.  Hook exceptions are
        swallowed (reported to stderr): a broken observer must not kill a
        batch other clients are coalesced into.
        """
        def notify(request: EvaluationRequest,
                   reports: Dict[str, PerformanceReport],
                   source: str) -> None:
            if on_result is None:
                return
            try:
                on_result(request, reports, source)
            except Exception as error:  # noqa: BLE001 - observer, not critic
                print(f"[scheduler] on_result hook failed for "
                      f"{request.workload}/{request.kernel}: {error!r}",
                      file=sys.stderr)

        unique: Dict[tuple, EvaluationRequest] = {}
        for request in requests:
            if request.suite_token is None:
                raise ValueError(
                    "cannot schedule a request without a suite token; custom "
                    "suites must be evaluated in-process via their context")
            unique.setdefault(request.memo_key, request)

        store_hits = 0
        cold = []
        candidates = [(key, request) for key, request in unique.items()
                      if memoized_reports(key) is None]
        if self.store is not None and candidates:
            # One bulk lookup for every memo-cold key: the store scans each
            # needed shard directory once (see ReportStore.load_many) instead
            # of probing entry files one by one — the difference between a
            # warm-started search paying N file-open misses and paying a few
            # directory listings.
            loaded = self.store.load_many([key for key, _ in candidates])
            for key, request in candidates:
                reports = loaded.get(key)
                if reports is not None:
                    store_memoized_reports(key, reports)
                    store_hits += 1
                    notify(request, reports, "store")
                else:
                    cold.append(request)
        else:
            cold = [request for _, request in candidates]
        # Group same-workload requests (which share tilings at equal
        # capacities) so chunking keeps them on one worker.
        cold.sort(key=lambda r: (r.workload, r.kernel, r.overbooking_target))

        merged_keys = set()

        def merge(request: EvaluationRequest,
                  reports: Dict[str, PerformanceReport]) -> None:
            store_memoized_reports(request.memo_key, reports)
            merged_keys.add(request.memo_key)
            if self.store is not None:
                # Persist immediately (one atomic file per request), so an
                # interrupted batch keeps everything it finished.
                self.store.store(request.memo_key, reports)
            notify(request, reports, "computed")

        # The unit of fan-out: with batching, one unit is every cold cell of
        # a (suite, kernel, workload) group — the vectorized evaluator
        # computes the group's shared tilings/reductions once and emits one
        # report set per cell; without, each unit is a single request.
        if self.use_batch:
            groups: Dict[tuple, List[EvaluationRequest]] = {}
            for request in cold:
                groups.setdefault(_group_key(request), []).append(request)
            units = [tuple(group) for group in groups.values()]
            evaluate_unit = _evaluate_request_group
        else:
            units = [(request,) for request in cold]
            evaluate_unit = _evaluate_request_loop

        pool_restarts = 0
        degraded_serial = False
        shm_segments = 0
        workers = min(self.max_workers, len(units))
        if workers <= 1 or len(cold) < self.min_parallel_requests:
            for unit in units:
                for request, reports in evaluate_unit(unit):
                    merge(request, reports)
            workers = min(workers, 1)
        else:
            # Ship each suite to the workers once, through shared memory —
            # O(1) in suite bytes instead of one rebuild per worker.  Pairs
            # are exported only when some cold kernel streams them.
            manifests = []
            exported_tokens = []
            if self.use_shared_memory:
                from repro.tensor import shm
                from repro.tensor.kernels import kernel_spec

                needs_pair: Dict[tuple, bool] = {}
                names_by_token: Dict[tuple, Dict[str, None]] = {}
                for request in cold:
                    token = request.suite_token
                    names_by_token.setdefault(token, {})[request.workload] = None
                    needs_pair[token] = (
                        needs_pair.get(token, False)
                        or kernel_spec(request.kernel).needs_paired_operand)
                for token, names in names_by_token.items():
                    manifest = shm.export_suite(
                        token, list(names), include_pairs=needs_pair[token])
                    if manifest is not None:
                        manifests.append(manifest)
                        exported_tokens.append(token)
            shm_segments = len(manifests)
            initializer = _attach_worker_suites if manifests else None
            initargs = (tuple(manifests),) if manifests else ()

            # A worker dying (OOM kill, segfault, node eviction) surfaces as
            # BrokenProcessPool with everything in flight lost.  The batch is
            # pure and resumable, so recover instead of crashing the sweep:
            # respawn the pool once and retry what never merged; if the pool
            # breaks again, degrade to in-process evaluation — slow beats
            # dead, and every result merged so far is kept either way.
            try:
                pending = list(units)
                while pending:
                    chunksize = max(1, -(-len(pending) // (workers * 4)))
                    try:
                        with ProcessPoolExecutor(
                                max_workers=workers,
                                initializer=initializer,
                                initargs=initargs) as executor:
                            for results in executor.map(
                                    evaluate_unit, pending,
                                    chunksize=chunksize):
                                for request, reports in results:
                                    merge(request, reports)
                        pending = []
                    except BrokenProcessPool:
                        pending = [
                            unit for unit in
                            (tuple(request for request in unit
                                   if request.memo_key not in merged_keys)
                             for unit in pending)
                            if unit]
                        remaining = sum(len(unit) for unit in pending)
                        pool_restarts += 1
                        if pool_restarts > 1:
                            print(f"[scheduler] worker pool broke twice; "
                                  f"degrading to serial in-process evaluation "
                                  f"of the remaining {remaining} request(s)",
                                  file=sys.stderr)
                            for unit in pending:
                                for request, reports in evaluate_unit(unit):
                                    merge(request, reports)
                            pending = []
                            degraded_serial = True
                        else:
                            print(f"[scheduler] worker pool broke (a worker "
                                  f"died, e.g. OOM-killed); respawning the "
                                  f"pool to retry the remaining {remaining} "
                                  f"request(s)", file=sys.stderr)
            finally:
                if self.use_shared_memory and exported_tokens:
                    from repro.tensor import shm

                    for token in exported_tokens:
                        shm.release_suite(token)

        return ScheduleStats(
            requested=len(requests),
            unique=len(unique),
            warm=len(unique) - len(cold) - store_hits,
            computed=len(cold),
            workers=workers,
            store_hits=store_hits,
            store_writes=len(cold) if self.store is not None else 0,
            pool_restarts=pool_restarts,
            degraded_serial=degraded_serial,
            batched=self.use_batch,
            batch_groups=len(units) if self.use_batch else 0,
            shm_segments=shm_segments,
        )

    def prefetch_context(
            self, context: ExperimentContext,
            targets: Optional[Iterable[Tuple[float, str]]] = None,
    ) -> ScheduleStats:
        """:meth:`prefetch` for one context (default: all suite workloads)."""
        return self.prefetch(requests_for_context(context, targets))

    def prefetch_experiments(self, context: ExperimentContext, experiments,
                             params: Optional[Dict[str, dict]] = None,
                             ) -> ScheduleStats:
        """Prefetch the union of evaluation targets of ``experiments``.

        ``params`` optionally maps experiment name → the keyword arguments the
        caller will pass to ``run`` (so e.g. a restricted Fig. 10 ``y`` grid
        announces exactly the evaluations it will perform).
        """
        params = params or {}
        targets = []
        for experiment in experiments:
            targets.extend(experiment.evaluation_targets(
                context, **params.get(experiment.name, {})))
        return self.prefetch(requests_for_context(context, targets))
