"""Parallel evaluation scheduler: batch, deduplicate, fan out, merge.

Every figure/table experiment ultimately consumes per-variant
:class:`~repro.model.stats.PerformanceReport`s keyed by ``(suite,
architecture, overbooking target, kernel, workload)``.  The scheduler turns
that into a batch problem:

1. **Batch** — union the :class:`EvaluationRequest`s of all selected
   experiments (and sweep grid points) up front.
2. **Deduplicate** — drop requests already present in the process-wide report
   memo of :mod:`repro.experiments.runner`; experiments sharing evaluations
   (Figs. 7/8/9, every sweep point at the default ``y``) cost one evaluation.
3. **Fan out** — evaluate the cold requests on a
   :class:`~concurrent.futures.ProcessPoolExecutor`.  A request is picklable
   because it carries the suite's *token*, not the suite: workers rebuild
   suites from seeds via :func:`repro.tensor.suite.suite_from_token` and keep
   them (plus their matrix/tiling caches) alive for the life of the worker.
4. **Merge** — per-variant reports come back pickled and are merged into the
   process-wide memo, so the experiments afterwards run serially against warm
   caches.

When constructed with a :class:`~repro.experiments.store.ReportStore`, the
scheduler adds a *durable* tier between steps 2 and 3: cold requests are
first looked up in the on-disk store (a hit is merged into the memo without
any evaluation), and every freshly computed request is persisted the moment
its reports arrive — one atomic file per request — so an interrupted batch
leaves everything it finished on disk for the next run to resume from.

Evaluation is a deterministic function of the request (seeded generators end
to end), so the merged reports are identical to what serial execution would
have produced — ``tests/experiments/test_scheduler.py`` pins that down to
1e-9 against the single-process golden path.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.accelerator.config import ArchitectureConfig
from repro.experiments.runner import (
    ExperimentContext,
    memoized_reports,
    store_memoized_reports,
)
from repro.model.stats import PerformanceReport
from repro.tensor.suite import suite_from_token


@dataclass(frozen=True)
class EvaluationRequest:
    """One unit of schedulable work: evaluate a workload on every variant.

    ``suite_token`` is the picklable identity of a canonical suite (see
    :attr:`repro.tensor.suite.WorkloadSuite.cache_token`); the other fields —
    including the ``kernel`` axis — mirror the report-memo key, which is what
    makes deduplication exact.
    """

    suite_token: tuple
    architecture: ArchitectureConfig
    overbooking_target: float
    workload: str
    kernel: str = "gram"

    @property
    def memo_key(self) -> tuple:
        return (self.suite_token, self.architecture,
                self.overbooking_target, self.kernel, self.workload)


@dataclass(frozen=True)
class ScheduleStats:
    """What a :meth:`EvaluationScheduler.prefetch` call actually did.

    ``warm`` counts in-process memo hits; ``store_hits`` counts requests
    served from the on-disk report store (when one is attached) and
    ``store_writes`` the freshly computed requests persisted to it.
    ``pool_restarts`` / ``degraded_serial`` record worker-pool crash
    recovery (see :meth:`EvaluationScheduler.prefetch`) — run-dependent
    ephemera, like every other field here, and therefore excluded from all
    artifacts (see :func:`repro.experiments.registry.deterministic_payload`).
    """

    requested: int
    unique: int
    warm: int
    computed: int
    workers: int
    store_hits: int = 0
    store_writes: int = 0
    pool_restarts: int = 0
    degraded_serial: bool = False


def requests_for_context(
        context: ExperimentContext,
        targets: Optional[Iterable[tuple]] = None,
) -> List[EvaluationRequest]:
    """Requests covering ``targets`` of a context.

    Each target is a ``(y, workload)`` pair — evaluated under the context's
    kernel — or a ``(y, workload, kernel)`` triple for experiments that sweep
    the kernel axis (e.g. the cross-kernel Table 3).  ``targets`` defaults to
    every suite workload at the context's overbooking target and kernel.
    Returns ``[]`` for custom suites (no token — nothing to ship to a worker;
    such contexts evaluate serially as before).
    """
    token = context.suite_token
    if token is None:
        return []
    if targets is None:
        targets = [(context.overbooking_target, name)
                   for name in context.workload_names]
    requests = []
    for target in targets:
        y, name = target[0], target[1]
        kernel = target[2] if len(target) > 2 else context.kernel
        requests.append(EvaluationRequest(
            suite_token=token,
            architecture=context.architecture,
            overbooking_target=float(y),
            workload=str(name),
            kernel=str(kernel),
        ))
    return requests


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #
#: Per-worker caches: suites keyed by token (sharing matrices and their
#: tiling caches across requests) and contexts keyed by full configuration.
_WORKER_SUITES: Dict[tuple, object] = {}
_WORKER_CONTEXTS: Dict[tuple, ExperimentContext] = {}


def clear_worker_caches() -> None:
    """Evict the scheduler's suite/context caches (this process only).

    Called by :func:`repro.experiments.runner.clear_process_caches` so a
    "cold" measurement is cold on the serial-fallback path too; worker
    processes of a *future* pool start from whatever the parent holds at
    fork time.
    """
    _WORKER_SUITES.clear()
    _WORKER_CONTEXTS.clear()


def _worker_context(request: EvaluationRequest) -> ExperimentContext:
    key = (request.suite_token, request.architecture,
           request.overbooking_target, request.kernel)
    context = _WORKER_CONTEXTS.get(key)
    if context is None:
        suite = _WORKER_SUITES.get(request.suite_token)
        if suite is None:
            suite = suite_from_token(request.suite_token)
            _WORKER_SUITES[request.suite_token] = suite
        context = ExperimentContext(
            suite=suite,
            architecture=request.architecture,
            overbooking_target=request.overbooking_target,
            kernel=request.kernel,
        )
        _WORKER_CONTEXTS[key] = context
    return context


def _evaluate_request(
        request: EvaluationRequest,
) -> Tuple[EvaluationRequest, Dict[str, PerformanceReport]]:
    """Worker entry point: rebuild state from the request and evaluate.

    Runs the exact serial code path (``ExperimentContext.reports``) on
    reconstructed-but-bit-identical inputs, so the returned reports match
    serial execution exactly.
    """
    context = _worker_context(request)
    return request, context.reports(request.workload)


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #
class EvaluationScheduler:
    """Evaluate batches of requests, in parallel when it pays off.

    Parameters
    ----------
    max_workers:
        Upper bound on worker processes.  ``None`` uses the CPU count; ``1``
        forces serial in-process evaluation (no pool, no pickling).
    min_parallel_requests:
        Below this many cold requests the pool start-up cost outweighs the
        win; they are evaluated in-process instead.
    store:
        Optional :class:`~repro.experiments.store.ReportStore`.  Cold
        requests are looked up in it before any evaluation happens, and
        computed reports are persisted to it as they complete (making the
        batch resumable after a crash).
    """

    def __init__(self, max_workers: Optional[int] = None, *,
                 min_parallel_requests: int = 4, store=None):
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.max_workers = max(1, int(max_workers))
        self.min_parallel_requests = max(1, int(min_parallel_requests))
        self.store = store

    # ------------------------------------------------------------------ #
    def prefetch(self, requests: Sequence[EvaluationRequest]) -> ScheduleStats:
        """Ensure every request's reports are in the process-wide memo.

        Deduplicates against the memo, evaluates the cold remainder (in
        parallel when worth it), merges the results, and reports what it did.
        Afterwards ``context.reports(...)`` for any covered configuration is
        a memo hit.
        """
        unique: Dict[tuple, EvaluationRequest] = {}
        for request in requests:
            if request.suite_token is None:
                raise ValueError(
                    "cannot schedule a request without a suite token; custom "
                    "suites must be evaluated in-process via their context")
            unique.setdefault(request.memo_key, request)

        store_hits = 0
        cold = []
        for key, request in unique.items():
            if memoized_reports(key) is not None:
                continue
            if self.store is not None:
                loaded = self.store.load(key)
                if loaded is not None:
                    store_memoized_reports(key, loaded)
                    store_hits += 1
                    continue
            cold.append(request)
        # Group same-workload requests (which share tilings at equal
        # capacities) so chunking keeps them on one worker.
        cold.sort(key=lambda r: (r.workload, r.kernel, r.overbooking_target))

        merged_keys = set()

        def merge(request: EvaluationRequest,
                  reports: Dict[str, PerformanceReport]) -> None:
            store_memoized_reports(request.memo_key, reports)
            merged_keys.add(request.memo_key)
            if self.store is not None:
                # Persist immediately (one atomic file per request), so an
                # interrupted batch keeps everything it finished.
                self.store.store(request.memo_key, reports)

        pool_restarts = 0
        degraded_serial = False
        workers = min(self.max_workers, len(cold))
        if workers <= 1 or len(cold) < self.min_parallel_requests:
            for request in cold:
                _, reports = _evaluate_request(request)
                merge(request, reports)
            workers = min(workers, 1)
        else:
            # A worker dying (OOM kill, segfault, node eviction) surfaces as
            # BrokenProcessPool with everything in flight lost.  The batch is
            # pure and resumable, so recover instead of crashing the sweep:
            # respawn the pool once and retry what never merged; if the pool
            # breaks again, degrade to in-process evaluation — slow beats
            # dead, and every result merged so far is kept either way.
            pending = list(cold)
            while pending:
                chunksize = max(1, -(-len(pending) // (workers * 4)))
                try:
                    with ProcessPoolExecutor(max_workers=workers) as executor:
                        for request, reports in executor.map(
                                _evaluate_request, pending,
                                chunksize=chunksize):
                            merge(request, reports)
                    pending = []
                except BrokenProcessPool:
                    pending = [request for request in pending
                               if request.memo_key not in merged_keys]
                    pool_restarts += 1
                    if pool_restarts > 1:
                        print(f"[scheduler] worker pool broke twice; "
                              f"degrading to serial in-process evaluation "
                              f"of the remaining {len(pending)} request(s)",
                              file=sys.stderr)
                        for request in pending:
                            _, reports = _evaluate_request(request)
                            merge(request, reports)
                        pending = []
                        degraded_serial = True
                    else:
                        print(f"[scheduler] worker pool broke (a worker "
                              f"died, e.g. OOM-killed); respawning the pool "
                              f"to retry the remaining {len(pending)} "
                              f"request(s)", file=sys.stderr)

        return ScheduleStats(
            requested=len(requests),
            unique=len(unique),
            warm=len(unique) - len(cold) - store_hits,
            computed=len(cold),
            workers=workers,
            store_hits=store_hits,
            store_writes=len(cold) if self.store is not None else 0,
            pool_restarts=pool_restarts,
            degraded_serial=degraded_serial,
        )

    def prefetch_context(
            self, context: ExperimentContext,
            targets: Optional[Iterable[Tuple[float, str]]] = None,
    ) -> ScheduleStats:
        """:meth:`prefetch` for one context (default: all suite workloads)."""
        return self.prefetch(requests_for_context(context, targets))

    def prefetch_experiments(self, context: ExperimentContext, experiments,
                             params: Optional[Dict[str, dict]] = None,
                             ) -> ScheduleStats:
        """Prefetch the union of evaluation targets of ``experiments``.

        ``params`` optionally maps experiment name → the keyword arguments the
        caller will pass to ``run`` (so e.g. a restricted Fig. 10 ``y`` grid
        announces exactly the evaluations it will perform).
        """
        params = params or {}
        targets = []
        for experiment in experiments:
            targets.extend(experiment.evaluation_targets(
                context, **params.get(experiment.name, {})))
        return self.prefetch(requests_for_context(context, targets))
