"""Shared experiment context: workloads, accelerator model, cached reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.accelerator.config import ArchitectureConfig, scaled_default_config
from repro.accelerator.extensor import (
    AcceleratorVariant,
    ExTensorModel,
    VARIANT_NAIVE,
    VARIANT_OVERBOOKING,
    VARIANT_PRESCIENT,
)
from repro.model.stats import PerformanceReport
from repro.model.workload import WorkloadDescriptor
from repro.tensor.sparse import SparseMatrix
from repro.tensor.suite import WorkloadSuite, default_suite, small_suite


@dataclass
class ExperimentContext:
    """Everything an experiment needs, with caching of expensive intermediates.

    Parameters
    ----------
    suite:
        The workload suite to evaluate (default: the full 22-workload suite).
    architecture:
        Accelerator configuration (default: the scaled configuration).
    overbooking_target:
        The ``y`` used by the ExTensor-OB variant (default 10%, as in the
        paper's headline results).
    """

    suite: WorkloadSuite = field(default_factory=default_suite)
    architecture: ArchitectureConfig = field(default_factory=scaled_default_config)
    overbooking_target: float = 0.10
    _model: Optional[ExTensorModel] = field(default=None, repr=False)
    _workloads: Dict[str, WorkloadDescriptor] = field(default_factory=dict, repr=False)
    _reports: Dict[str, Dict[str, PerformanceReport]] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def full(cls, **kwargs) -> "ExperimentContext":
        """Context over the full 22-workload suite."""
        return cls(suite=default_suite(), **kwargs)

    @classmethod
    def quick(cls, **kwargs) -> "ExperimentContext":
        """Context over the three-workload test suite (fast smoke runs)."""
        return cls(suite=small_suite(), **kwargs)

    # ------------------------------------------------------------------ #
    # Cached accessors
    # ------------------------------------------------------------------ #
    @property
    def model(self) -> ExTensorModel:
        """The accelerator model with the standard N / P / OB variants."""
        if self._model is None:
            variants = [
                AcceleratorVariant.naive(),
                AcceleratorVariant.prescient(),
                AcceleratorVariant.overbooking(
                    overbooking_target=self.overbooking_target),
            ]
            self._model = ExTensorModel(self.architecture, variants)
        return self._model

    @property
    def workload_names(self) -> List[str]:
        return self.suite.names

    def matrix(self, name: str) -> SparseMatrix:
        """The workload matrix for ``name``."""
        return self.suite.matrix(name)

    def workload(self, name: str) -> WorkloadDescriptor:
        """The (cached) ``A × Aᵀ`` workload descriptor for ``name``."""
        if name not in self._workloads:
            self._workloads[name] = WorkloadDescriptor.gram(self.matrix(name), name=name)
        return self._workloads[name]

    def reports(self, name: str) -> Dict[str, PerformanceReport]:
        """Per-variant performance reports for workload ``name`` (cached)."""
        if name not in self._reports:
            self._reports[name] = self.model.evaluate_workload(self.workload(name))
        return self._reports[name]

    def all_reports(self) -> Dict[str, Dict[str, PerformanceReport]]:
        """Reports for every workload in the suite."""
        return {name: self.reports(name) for name in self.workload_names}

    # Variant-name passthroughs so experiments do not hard-code strings.
    @property
    def naive_name(self) -> str:
        return VARIANT_NAIVE

    @property
    def prescient_name(self) -> str:
        return VARIANT_PRESCIENT

    @property
    def overbooking_name(self) -> str:
        return VARIANT_OVERBOOKING
