"""Shared experiment context: workloads, accelerator model, cached reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.accelerator.config import ArchitectureConfig, scaled_default_config
from repro.accelerator.extensor import (
    AcceleratorVariant,
    ExTensorModel,
    VARIANT_NAIVE,
    VARIANT_OVERBOOKING,
    VARIANT_PRESCIENT,
)
from repro.model.stats import PerformanceReport
from repro.model.workload import WorkloadDescriptor
from repro.tensor.kernels import kernel_spec
from repro.tensor.sparse import SparseMatrix
from repro.tensor.suite import WorkloadSuite, default_suite, small_suite

#: Process-wide report memo for canonical suites.  A report is a deterministic
#: function of (suite identity, architecture, overbooking target, kernel,
#: workload),
#: and :class:`~repro.model.stats.PerformanceReport` is immutable, so contexts
#: over the same canonical suite share evaluations — a fresh
#: ``ExperimentContext.full()`` does not re-run the engine for workloads an
#: earlier context already evaluated.  Custom suites (``cache_token is None``)
#: never share.
_REPORT_MEMO: Dict[tuple, Dict[str, PerformanceReport]] = {}


def clear_process_caches() -> None:
    """Evict every process-wide memo (reports, suite matrices and, with them,
    each matrix's derived-result caches).

    The memos are bounded for the standard pipeline, but long-running
    parameter sweeps that vary architectures or overbooking targets across
    many contexts accumulate one entry per configuration — call this between
    sweep phases to release them.  Also what the benchmark harness uses to
    measure a genuinely cold run in a warm process.
    """
    import sys

    from repro.tensor.suite import clear_shared_matrix_cache

    _REPORT_MEMO.clear()
    clear_shared_matrix_cache()
    # The scheduler keeps its own suite/context caches for serial fallback;
    # clear them too (via sys.modules rather than an import: scheduler
    # imports runner, and an unimported scheduler has nothing to clear).
    scheduler_mod = sys.modules.get("repro.experiments.scheduler")
    if scheduler_mod is not None:
        scheduler_mod.clear_worker_caches()


def memoized_reports(memo_key: tuple) -> Optional[Dict[str, PerformanceReport]]:
    """The process-wide memo entry for ``memo_key``, or ``None`` if cold.

    The key layout is ``(suite token, architecture, overbooking target,
    kernel, workload)`` — what :meth:`ExperimentContext.memo_key` produces.
    Used by the parallel scheduler to split a batch into warm and cold
    requests.
    """
    return _REPORT_MEMO.get(memo_key)


def store_memoized_reports(memo_key: tuple,
                           reports: Dict[str, PerformanceReport]) -> None:
    """Merge externally computed reports into the process-wide memo.

    The scheduler calls this with reports evaluated in worker processes;
    afterwards any context over the same canonical suite serves them from the
    memo instead of re-running the engine.
    """
    _REPORT_MEMO[memo_key] = dict(reports)


@dataclass
class ExperimentContext:
    """Everything an experiment needs, with caching of expensive intermediates.

    Parameters
    ----------
    suite:
        The workload suite to evaluate (default: the full 22-workload suite).
    architecture:
        Accelerator configuration (default: the scaled configuration).
    overbooking_target:
        The ``y`` used by the ExTensor-OB variant (default 10%, as in the
        paper's headline results).
    kernel:
        Which kernel of the family the context evaluates (default ``"gram"``,
        the paper's ``A × Aᵀ``; see :mod:`repro.tensor.kernels` for the
        others).  The suite provides the primary matrix per workload; the
        kernel decides what is built on top of it.
    """

    suite: WorkloadSuite = field(default_factory=default_suite)
    architecture: ArchitectureConfig = field(default_factory=scaled_default_config)
    overbooking_target: float = 0.10
    kernel: str = "gram"
    _model: Optional[ExTensorModel] = field(default=None, repr=False)
    _workloads: Dict[str, WorkloadDescriptor] = field(default_factory=dict, repr=False)
    _reports: Dict[str, Dict[str, PerformanceReport]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        kernel_spec(self.kernel)  # fail fast on unknown kernels

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def full(cls, **kwargs) -> "ExperimentContext":
        """Context over the full 22-workload suite."""
        return cls(suite=default_suite(), **kwargs)

    @classmethod
    def quick(cls, **kwargs) -> "ExperimentContext":
        """Context over the three-workload test suite (fast smoke runs)."""
        return cls(suite=small_suite(), **kwargs)

    @classmethod
    def for_suite(cls, suite_name: str, **kwargs) -> "ExperimentContext":
        """Context over a named canonical suite (``"full"`` or ``"quick"``)."""
        builders = {"full": cls.full, "quick": cls.quick}
        try:
            builder = builders[suite_name]
        except KeyError:
            raise KeyError(f"unknown suite {suite_name!r}; "
                           f"known: {sorted(builders)}") from None
        return builder(**kwargs)

    def with_overbooking_target(self, overbooking_target: float) -> "ExperimentContext":
        """A context over the same suite and architecture at a different ``y``.

        The derived context shares this context's suite instance (and with it
        every cached matrix and tiling), so sweeping ``y`` re-runs only the
        evaluations that actually depend on it.
        """
        return ExperimentContext(
            suite=self.suite,
            architecture=self.architecture,
            overbooking_target=float(overbooking_target),
            kernel=self.kernel,
        )

    def with_kernel(self, kernel: str) -> "ExperimentContext":
        """A context over the same suite/architecture evaluating ``kernel``.

        Shares this context's suite instance, so the primary matrices (and
        their tiling caches) are reused across kernels; only the kernel's own
        operands and evaluations are new.
        """
        return ExperimentContext(
            suite=self.suite,
            architecture=self.architecture,
            overbooking_target=self.overbooking_target,
            kernel=str(kernel),
        )

    # ------------------------------------------------------------------ #
    # Cached accessors
    # ------------------------------------------------------------------ #
    @property
    def model(self) -> ExTensorModel:
        """The accelerator model with the standard N / P / OB variants."""
        if self._model is None:
            variants = [
                AcceleratorVariant.naive(),
                AcceleratorVariant.prescient(),
                AcceleratorVariant.overbooking(
                    overbooking_target=self.overbooking_target),
            ]
            self._model = ExTensorModel(self.architecture, variants)
        return self._model

    @property
    def workload_names(self) -> List[str]:
        return self.suite.names

    def matrix(self, name: str) -> SparseMatrix:
        """The workload matrix for ``name``."""
        return self.suite.matrix(name)

    def workload(self, name: str) -> WorkloadDescriptor:
        """The (cached) workload descriptor for ``name`` under this kernel.

        ``kernel="gram"`` (the default) builds the paper's ``A × Aᵀ`` exactly
        as before; other kernels resolve their extra operands (paired sparse
        matrices, deterministic dense factors) from the suite.
        """
        if name not in self._workloads:
            self._workloads[name] = WorkloadDescriptor.from_suite(
                self.suite, name, kernel=self.kernel)
        return self._workloads[name]

    @property
    def suite_token(self):
        """Picklable identity of the suite (``None`` for custom suites).

        Workers of the parallel scheduler rebuild the suite from this token
        via :func:`repro.tensor.suite.suite_from_token`.
        """
        return self.suite.cache_token

    def memo_key(self, name: str):
        """Process-wide memo key for workload ``name`` (``None`` = unshared).

        Layout: ``(suite token, architecture, overbooking target, kernel,
        workload)`` — mirrored by
        :attr:`repro.experiments.scheduler.EvaluationRequest.memo_key`.
        """
        suite_token = self.suite_token
        if suite_token is None:
            return None
        return (suite_token, self.architecture, self.overbooking_target,
                self.kernel, name)

    # Backwards-compatible alias (pre-scheduler internal name).
    _memo_key = memo_key

    def reports(self, name: str) -> Dict[str, PerformanceReport]:
        """Per-variant performance reports for workload ``name`` (cached).

        Caching is two-level: per-context, plus a process-wide memo for the
        canonical suites so repeated contexts (every figure script builds its
        own) evaluate each (workload, variant) pair once per process.
        """
        if name not in self._reports:
            memo_key = self._memo_key(name)
            memoized = _REPORT_MEMO.get(memo_key) if memo_key is not None else None
            if memoized is not None:
                # Copy at the memo boundary: callers may mutate the returned
                # dict without polluting other contexts.
                self._reports[name] = dict(memoized)
            else:
                self._reports[name] = self.model.evaluate_workload(self.workload(name))
                if memo_key is not None:
                    _REPORT_MEMO[memo_key] = dict(self._reports[name])
        return self._reports[name]

    def all_reports(self) -> Dict[str, Dict[str, PerformanceReport]]:
        """Reports for every workload in the suite."""
        return {name: self.reports(name) for name in self.workload_names}

    # Variant-name passthroughs so experiments do not hard-code strings.
    @property
    def naive_name(self) -> str:
        return VARIANT_NAIVE

    @property
    def prescient_name(self) -> str:
        return VARIANT_PRESCIENT

    @property
    def overbooking_name(self) -> str:
        # The OB variant's report name varies with the overbooking target
        # (e.g. "ExTensor-OB(y=22%)"), so resolve it from the model instead
        # of returning the y=10% constant.
        for variant in self.model.variants:
            if variant.name.startswith(VARIANT_OVERBOOKING):
                return variant.name
        return VARIANT_OVERBOOKING
