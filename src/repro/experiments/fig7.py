"""Fig. 7: speedup of ExTensor-P and ExTensor-OB relative to ExTensor-N.

The paper reports a geometric-mean speedup of 52.7× for ExTensor-OB over
ExTensor-N and 2.3× over ExTensor-P.  The reproduction computes the same
per-workload bars and geometric means on the synthetic suite; EXPERIMENTS.md
records the measured values next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.model.stats import geometric_mean
from repro.utils.text import format_table


@dataclass(frozen=True)
class SpeedupRow:
    """Per-workload speedups relative to ExTensor-N."""

    workload: str
    prescient_speedup: float
    overbooking_speedup: float

    @property
    def overbooking_vs_prescient(self) -> float:
        if self.prescient_speedup == 0:
            return float("inf")
        return self.overbooking_speedup / self.prescient_speedup


@dataclass(frozen=True)
class Fig7Result:
    rows: List[SpeedupRow]

    @property
    def geomean_prescient(self) -> float:
        return geometric_mean(r.prescient_speedup for r in self.rows)

    @property
    def geomean_overbooking(self) -> float:
        return geometric_mean(r.overbooking_speedup for r in self.rows)

    @property
    def geomean_overbooking_vs_prescient(self) -> float:
        return geometric_mean(r.overbooking_vs_prescient for r in self.rows)

    def row(self, workload: str) -> SpeedupRow:
        for entry in self.rows:
            if entry.workload == workload:
                return entry
        raise KeyError(workload)


@register(name="fig7", artifact="Fig. 7",
          title="speedup over ExTensor-N", needs_reports=True)
def run(context: ExperimentContext) -> Fig7Result:
    """Evaluate all workloads on the three variants and compute speedups."""
    rows = []
    for name in context.workload_names:
        reports = context.reports(name)
        naive = reports[context.naive_name]
        prescient = reports[context.prescient_name]
        overbooking = reports[context.overbooking_name]
        rows.append(SpeedupRow(
            workload=name,
            prescient_speedup=prescient.speedup_over(naive),
            overbooking_speedup=overbooking.speedup_over(naive),
        ))
    return Fig7Result(rows=rows)


def format_result(result: Fig7Result) -> str:
    body = [
        (r.workload, f"{r.prescient_speedup:.1f}x", f"{r.overbooking_speedup:.1f}x",
         f"{r.overbooking_vs_prescient:.2f}x")
        for r in result.rows
    ]
    body.append((
        "geomean",
        f"{result.geomean_prescient:.1f}x",
        f"{result.geomean_overbooking:.1f}x",
        f"{result.geomean_overbooking_vs_prescient:.2f}x",
    ))
    return format_table(
        ["Workload", "ExTensor-P / ExTensor-N", "ExTensor-OB / ExTensor-N",
         "ExTensor-OB / ExTensor-P"],
        body,
        title="Fig. 7: speedup over ExTensor-N",
    )
