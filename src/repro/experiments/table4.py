"""Table 4 (extension): overbooking benefit vs. sparsity *structure* skew.

The paper's evaluation fixes the workload set (22 SuiteSparse matrices) and
reads the overbooking benefit off whatever structure those matrices happen to
have.  The sparsity-model registry (:mod:`repro.tensor.synth`) inverts that:
this experiment sweeps a ladder of synthetic structure classes — from
perfectly uniform (where Swiftiles' initial estimate is exact and overbooking
has little to add) through banded, blocked and gradient structure up to
RMAT-like hub skew (the paper's best case) — and reports, per
``(model, kernel)``, the tile-occupancy skew of the generated matrix next to
the overbooking speedups.  The result makes the paper's qualitative claim
("overbooking wins where occupancy variability is high") a measured curve.

The synthetic suite is canonical (``("synth", ...)`` cache scope), so the
evaluations are batched through the same parallel scheduler as every other
experiment: workers regenerate the matrices bit-identically from their
``(model, params, seed)`` identities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheduler import EvaluationScheduler, requests_for_context
from repro.model.stats import geometric_mean
from repro.tensor.kernels import kernel_names
from repro.tensor.suite import synth_suite
from repro.tensor.synth import synth_specs, tile_occupancy_cv

#: The structure ladder, ordered by (expected) increasing occupancy skew.
DEFAULT_SPECS = (
    "uniform",
    "density_gradient:gamma=1.0",
    "density_gradient:gamma=3.0",
    "banded",
    "block_diagonal",
    "power_law_rows:alpha=1.3",
    "power_law_rows:alpha=2.0",
)

#: Smaller instances of the same ladder for the quick/CI path.
QUICK_SPECS = (
    "uniform:n=600,nnz=5000",
    "density_gradient:n=600,nnz=5500,gamma=2.5",
    "banded:n=600,bandwidth=10,off_band_nnz=1200",
    "power_law_rows:n=600,nnz=6000,alpha=1.9",
)

DEFAULT_KERNELS = kernel_names()


@dataclass(frozen=True)
class Table4Row:
    """Overbooking outcome of one ``(sparsity model, kernel)`` pair."""

    model: str
    params: str
    workload: str
    kernel: str
    nnz: int
    occupancy_cv: float
    speedup_ob_vs_naive: float
    speedup_ob_vs_prescient: float
    energy_ratio_ob_vs_naive: float
    glb_overbooking_rate: float


@dataclass(frozen=True)
class Table4Result:
    """Rows model-major (the structure ladder), kernel-minor."""

    workloads: List[str]
    kernels: List[str]
    overbooking_target: float
    rows: List[Table4Row]

    def row(self, workload: str, kernel: str) -> Table4Row:
        for entry in self.rows:
            if entry.workload == workload and entry.kernel == kernel:
                return entry
        raise KeyError((workload, kernel))

    def geomean_speedup(self, workload: str) -> float:
        """Geomean OB/N speedup of one structure point across kernels."""
        return geometric_mean(
            entry.speedup_ob_vs_naive for entry in self.rows
            if entry.workload == workload)


@register(name="table4", artifact="Table 4",
          title="overbooking benefit vs. structure skew",
          uses_suite=False,  # the workloads are this module's own ladder
          quick_params={"specs": QUICK_SPECS, "kernels": ("gram", "spmv")},
          kernels=DEFAULT_KERNELS)
def run(context: ExperimentContext,
        specs: Sequence = DEFAULT_SPECS,
        kernels: Sequence[str] = DEFAULT_KERNELS,
        max_workers: Optional[int] = None) -> Table4Result:
    """Sweep the structure ladder across kernels.

    The context supplies the architecture, overbooking target and suite seed;
    the workloads themselves come from the synthetic structure ladder, one
    canonical :func:`~repro.tensor.suite.synth_suite` evaluated under every
    kernel in ``kernels`` through one scheduler prefetch.
    """
    resolved = synth_specs(specs)
    suite = synth_suite(resolved, seed=context.suite.seed)
    base = ExperimentContext(
        suite=suite,
        architecture=context.architecture,
        overbooking_target=context.overbooking_target,
        kernel=kernels[0],
    )
    contexts = {kernel: base.with_kernel(kernel) for kernel in kernels}
    requests = [request for ctx in contexts.values()
                for request in requests_for_context(ctx)]
    EvaluationScheduler(max_workers=max_workers).prefetch(requests)

    rows: List[Table4Row] = []
    for spec in resolved:
        name = spec.workload_name
        matrix = suite.matrix(name)
        skew = tile_occupancy_cv(matrix)
        for kernel in kernels:
            ctx = contexts[kernel]
            reports = ctx.reports(name)
            naive = reports[ctx.naive_name]
            prescient = reports[ctx.prescient_name]
            overbooking = reports[ctx.overbooking_name]
            rows.append(Table4Row(
                model=spec.model,
                params=spec.params_label,
                workload=name,
                kernel=kernel,
                nnz=matrix.nnz,
                occupancy_cv=skew,
                speedup_ob_vs_naive=overbooking.speedup_over(naive),
                speedup_ob_vs_prescient=overbooking.speedup_over(prescient),
                energy_ratio_ob_vs_naive=overbooking.energy_ratio_over(naive),
                glb_overbooking_rate=overbooking.glb_overbooking_rate,
            ))
    return Table4Result(
        workloads=[spec.workload_name for spec in resolved],
        kernels=list(kernels),
        overbooking_target=context.overbooking_target,
        rows=rows,
    )


def format_result(result: Table4Result) -> str:
    from repro.utils.text import format_table

    return format_table(
        ["model", "kernel", "nnz", "occupancy CV", "OB/N speedup",
         "OB/P speedup", "OB/N energy", "GLB overbook rate"],
        [
            (r.workload, r.kernel, r.nnz, f"{r.occupancy_cv:.2f}",
             f"{r.speedup_ob_vs_naive:.2f}x",
             f"{r.speedup_ob_vs_prescient:.2f}x",
             f"{r.energy_ratio_ob_vs_naive:.2f}x",
             f"{r.glb_overbooking_rate:.1%}")
            for r in result.rows
        ],
        title=(f"Table 4: overbooking benefit vs. structure skew "
               f"({len(result.workloads)} sparsity models x "
               f"{len(result.kernels)} kernels, "
               f"y={result.overbooking_target:.0%})"),
    )
