"""Fig. 8: energy of ExTensor-P and ExTensor-OB relative to ExTensor-N.

The paper reports a geometric-mean energy reduction of 22.5× over ExTensor-N
and 2.5× over ExTensor-P for ExTensor-OB.  The reproduction reports the same
normalized energy-efficiency bars on the synthetic suite, plus the per-
component energy breakdown of the overbooked variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.model.stats import geometric_mean
from repro.utils.text import format_table


@dataclass(frozen=True)
class EnergyRow:
    """Per-workload energy efficiency relative to ExTensor-N (higher = better)."""

    workload: str
    prescient_efficiency: float
    overbooking_efficiency: float
    overbooking_breakdown: Dict[str, float]

    @property
    def overbooking_vs_prescient(self) -> float:
        if self.prescient_efficiency == 0:
            return float("inf")
        return self.overbooking_efficiency / self.prescient_efficiency


@dataclass(frozen=True)
class Fig8Result:
    rows: List[EnergyRow]

    @property
    def geomean_prescient(self) -> float:
        return geometric_mean(r.prescient_efficiency for r in self.rows)

    @property
    def geomean_overbooking(self) -> float:
        return geometric_mean(r.overbooking_efficiency for r in self.rows)

    @property
    def geomean_overbooking_vs_prescient(self) -> float:
        return geometric_mean(r.overbooking_vs_prescient for r in self.rows)

    def row(self, workload: str) -> EnergyRow:
        for entry in self.rows:
            if entry.workload == workload:
                return entry
        raise KeyError(workload)


@register(name="fig8", artifact="Fig. 8",
          title="energy relative to ExTensor-N", needs_reports=True)
def run(context: ExperimentContext) -> Fig8Result:
    """Evaluate energy efficiency of every workload on the three variants."""
    rows = []
    for name in context.workload_names:
        reports = context.reports(name)
        naive = reports[context.naive_name]
        prescient = reports[context.prescient_name]
        overbooking = reports[context.overbooking_name]
        rows.append(EnergyRow(
            workload=name,
            prescient_efficiency=prescient.energy_ratio_over(naive),
            overbooking_efficiency=overbooking.energy_ratio_over(naive),
            overbooking_breakdown={
                component: overbooking.energy.fraction(component)
                for component in overbooking.energy.per_component_pj
            },
        ))
    return Fig8Result(rows=rows)


def format_result(result: Fig8Result) -> str:
    body = [
        (r.workload, f"{r.prescient_efficiency:.1f}x", f"{r.overbooking_efficiency:.1f}x",
         f"{r.overbooking_vs_prescient:.2f}x",
         f"{r.overbooking_breakdown.get('dram', 0.0):.0%}")
        for r in result.rows
    ]
    body.append((
        "geomean",
        f"{result.geomean_prescient:.1f}x",
        f"{result.geomean_overbooking:.1f}x",
        f"{result.geomean_overbooking_vs_prescient:.2f}x",
        "",
    ))
    return format_table(
        ["Workload", "ExTensor-P eff.", "ExTensor-OB eff.", "OB / P",
         "OB DRAM energy share"],
        body,
        title="Fig. 8: energy efficiency normalized to ExTensor-N (higher is better)",
    )
