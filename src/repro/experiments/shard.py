"""Fault-tolerant cooperative sweeps: shard, claim, crash, reclaim, merge.

:func:`repro.experiments.sweep.sweep_grid` evaluates a grid in one process.
This module turns the same grid into a *cooperative* job that any number of
workers — on one machine or many sharing a filesystem — can chew through
together, where any worker can be ``kill -9``'d at any moment and the job
still converges to artifacts **byte-identical** to a serial run:

* **Deterministic partitioning.**  Every grid cell (an
  :class:`~repro.experiments.scheduler.EvaluationRequest`) hashes to a shard
  via its content digest (:func:`shard_of`), so ``sweep --shard i/N``
  workers agree on the split without talking to each other, regardless of
  start order or how many of them ever start.
* **Lease-based claiming.**  Before evaluating a cell, a worker claims it by
  creating an atomic *lease file* under the store's ``leases/`` directory
  (``O_CREAT | O_EXCL`` for a free cell, :func:`os.replace` takeover for an
  expired one).  The lease carries the owner id and a **heartbeat counter**
  renewed by a background thread while the cell evaluates.
* **Crash detection without synchronized clocks.**  Workers never compare
  wall clocks.  An observer watches a lease's heartbeat with its *own*
  monotonic clock: a heartbeat that advances is a live owner; one frozen for
  a full TTL is a dead or wedged owner, and the cell is reclaimed.  A worker
  that is merely slow past TTL gets duplicated, not corrupted: evaluation is
  a pure function of the cell and store writes are atomic last-writer-wins
  with bit-identical content, so duplication is waste, never damage — the
  lease protocol is an *efficiency* layer on a substrate that is already
  correct under races.
* **Work stealing.**  A worker that finishes its own shard scans the rest of
  the grid and claims whatever is unclaimed or expired, so an interrupted
  10-worker sweep resumed by any subset of workers still finishes.
* **Merge/status.**  :func:`merge_shards` verifies the published grid
  manifest and that every cell landed, then assembles the final JSON/CSV
  through the exact :func:`~repro.experiments.sweep.collect_result` path a
  serial sweep uses — byte-identity by construction, with run-dependent
  ephemera stripped by
  :func:`repro.experiments.registry.deterministic_payload`.
  :func:`shard_status` reports progress (stored / leased / missing cells)
  without touching anything.

Failure drills live in :mod:`repro.utils.faults` (``REPRO_FAULTS``): the
kill-resume acceptance test SIGKILLs a worker holding a lease and asserts
the merged bytes anyway; the transient-I/O and corrupt-entry drills assert
the same.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.scheduler import (
    EvaluationScheduler,
    _evaluate_request,
    workload_evaluator,
)
from repro.experiments.runner import store_memoized_reports
from repro.experiments.store import (
    LEASES_DIR,
    ReportStore,
    StoreError,
    _atomic_write_json,
    key_digest,
)
from repro.experiments.sweep import GridPlan, SweepResult, collect_result, plan_grid
from repro.utils import faults

#: Default lease time-to-live: how long a heartbeat may stay frozen before
#: observers may reclaim the cell.  Generous versus per-cell evaluation time
#: (milliseconds-to-seconds) because a false takeover only duplicates work.
DEFAULT_LEASE_TTL = 30.0

_OWNER_SEQUENCE = itertools.count()


class ShardError(StoreError):
    """A sharded-sweep protocol failure (bad spec, incomplete merge, ...)."""


# --------------------------------------------------------------------- #
# Deterministic partitioning
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardSpec:
    """``--shard i/N``: this worker is shard ``index`` (1-based) of ``count``."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ShardError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise ShardError(
                f"shard index must be in 1..{self.count}, got {self.index} "
                f"(shards are 1-based: --shard 1/{self.count} .. "
                f"{self.count}/{self.count})")

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        index, slash, count = str(text).partition("/")
        try:
            if not slash:
                raise ValueError
            return cls(index=int(index), count=int(count))
        except ValueError:
            raise ShardError(
                f"bad shard spec {text!r}; expected I/N, e.g. 2/4") from None

    @property
    def label(self) -> str:
        return f"{self.index}/{self.count}"


def shard_of(memo_key: tuple, shard_count: int) -> int:
    """The 1-based shard owning ``memo_key`` — a pure function of the cell.

    Derived from the cell's content digest (the same SHA-256 that names its
    store entry), so every worker computes the same assignment and the split
    is insensitive to grid enumeration order.
    """
    return int(key_digest(memo_key)[:8], 16) % shard_count + 1


# --------------------------------------------------------------------- #
# Leases
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LeaseInfo:
    """Parsed contents of a lease file."""

    owner: str
    heartbeat: int
    claimed_unix: float
    renewed_unix: float


def default_owner() -> str:
    """A worker identity unique across hosts, processes and managers."""
    return (f"{socket.gethostname()}-{os.getpid()}"
            f"-{next(_OWNER_SEQUENCE)}")


class Lease:
    """A successfully claimed cell; renew while working, release when done."""

    def __init__(self, manager: "LeaseManager", memo_key: tuple, path: Path):
        self.manager = manager
        self.memo_key = memo_key
        self.path = path
        self.heartbeat = 0

    def renew(self) -> None:
        """Bump the heartbeat counter and republish the lease atomically.

        A no-op under the ``heartbeat.stall`` fault — the wedged-worker
        drill: the process lives on but observers see a frozen heartbeat
        and reclaim the cell after TTL.
        """
        if faults.active().heartbeat_stalled():
            return
        self.heartbeat += 1
        _atomic_write_json(self.path,
                           self.manager._payload(heartbeat=self.heartbeat))

    def release(self) -> None:
        """Drop the claim (idempotent; the cell's store entry, if any, stays)."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    @contextmanager
    def keepalive(self, interval: Optional[float] = None):
        """Renew on a daemon thread for the duration of the ``with`` block."""
        if interval is None:
            interval = max(0.05, self.manager.ttl / 4.0)
        stop = threading.Event()

        def loop() -> None:
            while not stop.wait(interval):
                self.renew()

        thread = threading.Thread(target=loop, daemon=True,
                                  name=f"lease-renew-{self.path.stem[:12]}")
        thread.start()
        try:
            yield self
        finally:
            stop.set()
            thread.join(timeout=5.0)


class LeaseManager:
    """Claim, observe, and reclaim per-cell leases under ``<store>/leases/``.

    Parameters
    ----------
    store_root:
        The report store's root directory (leases live beside ``objects/``).
    owner:
        This worker's identity, written into every lease it holds.
    ttl:
        Seconds a heartbeat may stay frozen (as measured by *this* process's
        monotonic clock) before the lease counts as expired.
    clock:
        Monotonic time source — injectable so expiry tests run on a fake
        clock instead of sleeping.
    """

    def __init__(self, store_root, *, owner: Optional[str] = None,
                 ttl: float = DEFAULT_LEASE_TTL,
                 clock: Callable[[], float] = time.monotonic):
        self.root = Path(store_root) / LEASES_DIR
        self.owner = owner or default_owner()
        self.ttl = float(ttl)
        self.clock = clock
        #: Per-lease observation: (heartbeat, first seen at that heartbeat,
        #: ever seen advancing).  All times are this process's clock.
        self._seen: Dict[Path, Tuple[int, float, bool]] = {}
        #: Expired leases this manager took over (for run statistics).
        self.reclaimed = 0

    def path_for(self, memo_key: tuple) -> Path:
        return self.root / f"{key_digest(memo_key)}.json"

    def _payload(self, heartbeat: int) -> dict:
        # Wall-clock fields are informational (status displays); the
        # protocol itself never compares clocks across processes.
        now_unix = time.time()
        return {"owner": self.owner, "heartbeat": int(heartbeat),
                "claimed_unix": now_unix, "renewed_unix": now_unix}

    def read(self, memo_key: tuple) -> Optional[LeaseInfo]:
        """The current lease on a cell, or ``None`` (malformed == absent)."""
        try:
            payload = json.loads(self.path_for(memo_key).read_text())
            return LeaseInfo(owner=str(payload["owner"]),
                             heartbeat=int(payload["heartbeat"]),
                             claimed_unix=float(payload.get("claimed_unix", 0)),
                             renewed_unix=float(payload.get("renewed_unix", 0)))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def state(self, memo_key: tuple) -> str:
        """Observe a cell's lease: ``free``/``mine``/``held-alive``/
        ``held-unknown``/``expired``.

        ``held-unknown`` is a lease whose heartbeat we have not yet watched
        for long enough to judge; re-observing resolves it to ``held-alive``
        (heartbeat advanced) or ``expired`` (frozen for a full TTL).
        """
        path = self.path_for(memo_key)
        info = self.read(memo_key)
        if info is None:
            self._seen.pop(path, None)
            return "free"
        if info.owner == self.owner:
            return "mine"
        now = self.clock()
        previous = self._seen.get(path)
        if previous is None:
            self._seen[path] = (info.heartbeat, now, False)
            return "held-unknown"
        seen_heartbeat, since, advanced = previous
        if info.heartbeat != seen_heartbeat:
            self._seen[path] = (info.heartbeat, now, True)
            return "held-alive"
        if now - since >= self.ttl:
            return "expired"
        return "held-alive" if advanced else "held-unknown"

    def try_claim(self, memo_key: tuple) -> Optional[Lease]:
        """Claim a cell if it is free or expired; ``None`` if someone holds it.

        Free cells are claimed with ``O_CREAT | O_EXCL`` (exactly one racing
        claimer wins).  Expired cells are taken over with an atomic
        :func:`os.replace` and then *read back*: last writer wins, so the
        read-back tells each racer whether it actually owns the lease now.
        """
        path = self.path_for(memo_key)
        self.root.mkdir(parents=True, exist_ok=True)
        state = self.state(memo_key)
        if state in ("held-alive", "held-unknown"):
            return None
        if state == "free" and not path.exists():
            payload = self._payload(heartbeat=0)
            try:
                descriptor = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return None  # a racing claimer won; observe it next round
            with os.fdopen(descriptor, "w") as handle:
                json.dump(payload, handle, indent=1)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
        else:
            # Expired, malformed-on-disk ("free" but the file exists — a
            # torn lease write must not block the cell forever), or a stale
            # "mine" from a previous incarnation: atomic takeover.
            _atomic_write_json(path, self._payload(heartbeat=0))
            confirmation = self.read(memo_key)
            if confirmation is None or confirmation.owner != self.owner:
                return None  # another reclaimer replaced us; theirs now
            if state == "expired":
                self.reclaimed += 1
        self._seen.pop(path, None)
        return Lease(self, memo_key, path)

    def lease_paths(self):
        if self.root.exists():
            yield from sorted(self.root.glob("*.json"))


# --------------------------------------------------------------------- #
# The shard worker
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardRunStats:
    """What one shard worker did (run-dependent — never in artifacts)."""

    shard_index: int
    shard_count: int
    grid_cells: int
    own_cells: int
    own_stored_at_start: int
    evaluated: int
    stolen: int
    reclaimed_leases: int
    left_to_peers: int
    signature: str


def run_shard(suite=None, *, shard, store: ReportStore,
              y_values: Sequence[float] = (0.05, 0.10, 0.22),
              glb_scales: Sequence[float] = (1.0,),
              pe_scales: Sequence[float] = (1.0,),
              kernels: Sequence[str] = ("gram",),
              synth: Optional[Sequence] = None,
              base_architecture=None,
              workloads: Optional[Sequence[str]] = None,
              lease_ttl: float = DEFAULT_LEASE_TTL,
              poll_interval: Optional[float] = None,
              steal: bool = True,
              owner: Optional[str] = None,
              use_batch: bool = True,
              clock: Callable[[], float] = time.monotonic,
              sleep: Callable[[float], None] = time.sleep) -> ShardRunStats:
    """Run one worker of a cooperative sharded sweep.

    Grid-shaping arguments mirror :func:`~repro.experiments.sweep.sweep_grid`
    — every worker (and the final ``merge``) must be launched with the same
    ones.  ``shard`` is a :class:`ShardSpec` or an ``"i/N"`` string.

    The worker publishes the grid manifest (idempotently — every worker
    writes the same bytes), evaluates the cells :func:`shard_of` assigns to
    it, then — with ``steal=True`` — claims any remaining cell whose lease
    is absent or expired, polling until every outstanding cell is stored or
    visibly owned by a live peer.  Results are persisted per cell, so a
    worker dying at any instant loses at most the cell it was computing.

    ``use_batch`` evaluates cells through the per-``(kernel, workload)``
    vectorized evaluator (:mod:`repro.model.batch`) — bit-identical reports,
    shared tiling/scaffolding work across a workload's cells — while the
    claim → heartbeat → evaluate → store → release protocol stays strictly
    per cell, so lease semantics (and the fault drills that pin them down)
    are unchanged.  ``False`` forces the golden per-point path.

    ``clock``/``sleep``/``poll_interval``/``owner`` are injection points for
    deterministic tests; real deployments leave them defaulted.
    """
    spec = ShardSpec.parse(shard) if not isinstance(shard, ShardSpec) else shard
    if store is None:
        raise ValueError("run_shard requires a store: the store *is* the "
                         "coordination substrate (CLI: --shard needs --store)")
    plan = plan_grid(suite, y_values=y_values, glb_scales=glb_scales,
                     pe_scales=pe_scales, kernels=kernels, synth=synth,
                     base_architecture=base_architecture, workloads=workloads)
    store.write_manifest(plan.signature, plan.manifest_payload("in-progress"))

    cells = plan.unique_requests
    own = [request for request in cells
           if shard_of(request.memo_key, spec.count) == spec.index]
    own_keys = {request.memo_key for request in own}
    own_stored_at_start = sum(
        1 for request in own if store.contains(request.memo_key))

    manager = LeaseManager(store.root, owner=owner, ttl=lease_ttl,
                           clock=clock)
    poll = (poll_interval if poll_interval is not None
            else max(0.05, lease_ttl / 5.0))
    injector = faults.active()
    counters = {"evaluated": 0, "stolen": 0}

    def evaluate(request):
        if not use_batch:
            return _evaluate_request(request)[1]
        return workload_evaluator(request).reports(
            request.architecture, request.overbooking_target)

    def process(requests: List) -> List:
        """Claim-and-evaluate each request; return the unclaimable ones."""
        pending = []
        for request in requests:
            if store.contains(request.memo_key):
                continue
            lease = manager.try_claim(request.memo_key)
            if lease is None:
                pending.append(request)
                continue
            # The kill drill fires *here*: the worker dies holding the
            # lease, before any result reaches the store.
            injector.count_claimed_cell()
            try:
                with lease.keepalive():
                    reports = evaluate(request)
                    store_memoized_reports(request.memo_key, reports)
                    store.store(request.memo_key, reports)
            finally:
                lease.release()
            counters["evaluated"] += 1
            if request.memo_key not in own_keys:
                counters["stolen"] += 1
        return pending

    remaining = process(own)
    if steal:
        remaining = [request for request in cells
                     if not store.contains(request.memo_key)]
    while remaining:
        remaining = process(remaining)
        remaining = [request for request in remaining
                     if not store.contains(request.memo_key)]
        if not remaining:
            break
        undecided = [request for request in remaining
                     if manager.state(request.memo_key) != "held-alive"]
        if not undecided:
            # Every outstanding cell is visibly owned by a live peer:
            # leave the work to them and exit — merge runs once all
            # workers have.
            break
        sleep(poll)

    outstanding = sum(1 for request in cells
                      if not store.contains(request.memo_key))
    return ShardRunStats(
        shard_index=spec.index,
        shard_count=spec.count,
        grid_cells=len(cells),
        own_cells=len(own),
        own_stored_at_start=own_stored_at_start,
        evaluated=counters["evaluated"],
        stolen=counters["stolen"],
        reclaimed_leases=manager.reclaimed,
        left_to_peers=outstanding,
        signature=plan.signature,
    )


def format_shard_stats(stats: ShardRunStats) -> str:
    """One-paragraph stderr summary of a shard worker's run."""
    lines = [
        f"shard {stats.shard_index}/{stats.shard_count}: "
        f"{stats.own_cells} of {stats.grid_cells} grid cell(s) assigned "
        f"({stats.own_stored_at_start} already stored)",
        f"  evaluated {stats.evaluated} cell(s)"
        + (f" ({stats.stolen} stolen from other shards)"
           if stats.stolen else ""),
    ]
    if stats.reclaimed_leases:
        lines.append(f"  reclaimed {stats.reclaimed_leases} expired "
                     f"lease(s) from dead/wedged worker(s)")
    if stats.left_to_peers:
        lines.append(f"  left {stats.left_to_peers} cell(s) to live peer(s) "
                     f"— run 'merge' once all workers exit")
    else:
        lines.append(f"  grid complete in store; run 'merge' to write "
                     f"artifacts (manifest {stats.signature})")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Status & merge
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LeaseView:
    """One outstanding lease, as seen by ``status`` (wall-clock age is
    informational only — the protocol never compares clocks)."""

    workload: str
    kernel: str
    overbooking_target: float
    owner: str
    heartbeat: int
    renewed_age_seconds: float


@dataclass(frozen=True)
class ShardStatus:
    """Progress of a sharded grid: what is done, claimed, and missing."""

    signature: str
    manifest_status: Optional[str]
    cells: int
    stored: int
    missing: int
    leases: List[LeaseView] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.missing == 0


def shard_status(suite=None, *, store: ReportStore,
                 y_values: Sequence[float] = (0.05, 0.10, 0.22),
                 glb_scales: Sequence[float] = (1.0,),
                 pe_scales: Sequence[float] = (1.0,),
                 kernels: Sequence[str] = ("gram",),
                 synth: Optional[Sequence] = None,
                 base_architecture=None,
                 workloads: Optional[Sequence[str]] = None) -> ShardStatus:
    """Inspect a sharded grid's progress without evaluating or claiming."""
    plan = plan_grid(suite, y_values=y_values, glb_scales=glb_scales,
                     pe_scales=pe_scales, kernels=kernels, synth=synth,
                     base_architecture=base_architecture, workloads=workloads)
    manifest = store.read_manifest(plan.signature)
    manager = LeaseManager(store.root, owner="status-observer")
    cells = plan.unique_requests
    stored = 0
    leases: List[LeaseView] = []
    now_unix = time.time()
    for request in cells:
        if store.contains(request.memo_key):
            stored += 1
            continue
        info = manager.read(request.memo_key)
        if info is not None:
            leases.append(LeaseView(
                workload=request.workload,
                kernel=request.kernel,
                overbooking_target=request.overbooking_target,
                owner=info.owner,
                heartbeat=info.heartbeat,
                renewed_age_seconds=max(0.0, now_unix - info.renewed_unix),
            ))
    return ShardStatus(
        signature=plan.signature,
        manifest_status=(manifest or {}).get("status"),
        cells=len(cells),
        stored=stored,
        missing=len(cells) - stored,
        leases=leases,
    )


def format_status(status: ShardStatus) -> str:
    """Human-readable rendering of :func:`shard_status`."""
    manifest = status.manifest_status or "absent (no sweep/shard has run?)"
    lines = [
        f"grid {status.signature}: manifest {manifest}",
        f"  cells   : {status.stored}/{status.cells} stored, "
        f"{status.missing} missing",
    ]
    for lease in status.leases:
        lines.append(
            f"  leased  : {lease.kernel}/{lease.workload} "
            f"y={lease.overbooking_target:g} by {lease.owner} "
            f"(heartbeat {lease.heartbeat}, renewed "
            f"{lease.renewed_age_seconds:.1f}s ago by wall clock)")
    if status.complete:
        lines.append("  ready to merge")
    return "\n".join(lines)


def merge_shards(suite=None, *, store: ReportStore,
                 y_values: Sequence[float] = (0.05, 0.10, 0.22),
                 glb_scales: Sequence[float] = (1.0,),
                 pe_scales: Sequence[float] = (1.0,),
                 kernels: Sequence[str] = ("gram",),
                 synth: Optional[Sequence] = None,
                 base_architecture=None,
                 workloads: Optional[Sequence[str]] = None) -> SweepResult:
    """Assemble a completed sharded grid into its final :class:`SweepResult`.

    Verifies the grid manifest exists and agrees with the planned cell
    count, and that *every* cell is present in the store — refusing (with a
    :class:`ShardError` naming the gap) rather than silently recomputing or
    emitting a partial artifact.  Assembly then runs the exact serial path
    (:func:`~repro.experiments.sweep.collect_result` over store-served
    reports), so the JSON/CSV bytes match a single-process sweep exactly.
    """
    plan = plan_grid(suite, y_values=y_values, glb_scales=glb_scales,
                     pe_scales=pe_scales, kernels=kernels, synth=synth,
                     base_architecture=base_architecture, workloads=workloads)
    manifest = store.read_manifest(plan.signature)
    if manifest is None:
        raise ShardError(
            f"no manifest for this grid in {store.root} (expected "
            f"manifests/{plan.signature}.json) — was any sweep/shard worker "
            f"run against this store with the same grid arguments?")
    if manifest.get("cells") != len(plan.requests):
        raise ShardError(
            f"manifest {plan.signature} records {manifest.get('cells')} "
            f"cell(s) but these grid arguments plan {len(plan.requests)} — "
            f"merge must be invoked with the workers' exact grid")
    missing = [request for request in plan.unique_requests
               if not store.contains(request.memo_key)]
    if missing:
        preview = ", ".join(
            f"{request.kernel}/{request.workload}"
            f"@y={request.overbooking_target:g}"
            for request in missing[:5])
        raise ShardError(
            f"{len(missing)} of {len(plan.unique_requests)} grid cell(s) "
            f"missing from the store (e.g. {preview}) — run more shard "
            f"workers (or rerun any worker; it will steal the remainder), "
            f"then merge again; 'status' shows who holds what")

    scheduler = EvaluationScheduler(max_workers=1, store=store)
    stats = scheduler.prefetch(list(plan.requests))
    store.write_manifest(plan.signature, plan.manifest_payload(
        "complete", computed=stats.computed, store_hits=stats.store_hits))
    return collect_result(plan, stats)
