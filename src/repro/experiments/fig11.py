"""Fig. 11: achieved overbooking rate — initial estimate vs. Swiftiles.

For every workload the paper compares the overbooking rate obtained when
tiling with the *initial estimate* ``T_initial`` against the rate obtained
with the Swiftiles prediction ``T_target`` (full sampling, y = 10%): the
initial estimate averages 19.9% with an MAE of 15.6%, while Swiftiles averages
10.6% with an MAE of 5.8%.  The reproduction performs the same measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.swiftiles import Swiftiles, SwiftilesConfig
from repro.experiments.registry import register
from repro.experiments.runner import ExperimentContext
from repro.utils.text import format_table


@dataclass(frozen=True)
class ScalingRow:
    """Overbooking rates for one workload (fractions, not percent)."""

    workload: str
    initial_rate: float
    swiftiles_rate: float


@dataclass(frozen=True)
class Fig11Result:
    rows: List[ScalingRow]
    target: float

    @property
    def mean_initial_rate(self) -> float:
        return float(np.mean([r.initial_rate for r in self.rows]))

    @property
    def mean_swiftiles_rate(self) -> float:
        return float(np.mean([r.swiftiles_rate for r in self.rows]))

    @property
    def mae_initial(self) -> float:
        """Mean absolute error of the initial estimate w.r.t. the target."""
        return float(np.mean([abs(r.initial_rate - self.target) for r in self.rows]))

    @property
    def mae_swiftiles(self) -> float:
        """Mean absolute error of the Swiftiles prediction w.r.t. the target."""
        return float(np.mean([abs(r.swiftiles_rate - self.target) for r in self.rows]))


@register(name="fig11", artifact="Fig. 11",
          title="overbooking rate: initial estimate vs. Swiftiles",
          quick_params={"capacity": 256}, kernels=("gram",))
def run(context: ExperimentContext, *, capacity: int | None = None,
        target: float = 0.10) -> Fig11Result:
    """Measure initial-estimate and Swiftiles overbooking rates per workload.

    ``capacity`` defaults to one quarter of the architecture's global buffer,
    which gives every workload enough tiles for the rate to be resolvable (the
    paper uses the full-size buffers of its unscaled architecture).
    """
    if capacity is None:
        capacity = max(256, context.architecture.glb_capacity_words // 4)
    config = SwiftilesConfig(overbooking_target=target, sample_all_tiles=True)
    estimator = Swiftiles(config)

    rows = []
    for name in context.workload_names:
        matrix = context.matrix(name)
        initial = estimator.initial_estimate(matrix, capacity)
        estimate = estimator.estimate(matrix, capacity)
        rows.append(ScalingRow(
            workload=name,
            initial_rate=estimator.observed_overbooking_rate(matrix, initial, capacity),
            swiftiles_rate=estimator.observed_overbooking_rate(
                matrix, estimate.target_size, capacity),
        ))
    return Fig11Result(rows=rows, target=target)


def format_result(result: Fig11Result) -> str:
    table = format_table(
        ["Workload", "rate @ T_initial", "rate @ Swiftiles T_target",
         f"target ({result.target:.0%})"],
        [
            (r.workload, f"{r.initial_rate:.1%}", f"{r.swiftiles_rate:.1%}",
             f"{result.target:.0%}")
            for r in result.rows
        ],
        title="Fig. 11: achieved overbooking rate, initial estimate vs. Swiftiles",
    )
    footer = (
        f"\n\nmean rate: initial {result.mean_initial_rate:.1%}, "
        f"Swiftiles {result.mean_swiftiles_rate:.1%}"
        f"\nMAE vs. target: initial {result.mae_initial:.1%}, "
        f"Swiftiles {result.mae_swiftiles:.1%}"
    )
    return table + footer
