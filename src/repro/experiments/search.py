"""Pareto design-space search: expand a buffer-geometry grid, keep the frontier.

The paper's question — *when does overbooking buffer capacity beat worst-case
provisioning?* — is at heart a design-space trade-off: a configuration
``(overbooking target y, GLB capacity scale, PE buffer scale)`` buys lower
DRAM traffic at some energy cost (or vice versa), and what's "best" depends
on which objective you weight.  Rather than answer with one grid point, this
module computes the **traffic/energy Pareto frontier** of the overbooking
variant, per ``kernel × workload`` (and, for synthetic suites, per sparsity
model):

* :func:`search_frontier` runs a *generational* search.  Generation 0
  evaluates the seed grid (every combination of the initial axis values)
  through the same batched :class:`~repro.experiments.scheduler.
  EvaluationScheduler` as every other experiment — store-aware and therefore
  resumable.
* Between generations, dominated configurations are pruned: only
  configurations that are Pareto-optimal for at least one ``(kernel,
  workload)`` group survive, and the grid axes are *refined* around the
  survivors (midpoints toward each immediate neighbor).  Regions of the
  design space that no objective cares about are never evaluated densely.
* Within a refinement generation, a **rank-then-verify** loop (on by
  default, ``use_surrogate=False`` for the golden brute-force reference)
  consults the :class:`~repro.experiments.surrogate.DesignSurrogate`: all
  candidates are scored, the most promising fraction (``surrogate_budget``)
  plus an exploration band are evaluated exactly, and a candidate is
  skipped only when, in *every* ``(kernel, workload)`` group, an exactly
  evaluated point is predicted to be at least as good on every objective
  within the group's trust band (or the candidate is predicted to violate
  a constraint beyond the verified error margin).  The band tightens —
  through zero, into requiring a strict predicted deficit — as observed
  prediction errors grow, and no group may skip anything before its
  predictions have been verified at all, so an unreliable surrogate widens
  the evaluated fraction by itself.  The reported frontier only ever
  contains exactly evaluated points, and golden tests pin its equality
  with the brute-force reference.
* Optional **constraints** (``traffic <= X``, ``energy <= Y``,
  ``pe_area <= Z`` — see :func:`~repro.experiments.surrogate.
  parse_constraint`) gate the frontier: infeasible points never enter it
  and infeasible configurations are pruned before evaluation when that is
  provable (``pe_area`` exactly, the predicted metrics via the optimistic
  bound).
* The search stops when refinement proposes nothing new, when
  ``max_generations`` is reached, or when ``max_evaluations`` would be
  exceeded.

The result records every evaluated design point (so the search is fully
auditable), the per-group frontier, and per-generation statistics; the
``fig14`` experiment and the CLI's ``search`` subcommand render and
serialize it.  :func:`pareto_frontier` is the (deliberately simple) O(n²)
non-domination filter — golden tests cross-check the search output against
an independent brute-force sweep of the same space, and the surrogate path
against the brute-force path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerator.config import ArchitectureConfig, scaled_default_config
from repro.experiments.registry import deterministic_payload
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheduler import (
    EvaluationScheduler,
    ScheduleStats,
    requests_for_context,
)
from repro.experiments.surrogate import (
    PREDICTED_METRICS,
    Constraint,
    DesignSurrogate,
    parse_constraint,
    pe_area_words,
)
from repro.experiments.sweep import (
    _refusing_overwrite,
    _scaled_architecture,
    _store_aware_scheduler,
)
from repro.tensor.suite import WorkloadSuite, synth_suite
from repro.tensor.synth import specs_by_workload_name

#: Seed axes of the default search: the paper's y ladder and halving/doubling
#: of each buffer level.
DEFAULT_Y_VALUES = (0.05, 0.10, 0.22)
DEFAULT_GLB_SCALES = (0.5, 1.0, 2.0)
DEFAULT_PE_SCALES = (0.5, 1.0, 2.0)

#: Fraction of a generation's candidates the rank-then-verify loop evaluates
#: per batch before re-checking what the surrogate can prove about the rest.
DEFAULT_SURROGATE_BUDGET = 0.25

#: Decimal places configurations are rounded to when axes are refined —
#: keeps the search space finite and the signatures stable.
_AXIS_DECIMALS = 6


@dataclass(frozen=True)
class DesignConfig:
    """One candidate configuration of the search space."""

    overbooking_target: float
    glb_scale: float
    pe_scale: float

    @property
    def label(self) -> str:
        return (f"y={self.overbooking_target:.2%} "
                f"glb×{self.glb_scale:g} pe×{self.pe_scale:g}")


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated ``(kernel, workload, configuration)`` outcome.

    The objectives the frontier minimizes are ``dram_words`` (total DRAM
    traffic of the overbooking variant, the paper's Fig. 9 axis) and
    ``energy_pj`` (its total energy); ``cycles`` and the overbooking rate
    ride along for the reports.
    """

    kernel: str
    workload: str
    model: str
    model_params: str
    config: DesignConfig
    glb_capacity_words: int
    pe_buffer_capacity_words: int
    generation: int
    cycles: float
    energy_pj: float
    dram_words: float
    glb_overbooking_rate: float

    @property
    def objectives(self) -> Tuple[float, float]:
        """The minimized objective vector: (DRAM words, energy pJ)."""
        return (self.dram_words, self.energy_pj)


@dataclass(frozen=True)
class GenerationStats:
    """What one generation of the search did.

    ``candidates`` counts the configurations proposed for the generation,
    ``evaluated_configs`` the ones evaluated exactly; the difference is what
    the surrogate pruned (``pruned_configs``) — zero on the brute-force
    path.  ``trust_margin`` is the widest per-group trust margin the
    rank-then-verify loop ended the generation with (0 when ranking never
    engaged).  Like ``schedule``, these are run-*shape* diagnostics that
    live inside the ephemeral ``generations`` field, never in artifacts.
    """

    generation: int
    evaluated_configs: int
    total_configs: int
    frontier_size: int
    schedule: ScheduleStats
    candidates: int = 0
    pruned_configs: int = 0
    trust_margin: float = 0.0


@dataclass(frozen=True)
class FrontierResult:
    """Everything :func:`search_frontier` found."""

    kernels: List[str]
    workloads: List[str]
    base_architecture: str
    points: List[DesignPoint]
    frontier: List[DesignPoint]
    generations: List[GenerationStats]
    constraints: List[str] = field(default_factory=list)
    use_surrogate: bool = True

    def frontier_for(self, kernel: str, workload: str) -> List[DesignPoint]:
        """The non-dominated set of one ``(kernel, workload)`` group."""
        return [point for point in self.frontier
                if point.kernel == kernel and point.workload == workload]

    def to_jsonable(self) -> dict:
        """Deterministic JSON payload (generation schedules excluded via
        :func:`repro.experiments.registry.deterministic_payload` — like
        :meth:`~repro.experiments.sweep.SweepResult.to_jsonable`, the
        warm/cold split varies between resumed and fresh runs)."""
        return deterministic_payload(self)

    def write_json(self, path, *, force: bool = False):
        import json

        path = _refusing_overwrite(path, force)
        path.write_text(json.dumps(self.to_jsonable(), indent=2) + "\n")
        return path

    def write_csv(self, path, *, force: bool = False):
        import csv

        path = _refusing_overwrite(path, force)
        columns = ("kernel", "workload", "model", "model_params",
                   "overbooking_target", "glb_scale", "pe_scale",
                   "glb_capacity_words", "pe_buffer_capacity_words",
                   "generation", "cycles", "energy_pj", "dram_words",
                   "glb_overbooking_rate", "on_frontier")
        # Each (kernel, workload, config) is evaluated exactly once, so the
        # triple is the point's identity (robust to copies, unlike id()).
        frontier = {(point.kernel, point.workload, point.config)
                    for point in self.frontier}
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(columns)
            for point in self.points:
                writer.writerow([
                    point.kernel, point.workload, point.model,
                    point.model_params, point.config.overbooking_target,
                    point.config.glb_scale, point.config.pe_scale,
                    point.glb_capacity_words, point.pe_buffer_capacity_words,
                    point.generation, point.cycles, point.energy_pj,
                    point.dram_words, point.glb_overbooking_rate,
                    int((point.kernel, point.workload, point.config)
                        in frontier),
                ])
        return path


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether objective vector ``a`` Pareto-dominates ``b`` (minimization):
    no worse in every objective and strictly better in at least one."""
    return (all(x <= y for x, y in zip(a, b))
            and any(x < y for x, y in zip(a, b)))


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The non-dominated subset of ``points`` (one homogeneous group).

    O(n²) by design — the grids here are hundreds of points, and the simple
    quadratic filter is trivially auditable (the golden tests re-derive it
    independently).  Ties on the full objective vector keep the first point
    in input order, so the result is deterministic.
    """
    frontier: List[DesignPoint] = []
    seen_objectives = set()
    for candidate in points:
        if candidate.objectives in seen_objectives:
            continue
        if any(dominates(other.objectives, candidate.objectives)
               for other in points):
            continue
        seen_objectives.add(candidate.objectives)
        frontier.append(candidate)
    return frontier


def _round(value: float) -> float:
    return round(float(value), _AXIS_DECIMALS)


def _refined_axis(values: List[float], survivors: set) -> List[float]:
    """Refine one axis around surviving values: midpoints to each neighbor.

    Both the incoming values and the proposed midpoints are deduplicated
    *after* rounding to :data:`_AXIS_DECIMALS` — adjacent survivors whose
    midpoint rounds onto an existing value (or two inputs that only differ
    below the rounding precision) must collapse to one candidate, not two
    near-identical configurations that each cost an exact evaluation.
    """
    ordered = sorted({_round(value) for value in values})
    survivors = {_round(value) for value in survivors}
    proposals = set(ordered)
    for index, value in enumerate(ordered):
        if value not in survivors:
            continue
        if index > 0:
            proposals.add(_round((value + ordered[index - 1]) / 2.0))
        if index + 1 < len(ordered):
            proposals.add(_round((value + ordered[index + 1]) / 2.0))
    return sorted(proposals)


def _merged_schedule(batches: Sequence[ScheduleStats]) -> ScheduleStats:
    """One generation's schedule stats, summed over its exact batches.

    The rank-then-verify loop issues several prefetches per generation (one
    per verified batch); merging keeps :class:`GenerationStats.schedule` a
    single per-generation record, with every counter — including the
    ``computed == 0`` warm-resume invariant the tests pin — additive over
    disjoint request sets.
    """
    if len(batches) == 1:
        return batches[0]
    return ScheduleStats(
        requested=sum(stats.requested for stats in batches),
        unique=sum(stats.unique for stats in batches),
        warm=sum(stats.warm for stats in batches),
        computed=sum(stats.computed for stats in batches),
        workers=max((stats.workers for stats in batches), default=0),
        store_hits=sum(stats.store_hits for stats in batches),
        store_writes=sum(stats.store_writes for stats in batches),
        pool_restarts=sum(stats.pool_restarts for stats in batches),
        degraded_serial=any(stats.degraded_serial for stats in batches),
        batched=any(stats.batched for stats in batches),
        batch_groups=sum(stats.batch_groups for stats in batches),
        shm_segments=sum(stats.shm_segments for stats in batches),
    )


def search_frontier(suite: Optional[WorkloadSuite] = None, *,
                    synth: Optional[Sequence] = None,
                    kernels: Sequence[str] = ("gram",),
                    y_values: Sequence[float] = DEFAULT_Y_VALUES,
                    glb_scales: Sequence[float] = DEFAULT_GLB_SCALES,
                    pe_scales: Sequence[float] = DEFAULT_PE_SCALES,
                    max_generations: int = 3,
                    max_evaluations: int = 2000,
                    base_architecture: Optional[ArchitectureConfig] = None,
                    workloads: Optional[Sequence[str]] = None,
                    scheduler: Optional[EvaluationScheduler] = None,
                    max_workers: Optional[int] = None,
                    store=None, use_batch: bool = True,
                    use_surrogate: bool = True,
                    surrogate_budget: float = DEFAULT_SURROGATE_BUDGET,
                    constraints: Optional[Sequence] = None) -> FrontierResult:
    """Generationally explore the ``(y, GLB, PE)`` space, keep the frontier.

    Parameters mirror :func:`~repro.experiments.sweep.sweep_grid` where they
    overlap (``suite``/``synth``/``kernels``/``workloads``/``store``/
    ``use_batch``); the
    search-specific knobs are the seed axes (``y_values``, ``glb_scales``,
    ``pe_scales``), ``max_generations`` (generation 0 is the seed grid; each
    further generation refines the axes around the current frontier and
    prunes dominated configurations), ``max_evaluations``, a hard cap on
    scheduled ``(kernel, workload, config)`` evaluations, and the surrogate
    knobs:

    ``use_surrogate`` (default ``True``)
        Rank-then-verify refinement generations through the
        :class:`~repro.experiments.surrogate.DesignSurrogate`; candidates
        are skipped only when, in every ``(kernel, workload)`` group, an
        exactly evaluated point is predicted at least as good within the
        group's verified trust band, so the reported frontier matches the
        ``use_surrogate=False`` brute-force reference (pinned by golden
        tests) while evaluating far fewer configurations.  Ranking engages
        once every group has enough exact training points; until then
        (always for generation 0) candidates are evaluated exhaustively.
    ``surrogate_budget``
        Fraction of a generation's candidates evaluated per verification
        batch (plus an exploration band on the first batch).
    ``constraints``
        Upper bounds (:class:`~repro.experiments.surrogate.Constraint` or
        strings like ``"traffic<=1e9"``): the frontier is computed over
        feasible, exactly evaluated points only; ``pe_area``-infeasible
        configurations are rejected before evaluation, predicted-infeasible
        ones once the optimistic bound proves the violation.

    Returns a :class:`FrontierResult`; ``result.frontier`` is the union of
    the per-``(kernel, workload)`` non-dominated sets over *all* evaluated
    generations, verified against every evaluated (and feasible) point.
    Every decision the search makes is a function of exact values only —
    whether they came from the memo, the report store, or a fresh
    computation — so a warm re-search over a covering store replays the
    cold run byte-for-byte with ``computed == 0``.
    """
    if synth is not None:
        if suite is not None:
            raise ValueError("pass either a suite or synth specs, not both")
        suite = synth_suite(synth)
    elif suite is None:
        raise ValueError("search_frontier needs a suite (or synth specs)")
    if not kernels:
        raise ValueError("kernels must not be empty")
    if not (y_values and glb_scales and pe_scales):
        raise ValueError("every search axis needs at least one seed value")
    if max_generations < 1:
        raise ValueError("max_generations must be >= 1")
    if not (0.0 < surrogate_budget <= 1.0):
        raise ValueError("surrogate_budget must be in (0, 1]")
    if workloads is not None:
        suite = suite.subset(list(workloads))
    constraint_list: List[Constraint] = [parse_constraint(item)
                                         for item in (constraints or ())]
    synth_specs = specs_by_workload_name(suite)
    base = base_architecture or scaled_default_config()
    scheduler = _store_aware_scheduler(scheduler, store, max_workers,
                                       use_batch=use_batch)

    axes = {
        "y": sorted(_round(y) for y in y_values),
        "glb": sorted(_round(s) for s in glb_scales),
        "pe": sorted(_round(s) for s in pe_scales),
    }
    kernels = [str(kernel) for kernel in kernels]
    group_keys = [(kernel, name) for kernel in kernels for name in suite.names]
    surrogate = DesignSurrogate(num_pes=base.num_pes) if use_surrogate else None
    predicted_bounds = [(PREDICTED_METRICS[c.metric], c.bound)
                        for c in constraint_list
                        if c.metric in PREDICTED_METRICS]
    area_bound = min((c.bound for c in constraint_list
                      if c.metric == "pe_area"), default=None)

    evaluated: Dict[DesignConfig, List[DesignPoint]] = {}
    rejected: set = set()  # pe_area-infeasible: provably off every frontier
    survivors: set = set()  # frontier configs after the latest generation
    generations: List[GenerationStats] = []
    points: List[DesignPoint] = []
    point_by: Dict[Tuple[DesignConfig, str, str], DesignPoint] = {}

    def grid_configs() -> List[DesignConfig]:
        return [DesignConfig(y, glb, pe)
                for y in axes["y"] for glb in axes["glb"] for pe in axes["pe"]]

    def point_feasible(point: DesignPoint) -> bool:
        for constraint in constraint_list:
            if constraint.metric == "traffic" \
                    and point.dram_words > constraint.bound:
                return False
            if constraint.metric == "energy" \
                    and point.energy_pj > constraint.bound:
                return False
            if constraint.metric == "pe_area" and (
                    base.num_pes * point.pe_buffer_capacity_words
                    > constraint.bound):
                return False
        return True

    def canonical_key(point: DesignPoint) -> tuple:
        # Within a group, evaluation order is (generation, y, glb, pe) on
        # the brute-force path but batch order on the surrogate path; the
        # frontier is computed over the canonically sorted group so both
        # paths report identical frontiers (a stable no-op for brute force).
        return (point.generation, point.config.overbooking_target,
                point.config.glb_scale, point.config.pe_scale)

    def feasible_group_frontiers() -> Dict[Tuple[str, str], List[DesignPoint]]:
        groups: Dict[Tuple[str, str], List[DesignPoint]] = {}
        for point in points:
            if point_feasible(point):
                groups.setdefault((point.kernel, point.workload),
                                  []).append(point)
        return {key: pareto_frontier(sorted(group, key=canonical_key))
                for key, group in groups.items()}

    def current_frontier() -> List[DesignPoint]:
        frontiers = feasible_group_frontiers()
        frontier: List[DesignPoint] = []
        for key in sorted(frontiers):
            frontier.extend(frontiers[key])
        return frontier

    def evaluate_batch(configs: Sequence[DesignConfig],
                       generation: int) -> ScheduleStats:
        """One batched, store-aware fan-out; results land in ``points``."""
        contexts: Dict[Tuple[str, DesignConfig], ExperimentContext] = {}
        requests = []
        for config in configs:
            architecture = _scaled_architecture(
                base, config.glb_scale, config.pe_scale)
            for kernel in kernels:
                context = ExperimentContext(
                    suite=suite, architecture=architecture,
                    overbooking_target=config.overbooking_target,
                    kernel=kernel)
                contexts[(kernel, config)] = context
                requests.extend(requests_for_context(context))
        stats = scheduler.prefetch(requests)

        for config in configs:
            evaluated[config] = []
            for kernel in kernels:
                context = contexts[(kernel, config)]
                for name in context.workload_names:
                    reports = context.reports(name)
                    overbooking = reports[context.overbooking_name]
                    spec = synth_specs.get(name)
                    point = DesignPoint(
                        kernel=kernel,
                        workload=name,
                        model=spec.model if spec is not None else "",
                        model_params=(spec.params_label
                                      if spec is not None else ""),
                        config=config,
                        glb_capacity_words=context.architecture.glb_capacity_words,
                        pe_buffer_capacity_words=(
                            context.architecture.pe_buffer_capacity_words),
                        generation=generation,
                        cycles=overbooking.cycles,
                        energy_pj=overbooking.total_energy_pj,
                        dram_words=overbooking.dram_words,
                        glb_overbooking_rate=overbooking.glb_overbooking_rate,
                    )
                    evaluated[config].append(point)
                    points.append(point)
                    point_by[(config, kernel, name)] = point
                    if surrogate is not None:
                        surrogate.observe(kernel, name, config,
                                          point.objectives)
        return stats

    def survivor_adjacent(config: DesignConfig,
                          survivors: set) -> bool:
        """Whether ``config`` is within one refined-axis step of a frontier
        survivor on *every* axis.

        Axis refinement inserts midpoints next to survivors, so the
        configurations most likely to move the frontier in a refinement
        generation live in this neighborhood — the far-field rest of the
        cross-product grid is where the surrogate earns its keep.
        """
        indices = {axis: {value: index for index, value in enumerate(values)}
                   for axis, values in axes.items()}
        config_idx = (indices["y"][config.overbooking_target],
                      indices["glb"][config.glb_scale],
                      indices["pe"][config.pe_scale])
        for survivor in survivors:
            survivor_idx = (indices["y"][survivor.overbooking_target],
                            indices["glb"][survivor.glb_scale],
                            indices["pe"][survivor.pe_scale])
            if all(abs(a - b) <= 1
                   for a, b in zip(config_idx, survivor_idx)):
                return True
        return False

    def ranked_generation(pending: List[DesignConfig], generation: int,
                          survivors: set) -> Tuple[List[ScheduleStats], int]:
        """Rank-then-verify a refinement generation.

        Two tiers:

        1. The **survivor neighborhood** — every candidate within one
           refined-axis step of a current frontier configuration — is
           evaluated exactly, unconditionally, as the generation's first
           batch.  Axis refinement only inserts values next to survivors,
           so this is where frontier movement happens; evaluating it
           exactly keeps the search trajectory (per-generation frontiers,
           hence refinement axes) identical to the brute-force reference
           without trusting the model at all.  The neighborhood batch also
           verifies the surrogate's predictions for it, seeding the trust
           bands.
        2. The **far field** (the rest of the cross-product grid) goes
           through the surrogate: candidates whose predictions an exactly
           evaluated point matches-or-beats within the group's trust band
           in every group (or that are predicted constraint-infeasible
           beyond the verified error margin) are skipped; the rest are
           evaluated in promise-ranked batches of ``surrogate_budget ×
           len(pending)``, re-fitting, re-verifying, and re-deciding after
           each batch until nothing unverified remains.  A group with no
           verified predictions cannot skip anything.
        """
        batches: List[ScheduleStats] = []
        remaining = list(pending)
        chunk = max(1, math.ceil(surrogate_budget * len(pending)))
        first_batch = True
        core = [config for config in remaining
                if survivor_adjacent(config, survivors)]
        if core:
            core_predictions = {
                key: surrogate.predict(key[0], key[1], core)
                for key in group_keys}
            batches.append(evaluate_batch(core, generation))
            for kernel, name in group_keys:
                exact = np.vstack([
                    point_by[(config, kernel, name)].objectives
                    for config in core])
                surrogate.record_errors(
                    kernel, name, core_predictions[(kernel, name)], exact)
            core_set = set(core)
            remaining = [config for config in remaining
                         if config not in core_set]
        while remaining:
            frontiers = feasible_group_frontiers()
            predictions = {key: surrogate.predict(key[0], key[1], remaining)
                           for key in group_keys}
            bands = {key: surrogate.trust_band(*key) for key in group_keys}
            margins = {key: surrogate.error_margin(*key) for key in group_keys}

            def prunable(index: int) -> bool:
                for key in group_keys:
                    band, margin = bands[key], margins[key]
                    if band is None:
                        return False  # nothing verified: no trust, no skip
                    predicted = predictions[key][index]
                    if any(predicted[metric] > bound * (1.0 + margin)
                           for metric, bound in predicted_bounds):
                        continue  # predicted infeasible beyond the margin
                    if any(all(front.objectives[i]
                               <= predicted[i] * (1.0 + band)
                               for i in range(len(predicted)))
                           for front in frontiers.get(key, ())):
                        continue  # an exact point is as good, within band
                    return False
                return True

            def promise(index: int) -> float:
                best = math.inf
                for key in group_keys:
                    predicted = predictions[key][index]
                    if any(predicted[metric] > bound
                           for metric, bound in predicted_bounds):
                        continue  # predicted infeasible: no promise here
                    frontier = frontiers.get(key)
                    if not frontier:
                        return -math.inf  # nothing feasible yet: explore
                    best = min(best, min(
                        max((predicted[0] - front.dram_words)
                            / max(front.dram_words, 1e-300),
                            (predicted[1] - front.energy_pj)
                            / max(front.energy_pj, 1e-300))
                        for front in frontier))
                return best

            active = [(index, config)
                      for index, config in enumerate(remaining)
                      if not prunable(index)]
            if not active:
                break  # the rest is provably off the frontier
            ordered = sorted(active, key=lambda item: (
                promise(item[0]), item[1].overbooking_target,
                item[1].glb_scale, item[1].pe_scale))
            chosen = ordered[:chunk]
            if first_batch and len(ordered) > chunk:
                # Exploration band: a few evenly spaced lower-ranked
                # candidates keep the error estimate honest outside the
                # model's comfort zone.
                rest = ordered[chunk:]
                band = max(1, chunk // 4)
                step = max(1, len(rest) // band)
                chosen = chosen + rest[::step][:band]
            first_batch = False

            batches.append(evaluate_batch([config for _, config in chosen],
                                          generation))
            for kernel, name in group_keys:
                predicted = np.vstack([predictions[(kernel, name)][index]
                                       for index, _ in chosen])
                exact = np.vstack([
                    point_by[(config, kernel, name)].objectives
                    for _, config in chosen])
                surrogate.record_errors(kernel, name, predicted, exact)
            batch_set = {config for _, config in chosen}
            remaining = [config for config in remaining
                         if config not in batch_set]
        evaluated_configs = len(pending) - len(remaining)
        return batches, evaluated_configs

    for generation in range(max_generations):
        pending = [config for config in grid_configs()
                   if config not in evaluated and config not in rejected]
        if area_bound is not None:
            # pe_area is an exact function of the configuration: infeasible
            # candidates are rejected before costing anything, on both the
            # surrogate and the brute-force path.
            allowed = []
            for config in pending:
                architecture = _scaled_architecture(
                    base, config.glb_scale, config.pe_scale)
                if pe_area_words(architecture) > area_bound:
                    rejected.add(config)
                else:
                    allowed.append(config)
            pending = allowed
        budget_left = max_evaluations - sum(
            len(group) for group in evaluated.values())
        if budget_left < len(pending) * len(kernels) * len(suite.names):
            pending = pending[:max(
                0, budget_left // max(1, len(kernels) * len(suite.names)))]
        if not pending:
            break

        candidates = len(pending)
        ranked = surrogate is not None and all(
            surrogate.trained(kernel, name) for kernel, name in group_keys)
        if ranked:
            batch_stats, evaluated_configs = ranked_generation(
                pending, generation, survivors)
            trust_margin = max((surrogate.error_margin(kernel, name) or 0.0)
                               for kernel, name in group_keys)
        else:
            # No (or an undertrained) surrogate: evaluate the whole
            # generation exactly — one batched, store-aware fan-out.
            batch_stats = [evaluate_batch(pending, generation)]
            evaluated_configs = candidates
            trust_margin = 0.0

        frontier = current_frontier()
        generations.append(GenerationStats(
            generation=generation,
            evaluated_configs=evaluated_configs,
            total_configs=len(evaluated),
            frontier_size=len(frontier),
            schedule=_merged_schedule(batch_stats),
            candidates=candidates,
            pruned_configs=candidates - evaluated_configs,
            trust_margin=trust_margin,
        ))

        # The frontier's configurations both seed the next generation's axis
        # refinement and define the neighborhood its ranked evaluation must
        # cover exactly.
        survivors = {point.config for point in frontier}
        if generation + 1 >= max_generations:
            break
        axes = {
            "y": _refined_axis(
                axes["y"], {c.overbooking_target for c in survivors}),
            "glb": _refined_axis(
                axes["glb"], {c.glb_scale for c in survivors}),
            "pe": _refined_axis(
                axes["pe"], {c.pe_scale for c in survivors}),
        }

    return FrontierResult(
        kernels=list(kernels),
        workloads=list(suite.names),
        base_architecture=base.name,
        points=points,
        frontier=current_frontier(),
        generations=generations,
        constraints=[constraint.label for constraint in constraint_list],
        use_surrogate=surrogate is not None,
    )


def format_frontier(result: FrontierResult) -> str:
    """Plain-text rendering of the frontier (one block per kernel×workload)."""
    from repro.utils.text import format_table

    rows = []
    for point in result.frontier:
        rows.append((
            point.kernel,
            point.model or point.workload,
            point.config.label,
            f"{point.dram_words:,.0f}",
            f"{point.energy_pj:,.0f}",
            f"{point.cycles:,.0f}",
            f"{point.glb_overbooking_rate:.1%}",
        ))
    evaluated = len(result.points)
    gens = len(result.generations)
    constrained = (f", constraints: {', '.join(result.constraints)}"
                   if result.constraints else "")
    return format_table(
        ["kernel", "workload", "config", "DRAM words", "energy pJ",
         "cycles", "GLB overbook"],
        rows,
        title=(f"Traffic/energy Pareto frontier — {len(result.frontier)} "
               f"non-dominated of {evaluated} evaluated points "
               f"({gens} generation(s), objectives minimized: DRAM words, "
               f"energy{constrained})"),
    )
