"""Pareto design-space search: expand a buffer-geometry grid, keep the frontier.

The paper's question — *when does overbooking buffer capacity beat worst-case
provisioning?* — is at heart a design-space trade-off: a configuration
``(overbooking target y, GLB capacity scale, PE buffer scale)`` buys lower
DRAM traffic at some energy cost (or vice versa), and what's "best" depends
on which objective you weight.  Rather than answer with one grid point, this
module computes the **traffic/energy Pareto frontier** of the overbooking
variant, per ``kernel × workload`` (and, for synthetic suites, per sparsity
model):

* :func:`search_frontier` runs a *generational* search.  Generation 0
  evaluates the seed grid (every combination of the initial axis values)
  through the same batched :class:`~repro.experiments.scheduler.
  EvaluationScheduler` as every other experiment — one fan-out per
  generation, store-aware and therefore resumable.
* Between generations, dominated configurations are pruned: only
  configurations that are Pareto-optimal for at least one ``(kernel,
  workload)`` group survive, and the grid axes are *refined* around the
  survivors (midpoints toward each immediate neighbor).  Regions of the
  design space that no objective cares about are never evaluated densely.
* The search stops when refinement proposes nothing new, when
  ``max_generations`` is reached, or when ``max_evaluations`` would be
  exceeded.

The result records every evaluated design point (so the search is fully
auditable), the per-group frontier, and per-generation statistics; the
``fig14`` experiment and the CLI's ``search`` subcommand render and
serialize it.  :func:`pareto_frontier` is the (deliberately simple) O(n²)
non-domination filter — golden tests cross-check the search output against
an independent brute-force sweep of the same space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.accelerator.config import ArchitectureConfig, scaled_default_config
from repro.experiments.registry import deterministic_payload
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheduler import (
    EvaluationScheduler,
    ScheduleStats,
    requests_for_context,
)
from repro.experiments.sweep import (
    _refusing_overwrite,
    _scaled_architecture,
    _store_aware_scheduler,
)
from repro.tensor.suite import WorkloadSuite, synth_suite
from repro.tensor.synth import specs_by_workload_name

#: Seed axes of the default search: the paper's y ladder and halving/doubling
#: of each buffer level.
DEFAULT_Y_VALUES = (0.05, 0.10, 0.22)
DEFAULT_GLB_SCALES = (0.5, 1.0, 2.0)
DEFAULT_PE_SCALES = (0.5, 1.0, 2.0)

#: Decimal places configurations are rounded to when axes are refined —
#: keeps the search space finite and the signatures stable.
_AXIS_DECIMALS = 6


@dataclass(frozen=True)
class DesignConfig:
    """One candidate configuration of the search space."""

    overbooking_target: float
    glb_scale: float
    pe_scale: float

    @property
    def label(self) -> str:
        return (f"y={self.overbooking_target:.2%} "
                f"glb×{self.glb_scale:g} pe×{self.pe_scale:g}")


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated ``(kernel, workload, configuration)`` outcome.

    The objectives the frontier minimizes are ``dram_words`` (total DRAM
    traffic of the overbooking variant, the paper's Fig. 9 axis) and
    ``energy_pj`` (its total energy); ``cycles`` and the overbooking rate
    ride along for the reports.
    """

    kernel: str
    workload: str
    model: str
    model_params: str
    config: DesignConfig
    glb_capacity_words: int
    pe_buffer_capacity_words: int
    generation: int
    cycles: float
    energy_pj: float
    dram_words: float
    glb_overbooking_rate: float

    @property
    def objectives(self) -> Tuple[float, float]:
        """The minimized objective vector: (DRAM words, energy pJ)."""
        return (self.dram_words, self.energy_pj)


@dataclass(frozen=True)
class GenerationStats:
    """What one generation of the search did."""

    generation: int
    evaluated_configs: int
    total_configs: int
    frontier_size: int
    schedule: ScheduleStats


@dataclass(frozen=True)
class FrontierResult:
    """Everything :func:`search_frontier` found."""

    kernels: List[str]
    workloads: List[str]
    base_architecture: str
    points: List[DesignPoint]
    frontier: List[DesignPoint]
    generations: List[GenerationStats]

    def frontier_for(self, kernel: str, workload: str) -> List[DesignPoint]:
        """The non-dominated set of one ``(kernel, workload)`` group."""
        return [point for point in self.frontier
                if point.kernel == kernel and point.workload == workload]

    def to_jsonable(self) -> dict:
        """Deterministic JSON payload (generation schedules excluded via
        :func:`repro.experiments.registry.deterministic_payload` — like
        :meth:`~repro.experiments.sweep.SweepResult.to_jsonable`, the
        warm/cold split varies between resumed and fresh runs)."""
        return deterministic_payload(self)

    def write_json(self, path, *, force: bool = False):
        import json

        path = _refusing_overwrite(path, force)
        path.write_text(json.dumps(self.to_jsonable(), indent=2) + "\n")
        return path

    def write_csv(self, path, *, force: bool = False):
        import csv

        path = _refusing_overwrite(path, force)
        columns = ("kernel", "workload", "model", "model_params",
                   "overbooking_target", "glb_scale", "pe_scale",
                   "glb_capacity_words", "pe_buffer_capacity_words",
                   "generation", "cycles", "energy_pj", "dram_words",
                   "glb_overbooking_rate", "on_frontier")
        # Each (kernel, workload, config) is evaluated exactly once, so the
        # triple is the point's identity (robust to copies, unlike id()).
        frontier = {(point.kernel, point.workload, point.config)
                    for point in self.frontier}
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(columns)
            for point in self.points:
                writer.writerow([
                    point.kernel, point.workload, point.model,
                    point.model_params, point.config.overbooking_target,
                    point.config.glb_scale, point.config.pe_scale,
                    point.glb_capacity_words, point.pe_buffer_capacity_words,
                    point.generation, point.cycles, point.energy_pj,
                    point.dram_words, point.glb_overbooking_rate,
                    int((point.kernel, point.workload, point.config)
                        in frontier),
                ])
        return path


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether objective vector ``a`` Pareto-dominates ``b`` (minimization):
    no worse in every objective and strictly better in at least one."""
    return (all(x <= y for x, y in zip(a, b))
            and any(x < y for x, y in zip(a, b)))


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The non-dominated subset of ``points`` (one homogeneous group).

    O(n²) by design — the grids here are hundreds of points, and the simple
    quadratic filter is trivially auditable (the golden tests re-derive it
    independently).  Ties on the full objective vector keep the first point
    in input order, so the result is deterministic.
    """
    frontier: List[DesignPoint] = []
    seen_objectives = set()
    for candidate in points:
        if candidate.objectives in seen_objectives:
            continue
        if any(dominates(other.objectives, candidate.objectives)
               for other in points):
            continue
        seen_objectives.add(candidate.objectives)
        frontier.append(candidate)
    return frontier


def _round(value: float) -> float:
    return round(float(value), _AXIS_DECIMALS)


def _refined_axis(values: List[float], survivors: set) -> List[float]:
    """Refine one axis around surviving values: midpoints to each neighbor."""
    ordered = sorted(values)
    proposals = set(ordered)
    for index, value in enumerate(ordered):
        if value not in survivors:
            continue
        if index > 0:
            proposals.add(_round((value + ordered[index - 1]) / 2.0))
        if index + 1 < len(ordered):
            proposals.add(_round((value + ordered[index + 1]) / 2.0))
    return sorted(proposals)


def search_frontier(suite: Optional[WorkloadSuite] = None, *,
                    synth: Optional[Sequence] = None,
                    kernels: Sequence[str] = ("gram",),
                    y_values: Sequence[float] = DEFAULT_Y_VALUES,
                    glb_scales: Sequence[float] = DEFAULT_GLB_SCALES,
                    pe_scales: Sequence[float] = DEFAULT_PE_SCALES,
                    max_generations: int = 3,
                    max_evaluations: int = 2000,
                    base_architecture: Optional[ArchitectureConfig] = None,
                    workloads: Optional[Sequence[str]] = None,
                    scheduler: Optional[EvaluationScheduler] = None,
                    max_workers: Optional[int] = None,
                    store=None, use_batch: bool = True) -> FrontierResult:
    """Generationally explore the ``(y, GLB, PE)`` space, keep the frontier.

    Parameters mirror :func:`~repro.experiments.sweep.sweep_grid` where they
    overlap (``suite``/``synth``/``kernels``/``workloads``/``store``/
    ``use_batch``); the
    search-specific knobs are the seed axes (``y_values``, ``glb_scales``,
    ``pe_scales``), ``max_generations`` (generation 0 is the seed grid; each
    further generation refines the axes around the current frontier and
    prunes dominated configurations), and ``max_evaluations``, a hard cap on
    scheduled ``(kernel, workload, config)`` evaluations.

    Returns a :class:`FrontierResult`; ``result.frontier`` is the union of
    the per-``(kernel, workload)`` non-dominated sets over *all* evaluated
    generations, verified against every evaluated point.
    """
    if synth is not None:
        if suite is not None:
            raise ValueError("pass either a suite or synth specs, not both")
        suite = synth_suite(synth)
    elif suite is None:
        raise ValueError("search_frontier needs a suite (or synth specs)")
    if not kernels:
        raise ValueError("kernels must not be empty")
    if not (y_values and glb_scales and pe_scales):
        raise ValueError("every search axis needs at least one seed value")
    if max_generations < 1:
        raise ValueError("max_generations must be >= 1")
    if workloads is not None:
        suite = suite.subset(list(workloads))
    synth_specs = specs_by_workload_name(suite)
    base = base_architecture or scaled_default_config()
    scheduler = _store_aware_scheduler(scheduler, store, max_workers,
                                       use_batch=use_batch)

    axes = {
        "y": sorted(_round(y) for y in y_values),
        "glb": sorted(_round(s) for s in glb_scales),
        "pe": sorted(_round(s) for s in pe_scales),
    }
    kernels = [str(kernel) for kernel in kernels]

    evaluated: Dict[DesignConfig, List[DesignPoint]] = {}
    generations: List[GenerationStats] = []
    points: List[DesignPoint] = []

    def grid_configs() -> List[DesignConfig]:
        return [DesignConfig(y, glb, pe)
                for y in axes["y"] for glb in axes["glb"] for pe in axes["pe"]]

    def current_frontier() -> List[DesignPoint]:
        groups: Dict[Tuple[str, str], List[DesignPoint]] = {}
        for point in points:
            groups.setdefault((point.kernel, point.workload), []).append(point)
        frontier: List[DesignPoint] = []
        for key in sorted(groups):
            frontier.extend(pareto_frontier(groups[key]))
        return frontier

    for generation in range(max_generations):
        pending = [config for config in grid_configs()
                   if config not in evaluated]
        budget_left = max_evaluations - sum(
            len(group) for group in evaluated.values())
        if budget_left < len(pending) * len(kernels) * len(suite.names):
            pending = pending[:max(
                0, budget_left // max(1, len(kernels) * len(suite.names)))]
        if not pending:
            break

        # One batched, store-aware fan-out for the whole generation.
        contexts: Dict[Tuple[str, DesignConfig], ExperimentContext] = {}
        requests = []
        for config in pending:
            architecture = _scaled_architecture(
                base, config.glb_scale, config.pe_scale)
            for kernel in kernels:
                context = ExperimentContext(
                    suite=suite, architecture=architecture,
                    overbooking_target=config.overbooking_target,
                    kernel=kernel)
                contexts[(kernel, config)] = context
                requests.extend(requests_for_context(context))
        stats = scheduler.prefetch(requests)

        for config in pending:
            evaluated[config] = []
            for kernel in kernels:
                context = contexts[(kernel, config)]
                for name in context.workload_names:
                    reports = context.reports(name)
                    overbooking = reports[context.overbooking_name]
                    spec = synth_specs.get(name)
                    point = DesignPoint(
                        kernel=kernel,
                        workload=name,
                        model=spec.model if spec is not None else "",
                        model_params=(spec.params_label
                                      if spec is not None else ""),
                        config=config,
                        glb_capacity_words=context.architecture.glb_capacity_words,
                        pe_buffer_capacity_words=(
                            context.architecture.pe_buffer_capacity_words),
                        generation=generation,
                        cycles=overbooking.cycles,
                        energy_pj=overbooking.total_energy_pj,
                        dram_words=overbooking.dram_words,
                        glb_overbooking_rate=overbooking.glb_overbooking_rate,
                    )
                    evaluated[config].append(point)
                    points.append(point)

        frontier = current_frontier()
        generations.append(GenerationStats(
            generation=generation,
            evaluated_configs=len(pending),
            total_configs=len(evaluated),
            frontier_size=len(frontier),
            schedule=stats,
        ))

        if generation + 1 >= max_generations:
            break
        # Prune: only configurations on some group's frontier seed the next
        # generation's axis refinement; dominated regions are not expanded.
        survivors = {point.config for point in frontier}
        axes = {
            "y": _refined_axis(
                axes["y"], {c.overbooking_target for c in survivors}),
            "glb": _refined_axis(
                axes["glb"], {c.glb_scale for c in survivors}),
            "pe": _refined_axis(
                axes["pe"], {c.pe_scale for c in survivors}),
        }

    return FrontierResult(
        kernels=list(kernels),
        workloads=list(suite.names),
        base_architecture=base.name,
        points=points,
        frontier=current_frontier(),
        generations=generations,
    )


def format_frontier(result: FrontierResult) -> str:
    """Plain-text rendering of the frontier (one block per kernel×workload)."""
    from repro.utils.text import format_table

    rows = []
    for point in result.frontier:
        rows.append((
            point.kernel,
            point.model or point.workload,
            point.config.label,
            f"{point.dram_words:,.0f}",
            f"{point.energy_pj:,.0f}",
            f"{point.cycles:,.0f}",
            f"{point.glb_overbooking_rate:.1%}",
        ))
    evaluated = len(result.points)
    gens = len(result.generations)
    return format_table(
        ["kernel", "workload", "config", "DRAM words", "energy pJ",
         "cycles", "GLB overbook"],
        rows,
        title=(f"Traffic/energy Pareto frontier — {len(result.frontier)} "
               f"non-dominated of {evaluated} evaluated points "
               f"({gens} generation(s), objectives minimized: DRAM words, "
               f"energy)"),
    )
