"""Regression surrogate + constraints for the Pareto design-space search.

The design-space search (:mod:`repro.experiments.search`) explores a ``(y,
GLB-scale, PE-scale)`` grid whose refinement generations are dominated by
candidates that turn out to be nowhere near the Pareto frontier.  This module
supplies the two pieces that let the search skip most of them while keeping
its exactness guarantee:

* :class:`DesignSurrogate` — a NumPy-only ridge regression fit **per**
  ``(kernel, workload)`` group on log-transformed ``(y, glb_scale, pe_scale,
  pe_count)`` features with degree-2 polynomial expansion, predicting the
  log of each search objective (DRAM words, energy pJ).  It is trained
  exclusively on *exactly evaluated* design points — including points served
  from the :class:`~repro.experiments.store.ReportStore`, which is how a
  warm-started re-search begins pre-fitted without a single model
  evaluation — and refit incrementally after every exact batch.

* **Trust tracking** — every prediction later verified against an exact
  evaluation feeds a per-group history of relative errors.  The group's
  *trust band* is ``tolerance − safety × error_quantile``: positive when
  the model has proven accurate (candidates predicted to be within the
  band of an exactly evaluated point are skippable — which is what makes
  the model's plateau regions, where configurations tie to within a
  fraction of a percent, cheap), shrinking through zero and negative as
  observed errors grow (a skip then requires the candidate to be
  predicted *strictly worse* than an evaluated point by the margin).  An
  unreliable surrogate therefore widens the evaluated fraction by itself,
  and a group with no verified predictions yet cannot skip anything at
  all.  The reported frontier only ever contains exactly evaluated
  points; golden tests pin its equality with the brute-force reference on
  the benchmark grids.

* :class:`Constraint` / :func:`parse_constraint` — upper bounds on
  ``traffic`` (DRAM words), ``energy`` (pJ) and ``pe_area`` (PE count ×
  per-PE buffer words, an exact function of the configuration).  The search
  applies them at both stages: predicted bounds prune provably infeasible
  candidates before evaluation, exact values gate the reported frontier.

Everything here is deterministic: fits use :func:`numpy.linalg.solve` on
training rows appended in evaluation order, so two runs observing the same
exact values — no matter whether they came from the memo, the store, or a
fresh computation — make bit-identical ranking and pruning decisions.  That
source-independence is what keeps warm re-search byte-identical to the cold
run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: The objectives the surrogate predicts, in
#: :attr:`repro.experiments.search.DesignPoint.objectives` order.
OBJECTIVES = ("dram_words", "energy_pj")

#: Metric aliases accepted by :func:`parse_constraint`.
_METRIC_ALIASES = {
    "traffic": "traffic", "dram": "traffic", "dram_words": "traffic",
    "energy": "energy", "energy_pj": "energy",
    "pe_area": "pe_area", "area": "pe_area",
}

#: Constraint metrics that bound a *predicted* objective (index into the
#: objective vector); ``pe_area`` is instead an exact function of the
#: configuration and never needs a prediction.
PREDICTED_METRICS = {"traffic": 0, "energy": 1}

#: Fewest exact observations a group needs before its fit is trusted for
#: ranking at all (below this the search simply evaluates everything, which
#: is also what keeps tiny CI grids on the brute-force path).
MIN_TRAIN_POINTS = 8

#: Trust-band shape: a group's band is ``SKIP_TOLERANCE − TRUST_SAFETY ×
#: p(ERROR_QUANTILE)`` of its verified relative errors — at most the
#: tolerance (a perfectly accurate model may skip candidates predicted
#: within 5% of an evaluated point), negative once observed errors exceed
#: the tolerance (a skip then needs the candidate predicted strictly worse
#: by the excess).  The quantile (not the max) keeps one bad miss at a
#: capacity knee from disabling skipping everywhere else.
SKIP_TOLERANCE = 0.05
TRUST_SAFETY = 1.0
ERROR_QUANTILE = 90.0

#: Ridge regularization weight (applied on standardized features).
_RIDGE_LAMBDA = 1e-4


@dataclass(frozen=True)
class Constraint:
    """An upper bound on one metric of a design point: ``metric <= bound``."""

    metric: str
    bound: float

    @property
    def label(self) -> str:
        return f"{self.metric}<={self.bound:g}"


def parse_constraint(text) -> Constraint:
    """Parse ``"traffic<=1e9"`` / ``"energy<=2.5e10"`` / ``"pe_area<=8192"``.

    Accepts an existing :class:`Constraint` unchanged.  Metrics:
    ``traffic`` (DRAM words; aliases ``dram``, ``dram_words``), ``energy``
    (pJ; alias ``energy_pj``) and ``pe_area`` (PE count × per-PE buffer
    capacity words; alias ``area``).  Only upper bounds (``<=``) exist —
    the objectives are minimized, so a lower bound would exclude exactly
    the points anyone wants.
    """
    if isinstance(text, Constraint):
        return text
    parts = str(text).split("<=")
    if len(parts) != 2:
        raise ValueError(
            f"constraint {text!r} must have the form METRIC<=BOUND "
            f"(e.g. 'traffic<=1e9'); metrics: "
            f"{', '.join(sorted(set(_METRIC_ALIASES.values())))}")
    metric = _METRIC_ALIASES.get(parts[0].strip().lower())
    if metric is None:
        raise ValueError(
            f"unknown constraint metric {parts[0].strip()!r}; known: "
            f"{', '.join(sorted(_METRIC_ALIASES))}")
    try:
        bound = float(parts[1])
    except ValueError:
        raise ValueError(f"constraint bound {parts[1]!r} is not a number") \
            from None
    if not np.isfinite(bound) or bound <= 0:
        raise ValueError(f"constraint bound must be a positive finite "
                         f"number, got {bound!r}")
    return Constraint(metric=metric, bound=bound)


def pe_area_words(architecture) -> int:
    """The ``pe_area`` constraint metric of an architecture: total PE-array
    buffer capacity (``num_pes × pe_buffer_capacity_words``) — an exact
    function of the configuration, checkable before any evaluation."""
    return int(architecture.num_pes) * int(architecture.pe_buffer_capacity_words)


# --------------------------------------------------------------------- #
# The per-group ridge fit
# --------------------------------------------------------------------- #
def _poly_features(z: np.ndarray) -> np.ndarray:
    """Degree-2 polynomial expansion of standardized log features:
    ``[1, z_i, z_i·z_j (i<=j)]`` — 15 columns for the 4 raw features."""
    n, d = z.shape
    columns = [np.ones(n)]
    columns.extend(z[:, i] for i in range(d))
    for i in range(d):
        for j in range(i, d):
            columns.append(z[:, i] * z[:, j])
    return np.column_stack(columns)


@dataclass
class _GroupFit:
    """One fitted model: standardization parameters + ridge weights."""

    mean: np.ndarray
    scale: np.ndarray
    weights: np.ndarray  # (features, objectives)

    def predict(self, x: np.ndarray) -> np.ndarray:
        z = (x - self.mean) / self.scale
        log_pred = _poly_features(z) @ self.weights
        return np.exp(np.clip(log_pred, -700.0, 700.0))


def _fit_group(x: np.ndarray, y: np.ndarray) -> _GroupFit:
    """Ridge-fit ``log(objectives)`` on standardized log features.

    Solves ``(AᵀA + λI)w = Aᵀ·log(y)`` directly — deterministic for a given
    training order, tiny (15×15), and well-posed even when the training set
    is smaller than the feature count (constant columns, e.g. a fixed
    ``pe_count`` axis, are absorbed by the regularizer).
    """
    mean = x.mean(axis=0)
    scale = x.std(axis=0)
    scale = np.where(scale < 1e-12, 1.0, scale)
    features = _poly_features((x - mean) / scale)
    targets = np.log(np.maximum(y, 1e-300))
    gram = features.T @ features
    gram += _RIDGE_LAMBDA * np.eye(gram.shape[0])
    weights = np.linalg.solve(gram, features.T @ targets)
    return _GroupFit(mean=mean, scale=scale, weights=weights)


class DesignSurrogate:
    """Per-``(kernel, workload)`` objective surrogate with trust tracking.

    ``observe`` feeds exact evaluations (raw features are the log-transformed
    ``(y, glb_scale, pe_scale, pe_count)`` of the evaluated configuration);
    ``predict`` lazily refits a group whose training set grew and returns
    objective predictions in natural units; ``record_errors`` verifies past
    predictions against exact results and ``margin`` exposes the resulting
    trust margin.  See the module docstring for how the search composes
    these into an exact-frontier guarantee.
    """

    def __init__(self, num_pes: int, *,
                 min_train_points: int = MIN_TRAIN_POINTS,
                 safety: float = TRUST_SAFETY,
                 tolerance: float = SKIP_TOLERANCE,
                 error_quantile: float = ERROR_QUANTILE):
        self.num_pes = int(num_pes)
        self.min_train_points = int(min_train_points)
        self.safety = float(safety)
        self.tolerance = float(tolerance)
        self.error_quantile = float(error_quantile)
        self._features: Dict[Tuple[str, str], List[np.ndarray]] = {}
        self._targets: Dict[Tuple[str, str], List[np.ndarray]] = {}
        self._fits: Dict[Tuple[str, str], Optional[_GroupFit]] = {}
        self._errors: Dict[Tuple[str, str], List[float]] = {}

    # ------------------------------------------------------------------ #
    def _raw_features(self, config) -> np.ndarray:
        return np.log(np.array([
            max(float(config.overbooking_target), 1e-12),
            max(float(config.glb_scale), 1e-12),
            max(float(config.pe_scale), 1e-12),
            float(self.num_pes),
        ]))

    def observe(self, kernel: str, workload: str, config,
                objectives: Sequence[float]) -> None:
        """Add one exact evaluation to a group's training set."""
        group = (kernel, workload)
        self._features.setdefault(group, []).append(self._raw_features(config))
        self._targets.setdefault(group, []).append(
            np.asarray(objectives, dtype=float))
        self._fits[group] = None  # training set grew: refit lazily

    def observations(self, kernel: str, workload: str) -> int:
        return len(self._features.get((kernel, workload), ()))

    def trained(self, kernel: str, workload: str) -> bool:
        """Whether the group has enough exact points to rank candidates."""
        return self.observations(kernel, workload) >= self.min_train_points

    def predict(self, kernel: str, workload: str,
                configs: Sequence) -> Optional[np.ndarray]:
        """Predicted objective vectors, shape ``(len(configs), 2)``, in
        natural units — or ``None`` while the group is undertrained."""
        group = (kernel, workload)
        if not self.trained(kernel, workload):
            return None
        fit = self._fits.get(group)
        if fit is None:
            fit = _fit_group(np.vstack(self._features[group]),
                             np.vstack(self._targets[group]))
            self._fits[group] = fit
        x = np.vstack([self._raw_features(config) for config in configs])
        return fit.predict(x)

    # ------------------------------------------------------------------ #
    def record_errors(self, kernel: str, workload: str,
                      predicted: np.ndarray, exact: np.ndarray) -> None:
        """Fold verified predictions into the group's error history.

        Each row's worst per-objective relative error counts as one
        verified prediction — errors are recorded *before* the exact
        results are observed into the training set, so they measure the
        model the search actually ranked with, out of sample.
        """
        predicted = np.asarray(predicted, dtype=float)
        exact = np.asarray(exact, dtype=float)
        if predicted.size == 0:
            return
        relative = np.abs(predicted - exact) / np.maximum(np.abs(exact), 1e-300)
        self._errors.setdefault((kernel, workload), []).extend(
            float(value) for value in relative.max(axis=-1).reshape(-1))

    def error_margin(self, kernel: str, workload: str) -> Optional[float]:
        """``safety × error-quantile`` of the group's verified errors —
        ``None`` while nothing has been verified (no trust, no skipping)."""
        errors = self._errors.get((kernel, workload))
        if not errors:
            return None
        return self.safety * float(np.percentile(errors, self.error_quantile))

    def trust_band(self, kernel: str, workload: str) -> Optional[float]:
        """The group's skip band: ``tolerance − error_margin``.

        A candidate is skippable in this group when some exactly evaluated
        feasible point is predicted to be at least as good on every
        objective within ``(1 + band)`` — generous (up to ``tolerance``)
        while the model verifies accurately, *negative* once observed
        errors exceed the tolerance, so an unreliable model must predict a
        candidate strictly worse by the excess before it may skip it.
        ``None`` (no verified predictions yet) means nothing is skippable.
        """
        margin = self.error_margin(kernel, workload)
        if margin is None:
            return None
        return self.tolerance - margin
