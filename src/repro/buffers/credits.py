"""Credit-based flow control between a buffer and its parent.

Buffets synchronize fills and shrinks through credits (Section 3.2): the
parent may push a fill only when it holds a credit, and every shrink releases
as many credits as the number of freed slots.  The accelerator model uses the
channel to check that a drive sequence never pushes more data than the child
can accept.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative_int, check_positive_int


@dataclass
class CreditChannel:
    """A counter of free slots the parent is allowed to fill.

    Parameters
    ----------
    initial_credits:
        Number of credits available at reset — for an empty buffer this equals
        its capacity.
    """

    initial_credits: int

    def __post_init__(self) -> None:
        check_positive_int(self.initial_credits, "initial_credits")
        self._credits = self.initial_credits
        self._granted = 0
        self._released = 0

    @property
    def available(self) -> int:
        """Credits the parent currently holds."""
        return self._credits

    @property
    def total_granted(self) -> int:
        """Number of credits consumed over the lifetime of the channel."""
        return self._granted

    @property
    def total_released(self) -> int:
        """Number of credits released by shrinks over the lifetime."""
        return self._released

    def can_send(self, amount: int = 1) -> bool:
        """Whether the parent may push ``amount`` more words."""
        check_positive_int(amount, "amount")
        return self._credits >= amount

    def consume(self, amount: int = 1) -> None:
        """Consume credits for a push of ``amount`` words."""
        check_positive_int(amount, "amount")
        if amount > self._credits:
            raise ValueError(
                f"cannot consume {amount} credits, only {self._credits} available"
            )
        self._credits -= amount
        self._granted += amount

    def release(self, amount: int = 1) -> None:
        """Release credits after a shrink of ``amount`` words."""
        check_non_negative_int(amount, "amount")
        if self._credits + amount > self.initial_credits:
            raise ValueError(
                "credit release would exceed the channel's initial credits "
                f"({self._credits} + {amount} > {self.initial_credits})"
            )
        self._credits += amount
        self._released += amount

    def reset(self) -> None:
        """Restore the initial credit count (lifetime totals are kept)."""
        self._credits = self.initial_credits
