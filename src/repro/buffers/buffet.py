"""The buffet storage idiom (Pellauer et al., ASPLOS 2019), as used by the paper.

A buffet manages its storage as a queue but allows *random access* to any data
currently held, through four operations (Section 3.2 of the paper):

* ``Fill(data)`` — append new data at the tail of the queue;
* ``Read(index)`` — read the element ``index`` positions past the head;
* ``Update(index, data)`` — overwrite the element at ``index``;
* ``Shrink(num)`` — free ``num`` elements from the head.

Synchronization toward the parent uses credits: fills may only be pushed when
free slots exist, and every shrink releases credits.

The model below is a functional simulator: it stores real values (so the
accelerator pipeline can be checked end-to-end for correctness), counts every
action (so the energy model can charge for them), and enforces the idiom's
restrictions by raising :class:`BufferFullError` / :class:`BufferStallError`
when a driver violates them.

The crucial limitation motivating Tailors is visible directly in the API:
data can only leave through ``shrink`` — i.e. from the *head*, oldest first —
so when a tile is larger than the buffer the only way to make room for the
tail of the tile is to throw away data that is still inside the reuse window.
:meth:`Buffet.index_to_offset` documents the index/offset equivalence that
Tailors later has to break.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.buffers.base import BufferFullError, BufferStallError, StorageIdiom
from repro.buffers.credits import CreditChannel
from repro.utils.validation import check_non_negative_int, check_positive_int


class Buffet(StorageIdiom):
    """Functional model of a buffet.

    The storage is a rolling buffer of ``capacity`` slots with a head pointer
    and an occupancy counter; index ``i`` (relative to the head of the queue)
    maps to physical slot ``(head + i) % capacity``.
    """

    def __init__(self, capacity: int, name: str = "buffet"):
        super().__init__(capacity=capacity, name=name)
        self._slots: List[Optional[Any]] = [None] * capacity
        self._head = 0
        self._occupancy = 0
        self._credits = CreditChannel(capacity)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def occupancy(self) -> int:
        return self._occupancy

    @property
    def credits(self) -> CreditChannel:
        """The credit channel toward the parent level."""
        return self._credits

    def reset(self) -> None:
        self._slots = [None] * self.capacity
        self._head = 0
        self._occupancy = 0
        self._credits.reset()

    def contents(self) -> List[Any]:
        """Valid data in queue order, head first (for tests and traces)."""
        return [self._slots[(self._head + i) % self.capacity] for i in range(self._occupancy)]

    def physical_slots(self) -> List[Optional[Any]]:
        """Raw slot array in physical order (for golden-trace tests)."""
        return list(self._slots)

    def index_to_offset(self, index: int) -> int:
        """Physical slot that queue index ``index`` occupies.

        For a buffet the *index* (position within the current tile/window) and
        the *offset* (position within the buffer) coincide up to the rolling
        head — this identity is what Tailors must generalize once the buffer
        splits into buffet- and FIFO-managed regions.
        """
        check_non_negative_int(index, "index")
        if index >= self.capacity:
            raise IndexError(
                f"{self.name}: index {index} exceeds the buffer capacity {self.capacity}"
            )
        return (self._head + index) % self.capacity

    # ------------------------------------------------------------------ #
    # Buffet operations
    # ------------------------------------------------------------------ #
    def can_fill(self) -> bool:
        """Whether the parent holds a credit for another fill."""
        return not self.is_full

    def fill(self, value: Any) -> None:
        """Append ``value`` at the tail of the queue.

        Raises :class:`BufferFullError` when no free slot exists — in hardware
        the credit channel would have prevented the push.
        """
        if self.is_full:
            raise BufferFullError(f"{self.name}: fill into a full buffet")
        self._credits.consume(1)
        slot = (self._head + self._occupancy) % self.capacity
        self._slots[slot] = value
        self._occupancy += 1
        self.counters.fills += 1

    def read(self, index: int) -> Any:
        """Read the element ``index`` positions past the head of the queue.

        Raises :class:`BufferStallError` if the element has not been filled
        yet (the hardware would stall until the fill arrives).
        """
        check_non_negative_int(index, "index")
        if index >= self._occupancy:
            raise BufferStallError(
                f"{self.name}: read of index {index} but occupancy is {self._occupancy}"
            )
        self.counters.reads += 1
        return self._slots[(self._head + index) % self.capacity]

    def update(self, index: int, value: Any) -> None:
        """Overwrite the element at ``index`` with ``value``."""
        check_non_negative_int(index, "index")
        if index >= self._occupancy:
            raise BufferStallError(
                f"{self.name}: update of index {index} but occupancy is {self._occupancy}"
            )
        self._slots[(self._head + index) % self.capacity] = value
        self.counters.updates += 1

    def shrink(self, num: int = 1) -> None:
        """Free ``num`` elements from the head of the queue, releasing credits."""
        check_positive_int(num, "num")
        if num > self._occupancy:
            raise BufferStallError(
                f"{self.name}: shrink of {num} but occupancy is {self._occupancy}"
            )
        for i in range(num):
            self._slots[(self._head + i) % self.capacity] = None
        self._head = (self._head + num) % self.capacity
        self._occupancy -= num
        self._credits.release(num)
        self.counters.shrinks += num
