"""A first-in/first-out buffer model.

FIFOs are the cheapest EDDO storage idiom, but they restrict both the access
order and the replacement policy to first-in/first-out (Section 3.2) — a
consumer can only look at the head of the queue, which is unacceptable for
tensor-algebra dataflows that revisit data within a tile.  The model exists
for two reasons: it is the building block Tailors conceptually embeds at the
tail of the buffer, and it provides a lower bound on storage-idiom complexity
in the ablation experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.buffers.base import BufferFullError, BufferStallError, StorageIdiom


class FifoBuffer(StorageIdiom):
    """A bounded FIFO supporting ``push`` (fill) and ``pop`` (read + shrink)."""

    def __init__(self, capacity: int, name: str = "fifo"):
        super().__init__(capacity=capacity, name=name)
        self._queue: Deque[Any] = deque()

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    def reset(self) -> None:
        self._queue.clear()

    def push(self, value: Any) -> None:
        """Fill one word at the tail of the queue."""
        if self.is_full:
            raise BufferFullError(f"{self.name}: push into a full FIFO")
        self._queue.append(value)
        self.counters.fills += 1

    def front(self) -> Any:
        """Read the head of the queue without removing it."""
        if not self._queue:
            raise BufferStallError(f"{self.name}: front of an empty FIFO")
        self.counters.reads += 1
        return self._queue[0]

    def pop(self) -> Any:
        """Read and remove the head of the queue."""
        if not self._queue:
            raise BufferStallError(f"{self.name}: pop of an empty FIFO")
        self.counters.reads += 1
        self.counters.shrinks += 1
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)
