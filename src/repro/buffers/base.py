"""Common machinery for storage-idiom models: counters, exceptions, base class."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.utils.validation import check_positive_int


class BufferError(Exception):
    """Base class for storage-idiom errors."""


class BufferFullError(BufferError):
    """Raised when a fill is attempted on a buffer with no free capacity.

    In hardware the producer would simply stall (credits prevent the push);
    the functional model surfaces the condition as an exception so that an
    incorrectly-sequenced driver fails loudly instead of silently dropping
    data.
    """


class BufferStallError(BufferError):
    """Raised when a read references data that has not been filled yet.

    The hardware semantics are a stall until the data arrives; the functional
    model raises so that tests can assert on the condition.
    """


@dataclass
class AccessCounters:
    """Per-buffer action counts, the quantities the energy model charges for."""

    fills: int = 0
    reads: int = 0
    updates: int = 0
    shrinks: int = 0
    overwriting_fills: int = 0
    evictions: int = 0
    misses: int = 0

    def total_writes(self) -> int:
        """All actions that write the storage array."""
        return self.fills + self.updates + self.overwriting_fills

    def total_accesses(self) -> int:
        """All data-array accesses (reads + writes)."""
        return self.total_writes() + self.reads

    def merged(self, other: "AccessCounters") -> "AccessCounters":
        """Element-wise sum of two counter sets."""
        return AccessCounters(
            fills=self.fills + other.fills,
            reads=self.reads + other.reads,
            updates=self.updates + other.updates,
            shrinks=self.shrinks + other.shrinks,
            overwriting_fills=self.overwriting_fills + other.overwriting_fills,
            evictions=self.evictions + other.evictions,
            misses=self.misses + other.misses,
        )

    def as_dict(self) -> dict:
        return {
            "fills": self.fills,
            "reads": self.reads,
            "updates": self.updates,
            "shrinks": self.shrinks,
            "overwriting_fills": self.overwriting_fills,
            "evictions": self.evictions,
            "misses": self.misses,
        }


@dataclass
class StorageIdiom(ABC):
    """Base class for buffer models.

    Every idiom has a fixed ``capacity`` in data words and an
    :class:`AccessCounters` instance tracking the actions performed on it.
    Sub-classes implement the storage-management policy.
    """

    capacity: int
    name: str = "buffer"
    counters: AccessCounters = field(default_factory=AccessCounters)

    def __post_init__(self) -> None:
        check_positive_int(self.capacity, "capacity")

    @property
    @abstractmethod
    def occupancy(self) -> int:
        """Number of valid data words currently held."""

    @property
    def free_capacity(self) -> int:
        """Unoccupied words."""
        return self.capacity - self.occupancy

    @property
    def is_full(self) -> bool:
        return self.occupancy >= self.capacity

    @property
    def utilization(self) -> float:
        """Instantaneous buffer utilization (occupancy / capacity)."""
        return self.occupancy / self.capacity

    @abstractmethod
    def reset(self) -> None:
        """Drop all contents (counters are preserved)."""

    def describe(self) -> dict[str, Any]:
        """Debug/report snapshot."""
        return {
            "name": self.name,
            "capacity": self.capacity,
            "occupancy": self.occupancy,
            "counters": self.counters.as_dict(),
        }
