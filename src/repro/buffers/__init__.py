"""Storage idioms for explicit decoupled data orchestration (EDDO).

Section 2.3 and 3.2 of the paper survey the buffering idioms a sparse tensor
accelerator can use:

* **FIFOs** — cheap, composable, but restricted to first-in/first-out access;
* **buffets** — a queue-managed buffer supporting Fill / Read / Update /
  Shrink with credit-based synchronization toward the parent level;
* **caches** — tag-matched, associativity-managed buffers typical of CPUs/GPUs
  (high overhead for accelerators, but they tolerate overflowing working
  sets, which is the behaviour overbooking wants without the cost).

This subpackage implements those three idioms as functional models that count
every access, so the accelerator model and the reuse experiments can charge
traffic and energy to them.  The paper's contribution — Tailors — extends the
buffet idiom and lives in :mod:`repro.core.tailors`.
"""

from repro.buffers.base import (
    AccessCounters,
    BufferError,
    BufferFullError,
    BufferStallError,
    StorageIdiom,
)
from repro.buffers.credits import CreditChannel
from repro.buffers.fifo import FifoBuffer
from repro.buffers.buffet import Buffet
from repro.buffers.cache import LruCache

__all__ = [
    "AccessCounters",
    "BufferError",
    "BufferFullError",
    "BufferStallError",
    "StorageIdiom",
    "CreditChannel",
    "FifoBuffer",
    "Buffet",
    "LruCache",
]
