"""A set-less LRU cache model.

Section 2.3 of the paper notes that caches handle working sets larger than
their capacity gracefully (an optimal replacement policy keeps whatever will
be reused), but pay for it with tag matching and associativity hardware that
domain-specific accelerators avoid.  The model here is used by ablation
benchmarks to put Tailors' reuse between the two bounds:

* a fully-associative LRU cache (this module) — an upper bound on flexibility;
* a buffet that must drop the whole tile (the paper's baseline behaviour) — a
  lower bound.

The cache tracks hits/misses/evictions per key; keys are whatever hashable
identifier the driver uses for a data word (e.g. ``(tile_id, element_index)``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from repro.buffers.base import StorageIdiom


class LruCache(StorageIdiom):
    """Fully-associative cache with least-recently-used replacement."""

    def __init__(self, capacity: int, name: str = "lru-cache"):
        super().__init__(capacity=capacity, name=name)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        self._entries.clear()

    def contains(self, key: Hashable) -> bool:
        """Whether ``key`` is resident (does not update recency or counters)."""
        return key in self._entries

    def access(self, key: Hashable, value: Any = None) -> bool:
        """Access ``key``; return True on a hit, False on a miss.

        On a miss the key is installed (with ``value``), evicting the least
        recently used entry if the cache is full.  Either way the key becomes
        the most recently used entry.
        """
        self.counters.reads += 1
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        self.counters.misses += 1
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.counters.evictions += 1
        self._entries[key] = value
        self.counters.fills += 1
        return False

    def get(self, key: Hashable) -> Any:
        """Return the cached value for ``key`` (must be resident)."""
        if key not in self._entries:
            raise KeyError(f"{self.name}: {key!r} is not resident")
        self._entries.move_to_end(key)
        self.counters.reads += 1
        return self._entries[key]

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0 when nothing was accessed)."""
        if self.counters.reads == 0:
            return 0.0
        return 1.0 - self.counters.misses / self.counters.reads
