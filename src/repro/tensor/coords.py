"""Coordinate-space primitives: points, ranges, and shapes.

The paper describes tiles in *coordinate space*: a tile is a hyper-rectangle of
coordinates whose *size* is the product of its per-dimension ranges and whose
*occupancy* is the number of nonzeros it contains (Section 2.2).  These small
immutable classes carry that vocabulary through the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.utils.validation import check_non_negative_int, check_positive_int

#: A point is a tuple of integer coordinates, one per dimension.
Point = Tuple[int, ...]


@dataclass(frozen=True)
class Range:
    """A half-open interval of integer coordinates ``[start, stop)``."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        check_non_negative_int(self.start, "start")
        check_non_negative_int(self.stop, "stop")
        if self.stop < self.start:
            raise ValueError(f"stop ({self.stop}) must be >= start ({self.start})")

    def __len__(self) -> int:
        return self.stop - self.start

    def __contains__(self, coordinate: int) -> bool:
        return self.start <= coordinate < self.stop

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.stop))

    def intersect(self, other: "Range") -> "Range":
        """Return the overlap of two ranges (possibly empty)."""
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        if stop < start:
            stop = start
        return Range(start, stop)

    def clamp(self, bound: int) -> "Range":
        """Clip the range so that it does not extend past ``bound``."""
        return Range(min(self.start, bound), min(self.stop, bound))


@dataclass(frozen=True)
class Shape:
    """The shape of a tensor or tile: a tuple of per-dimension extents.

    The paper's vocabulary (Section 2.1): the *shape* is the tuple of ranges,
    the *size* is the product of the ranges (zeros included), and the
    *occupancy* is the number of nonzeros — occupancy lives with the data, not
    with the shape, so it is not represented here.
    """

    dims: Tuple[int, ...]

    def __init__(self, dims: Sequence[int]):
        dims = tuple(check_positive_int(d, "dimension") for d in dims)
        if not dims:
            raise ValueError("a shape needs at least one dimension")
        object.__setattr__(self, "dims", dims)

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.dims)

    @property
    def size(self) -> int:
        """Number of points in the shape (zeros and nonzeros alike)."""
        return math.prod(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def __getitem__(self, index: int) -> int:
        return self.dims[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self.dims)

    def contains(self, point: Point) -> bool:
        """Return whether ``point`` lies inside the shape."""
        if len(point) != self.rank:
            raise ValueError(
                f"point has {len(point)} coordinates but the shape has rank {self.rank}"
            )
        return all(0 <= c < d for c, d in zip(point, self.dims))

    def tile_grid(self, tile_dims: Sequence[int]) -> Tuple[int, ...]:
        """Number of tiles along each dimension when tiling with ``tile_dims``.

        Partial tiles at the boundary count as full grid entries, matching how
        coordinate-space tiling partitions a tensor whose extent is not an
        exact multiple of the tile shape.
        """
        if len(tile_dims) != self.rank:
            raise ValueError(
                f"tile has {len(tile_dims)} dims but the shape has rank {self.rank}"
            )
        grid = []
        for extent, tile_extent in zip(self.dims, tile_dims):
            check_positive_int(tile_extent, "tile dimension")
            grid.append(math.ceil(extent / tile_extent))
        return tuple(grid)

    def num_tiles(self, tile_dims: Sequence[int]) -> int:
        """Total number of coordinate-space tiles of shape ``tile_dims``."""
        return math.prod(self.tile_grid(tile_dims))
