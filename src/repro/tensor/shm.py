"""Shared-memory suite transport for scheduler fan-out.

Scheduler workers historically rebuilt every suite matrix from its seed
(`suite_from_token`), so fanning a grid out to N workers regenerated the
suite N times — O(workers × suite bytes) of redundant work.  This module
moves the suite across the process boundary through one
:class:`multiprocessing.shared_memory.SharedMemory` segment instead:

* The **parent** builds (or reuses) the suite's matrices once, concatenates
  their CSR buffers (``data`` / ``indices`` / ``indptr``, original dtypes
  preserved) into a single segment, and publishes a small picklable
  *manifest* of offsets, dtypes and shapes (:func:`export_suite`).
* Each **worker** attaches the segment by name, wraps zero-copy NumPy views
  over the buffers into ``scipy.sparse`` CSR matrices, marks them canonical
  (the exporter's matrices came out of the normalizing
  :class:`~repro.tensor.sparse.SparseMatrix` constructor, so indices are
  sorted and explicit zeros eliminated), and seeds the process-wide matrix
  cache of :mod:`repro.tensor.suite` — after which ``suite.matrix(name)`` is
  a cache hit and no worker ever regenerates a matrix
  (:func:`attach_suite`).  The views are read-only; the trusted
  ``SparseMatrix._from_canonical_csr`` constructor skips the mutating
  normalization pass.
* Lifecycle is **reference-counted in the parent**: every
  :func:`export_suite` under the same token shares one segment and bumps its
  count, every :func:`release_suite` drops it, and the last release closes
  *and unlinks* the segment.  Workers only ever close their attachment (and
  unregister it from the resource tracker — the parent owns unlinking).
  :func:`active_segments` exposes the live set so tests can assert nothing
  leaked.

Everything degrades gracefully: if shared memory is unavailable (no
``/dev/shm``, permissions), :func:`export_suite` returns ``None`` and the
scheduler falls back to token-rebuilding workers — slower, never wrong.

Dense kernel operands (SpMM/SpMV/SDDMM factors) are *not* exported: they are
cheap deterministic functions of ``(suite seed, workload, kernel salt)`` and
every worker rebuilds them bit-identically from the token.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.tensor.sparse import SparseMatrix
from repro.tensor.suite import _SHARED_MATRIX_CACHE, suite_from_token


@dataclass(frozen=True)
class ArraySpec:
    """Location of one NumPy array inside the segment (picklable)."""

    offset: int
    dtype: str
    length: int


@dataclass(frozen=True)
class MatrixSpec:
    """Location of one CSR matrix's three arrays inside the segment."""

    name: str
    shape: Tuple[int, int]
    data: ArraySpec
    indices: ArraySpec
    indptr: ArraySpec


@dataclass(frozen=True)
class SuiteManifest:
    """Everything a worker needs to attach one suite's matrices.

    ``entries`` maps the shared-matrix-cache key (``(scope, seed, name)`` or
    ``(scope, seed, name, "pair")`` — see
    :data:`repro.tensor.suite._SHARED_MATRIX_CACHE`) to the matrix's location
    in the segment named ``segment_name``.
    """

    segment_name: str
    suite_token: tuple
    entries: Tuple[Tuple[tuple, MatrixSpec], ...]


#: Parent-side registry: segment name → (SharedMemory, refcount).  Keyed by
#: suite token so repeated exports of the same suite share one segment.
#: Reference counts are read-modify-write, so every access goes through
#: ``_REGISTRY_LOCK`` — concurrent server requests sharing a suite would
#: otherwise lose increments (premature unlink under a live exporter) or
#: lose decrements (a leaked segment outliving the process).
_EXPORTED: Dict[tuple, List] = {}

#: Guards ``_EXPORTED`` (the whole export path holds it, so two concurrent
#: cold exports of one token cannot each create a segment).
_REGISTRY_LOCK = threading.Lock()

#: Worker-side attachments kept alive for the life of the process (the CSR
#: views borrow the segment's buffer, so it must not be closed under them).
_ATTACHED: Dict[str, object] = {}


def active_segments() -> List[str]:
    """Names of shared-memory segments this process currently *owns*.

    Only parent-side exports count — a non-empty result after a sweep means
    a missing :func:`release_suite` (the leak the test teardown checks for).
    """
    with _REGISTRY_LOCK:
        return sorted(entry[0].name for entry in _EXPORTED.values())


def _align(offset: int, alignment: int = 16) -> int:
    return (offset + alignment - 1) // alignment * alignment


def _layout(matrices: Dict[tuple, SparseMatrix]):
    """Plan the segment: per-matrix array specs plus the total byte size."""
    offset = 0
    planned = []
    for cache_key, matrix in matrices.items():
        csr = matrix.csr
        specs = {}
        for field in ("data", "indices", "indptr"):
            array = getattr(csr, field)
            offset = _align(offset)
            specs[field] = ArraySpec(offset=offset, dtype=array.dtype.str,
                                     length=int(array.size))
            offset += array.nbytes
        planned.append((cache_key, MatrixSpec(
            name=matrix.name, shape=(matrix.num_rows, matrix.num_cols),
            data=specs["data"], indices=specs["indices"],
            indptr=specs["indptr"])))
    return planned, max(1, offset)


def _view(buffer, spec: ArraySpec) -> np.ndarray:
    array = np.frombuffer(buffer, dtype=np.dtype(spec.dtype),
                          count=spec.length, offset=spec.offset)
    return array


def export_suite(suite_token: tuple, workloads: Sequence[str], *,
                 include_pairs: bool = False) -> Optional[SuiteManifest]:
    """Publish a suite's matrices in one shared-memory segment (parent side).

    Builds (or reuses, via the process-wide cache) the named workloads'
    matrices — plus their paired ``B`` operands when ``include_pairs`` — and
    copies their CSR buffers into a fresh segment.  Returns the picklable
    manifest to hand to worker initializers, or ``None`` when shared memory
    is unavailable (callers fall back to token-rebuilding workers).

    Re-exporting a token already live bumps its reference count and returns
    an equivalent manifest; every export must be paired with one
    :func:`release_suite`.  Thread-safe: the registry lock is held for the
    whole export, so concurrent exporters of one token always share a single
    segment (exports of *different* tokens serialize too — segment creation
    is cheap next to the evaluations it feeds).
    """
    with _REGISTRY_LOCK:
        live = _EXPORTED.get(suite_token)
        if live is not None:
            live[1] += 1
            return live[2]

        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - always present on CPython 3.8+
            return None

        suite = suite_from_token(suite_token)
        scope, seed, _ = suite_token
        matrices: Dict[tuple, SparseMatrix] = {}
        for name in workloads:
            matrices[(scope, seed, name)] = suite.matrix(name)
            if include_pairs:
                matrices[(scope, seed, name, "pair")] = suite.paired_matrix(name)

        planned, total_bytes = _layout(matrices)
        try:
            segment = shared_memory.SharedMemory(create=True, size=total_bytes)
        except (OSError, ValueError):
            return None
        for cache_key, spec in planned:
            csr = matrices[cache_key].csr
            for field in ("data", "indices", "indptr"):
                array_spec: ArraySpec = getattr(spec, field)
                view = _view(segment.buf, array_spec)
                view[:] = getattr(csr, field)
        manifest = SuiteManifest(segment_name=segment.name,
                                 suite_token=suite_token,
                                 entries=tuple(planned))
        _EXPORTED[suite_token] = [segment, 1, manifest]
        return manifest


def _close_and_unlink(segment) -> None:
    try:
        segment.close()
    finally:
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


def release_suite(suite_token: tuple) -> None:
    """Drop one reference to an exported suite; last one unlinks the segment.

    Thread-safe: the decrement and the remove-at-zero decision happen under
    the registry lock, so concurrent releases (or a release racing an
    export) can neither double-unlink a segment nor leak one.
    """
    with _REGISTRY_LOCK:
        live = _EXPORTED.get(suite_token)
        if live is None:
            return
        live[1] -= 1
        if live[1] > 0:
            return
        del _EXPORTED[suite_token]
        segment = live[0]
    _close_and_unlink(segment)


def release_all() -> None:
    """Release every live export unconditionally (crash-path cleanup)."""
    with _REGISTRY_LOCK:
        entries = list(_EXPORTED.values())
        _EXPORTED.clear()
    for segment, _count, _manifest in entries:
        _close_and_unlink(segment)


def attach_suite(manifest: SuiteManifest) -> None:
    """Attach an exported suite and seed the shared matrix cache (worker side).

    Idempotent per segment.  Failures are swallowed: a worker that cannot
    attach simply rebuilds matrices from the token, exactly as before.
    """
    if manifest is None or manifest.segment_name in _ATTACHED:
        return
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=manifest.segment_name)
    except (ImportError, OSError, ValueError):
        return
    # The parent owns the segment's lifetime.  Forked pool workers (the only
    # kind this codebase spawns) share the parent's resource tracker, whose
    # registry is a set — the attach-side register is a no-op and the
    # parent's unlink unregisters exactly once, so no extra bookkeeping is
    # needed (an unregister here would double-fire in the shared tracker).
    _ATTACHED[manifest.segment_name] = segment

    for cache_key, spec in manifest.entries:
        arrays = {}
        for field in ("data", "indices", "indptr"):
            array_spec: ArraySpec = getattr(spec, field)
            array = _view(segment.buf, array_spec)
            array.flags.writeable = False
            arrays[field] = array
        csr = sp.csr_matrix(
            (arrays["data"], arrays["indices"], arrays["indptr"]),
            shape=spec.shape, copy=False)
        # The exported matrices came out of the normalizing SparseMatrix
        # constructor, so the views are canonical by construction; telling
        # scipy avoids it re-deriving (or worse, re-sorting in place).
        csr.has_sorted_indices = True
        csr.has_canonical_format = True
        _SHARED_MATRIX_CACHE.setdefault(
            cache_key, SparseMatrix._from_canonical_csr(csr, spec.name))


def detach_all() -> None:
    """Close every worker-side attachment (test hygiene; workers normally
    just exit)."""
    for name in list(_ATTACHED):
        segment = _ATTACHED.pop(name)
        try:
            segment.close()
        except Exception:
            pass
