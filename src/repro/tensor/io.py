"""MatrixMarket-style persistence for sparse matrices.

The evaluation suite is synthetic (see :mod:`repro.tensor.suite`), but users
who have the original SuiteSparse matrices can load them through this module
and run every experiment on the real data: the experiment harness accepts any
mapping from workload name to :class:`~repro.tensor.sparse.SparseMatrix`.

Only the coordinate (``coordinate real/pattern/integer general/symmetric``)
flavour of the MatrixMarket format is supported, which is what SuiteSparse
ships.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterable, Tuple, Union

import numpy as np

from repro.tensor.sparse import SparseMatrix

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")  # type: ignore[return-value]
    return open(path, mode)


def write_matrix_market(matrix: SparseMatrix, path: PathLike,
                        *, pattern: bool = False) -> None:
    """Write ``matrix`` in MatrixMarket coordinate format.

    Parameters
    ----------
    matrix:
        The matrix to persist.
    path:
        Output path; a ``.gz`` suffix triggers gzip compression.
    pattern:
        When true, only coordinates are written (``pattern`` field), matching
        how adjacency matrices are usually distributed.
    """
    rows, cols = matrix.coordinates()
    values = matrix.values()
    field = "pattern" if pattern else "real"
    with _open_text(path, "w") as handle:
        handle.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        handle.write(f"% written by repro.tensor.io for workload {matrix.name}\n")
        handle.write(f"{matrix.num_rows} {matrix.num_cols} {matrix.nnz}\n")
        if pattern:
            for r, c in zip(rows, cols):
                handle.write(f"{r + 1} {c + 1}\n")
        else:
            for r, c, v in zip(rows, cols, values):
                handle.write(f"{r + 1} {c + 1} {v:.17g}\n")


def matrix_market_header(path: PathLike) -> Tuple[int, int, int, bool]:
    """Read only the banner and size line of a MatrixMarket file.

    Returns ``(rows, cols, stored_entries, symmetric)``.  ``stored_entries``
    is the entry count of the *file*; for ``symmetric`` files the loaded
    matrix mirrors off-diagonal entries, so its ``nnz`` is larger (up to 2×).
    Used by the workload-suite corpus path to populate spec metadata without
    parsing the entries (the matrix itself is loaded lazily on first use).
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        header = handle.readline()
        if not header.lower().startswith("%%matrixmarket"):
            raise ValueError(f"{path} is not a MatrixMarket file")
        symmetric = "symmetric" in header.lower().split()
        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        dims = line.split()
        if len(dims) != 3:
            raise ValueError(f"malformed size line: {line!r}")
        num_rows, num_cols, entries = (int(x) for x in dims)
    return num_rows, num_cols, entries, symmetric


def matrix_market_dimensions(path: PathLike) -> Tuple[int, int, int]:
    """Read only the size line of a MatrixMarket file: ``(rows, cols, nnz)``.

    ``nnz`` is the stored entry count; see :func:`matrix_market_header` for
    the symmetry-aware variant.
    """
    num_rows, num_cols, entries, _ = matrix_market_header(path)
    return num_rows, num_cols, entries


def matrix_market_name(path: PathLike) -> str:
    """The default workload name for a MatrixMarket file (filename stem)."""
    return Path(path).name.replace(".mtx", "").replace(".gz", "")


def read_matrix_market(path: PathLike, name: str | None = None) -> SparseMatrix:
    """Read a MatrixMarket coordinate file into a :class:`SparseMatrix`.

    Handles the ``general`` and ``symmetric`` symmetries and the ``real``,
    ``integer`` and ``pattern`` fields.  Values of pattern matrices are set to
    1.0.
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        header = handle.readline()
        if not header.lower().startswith("%%matrixmarket"):
            raise ValueError(f"{path} is not a MatrixMarket file")
        tokens = header.lower().split()
        if "coordinate" not in tokens:
            raise ValueError("only coordinate-format MatrixMarket files are supported")
        pattern = "pattern" in tokens
        symmetric = "symmetric" in tokens

        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        dims = line.split()
        if len(dims) != 3:
            raise ValueError(f"malformed size line: {line!r}")
        num_rows, num_cols, nnz = (int(x) for x in dims)

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        values = np.ones(nnz, dtype=np.float64)
        for i, entry in enumerate(_entries(handle, nnz)):
            parts = entry.split()
            rows[i] = int(parts[0]) - 1
            cols[i] = int(parts[1]) - 1
            if not pattern and len(parts) > 2:
                values[i] = float(parts[2])

    if symmetric:
        off_diagonal = rows != cols
        rows = np.concatenate([rows, cols[off_diagonal]])
        cols = np.concatenate([cols, rows[: nnz][off_diagonal]])
        values = np.concatenate([values, values[off_diagonal]])

    matrix_name = name or matrix_market_name(path)
    return SparseMatrix.from_coo(rows, cols, values, (num_rows, num_cols), name=matrix_name)


def _entries(handle: Iterable[str], count: int) -> Iterable[str]:
    emitted = 0
    for line in handle:
        line = line.strip()
        if not line or line.startswith("%"):
            continue
        yield line
        emitted += 1
        if emitted == count:
            return
    if emitted != count:
        raise ValueError(f"expected {count} entries but found {emitted}")
