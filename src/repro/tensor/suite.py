"""The synthetic evaluation workload suite (Table 2 of the paper).

The paper evaluates 22 SuiteSparse matrices.  This module defines a suite of
22 synthetic workloads, one per paper workload, generated with the
distribution class that matches the original matrix (FEM band, block FEM,
power-law graph, near-uniform graph, road network).  Dimensions are scaled
down (~1/16–1/64 of the originals) so that the entire evaluation pipeline runs
in seconds on a laptop; the per-matrix *structure class* — which is what
determines the tile-occupancy distribution and hence every result in the paper
— is preserved.

The realized characteristics of every synthetic workload (dimensions,
occupancy, sparsity) are what Table 2 of the reproduction reports; see
``repro.experiments.table2`` and EXPERIMENTS.md.

Use :func:`default_suite` for the full 22-workload suite and
:func:`small_suite` for a fast three-workload suite used by tests and the
quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Sequence

import numpy as np

from repro.tensor import generators
from repro.tensor.io import matrix_market_header, matrix_market_name, read_matrix_market
from repro.tensor.sparse import SparseMatrix
from repro.utils.rng import RandomState, resolve_rng

#: A builder takes a numpy Generator and produces the workload matrix.
MatrixBuilder = Callable[[np.random.Generator], SparseMatrix]

#: Stream-index offset of derived paired operands (general SpMSpM ``B``
#: matrices): far away from any plausible workload position, so ``B`` streams
#: never collide with primary streams.
_PAIR_STREAM_OFFSET = 611_953


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of one evaluation workload.

    Attributes
    ----------
    name:
        Workload name, matching the SuiteSparse matrix it stands in for.
    category:
        ``"linear-system"`` (top half of Table 2), ``"graph"`` (bottom half)
        or ``"corpus"`` for matrices loaded from MatrixMarket files.
    description:
        One-line description of the structure being mimicked.
    paper_rows, paper_cols:
        Dimensions of the original SuiteSparse matrix (for reference/reports).
    paper_sparsity:
        Sparsity of the original matrix as listed in Table 2.
    builder:
        Callable that generates the synthetic stand-in (or loads the corpus
        file).
    b_builder:
        Optional builder for the workload's *paired* sparse operand (the
        ``B`` of a general SpMSpM ``A × B``).  ``None`` (the default) derives
        ``B`` from ``builder`` on an independent random stream — same
        structure class, different instance.
    """

    name: str
    category: str
    description: str
    paper_rows: int
    paper_cols: int
    paper_sparsity: float
    builder: MatrixBuilder = field(repr=False, compare=False)
    b_builder: Optional[MatrixBuilder] = field(
        default=None, repr=False, compare=False)

    def build(self, rng: RandomState = None) -> SparseMatrix:
        """Generate the synthetic matrix for this workload."""
        return self.builder(resolve_rng(rng))

    def build_pair(self, rng: RandomState = None) -> SparseMatrix:
        """Generate the paired ``B`` operand (falls back to ``builder``)."""
        builder = self.b_builder or self.builder
        return builder(resolve_rng(rng))

    @classmethod
    def from_matrix_market(cls, path, *, name: str | None = None,
                           category: str = "corpus",
                           description: str | None = None) -> "WorkloadSpec":
        """A spec whose matrix is loaded from a MatrixMarket file.

        Only the banner and size line are read eagerly (for the spec
        metadata); the entries are parsed lazily by the suite on first
        :meth:`WorkloadSuite.matrix` call.  ``.gz``-compressed files are
        handled transparently.

        The paired operand (general SpMSpM's ``B``) of a corpus workload is a
        deterministically row/column-permuted transpose of the file's matrix:
        a genuinely distinct operand with the same occupancy distribution,
        and dimension-compatible with ``A`` whatever its shape.
        """
        path = Path(path)
        rows, cols, entries, symmetric = matrix_market_header(path)
        workload_name = name or matrix_market_name(path)
        # Stored entries of a symmetric file mirror off-diagonal; 2x is the
        # (tight, diagonal-free) upper bound on the loaded nnz — reference
        # metadata only, the real matrix reports its exact nnz.
        nnz_hint = entries * 2 if symmetric else entries
        density = nnz_hint / (rows * cols) if rows and cols else 0.0
        return cls(
            name=workload_name,
            category=category,
            description=description or f"MatrixMarket corpus matrix ({path.name})",
            paper_rows=rows,
            paper_cols=cols,
            paper_sparsity=max(0.0, 1.0 - density),
            builder=lambda rng: read_matrix_market(path, name=workload_name),
            b_builder=lambda rng: _permuted_transpose(
                read_matrix_market(path, name=workload_name), rng),
        )


def _permuted_transpose(matrix: SparseMatrix, rng: np.random.Generator) -> SparseMatrix:
    """A random row/column permutation of ``matrix``'s transpose.

    The default paired operand of corpus workloads: same nonzero count and
    occupancy distribution as the original, but a distinct instance, and its
    shape (``n × m``) composes with the original (``m × n``) under SpMSpM.
    """
    transposed = matrix.csr.T.tocsr()
    row_order = rng.permutation(transposed.shape[0])
    col_order = rng.permutation(transposed.shape[1])
    return SparseMatrix(transposed[row_order][:, col_order],
                        name=f"{matrix.name}.B")


#: Process-wide matrix cache for the *canonical* suites (``default_suite`` /
#: ``small_suite``).  Their specs are deterministic functions of the module
#: source, so matrices can be shared across suite instances — constructing a
#: fresh ``ExperimentContext`` does not regenerate 22 synthetic tensors.
#: Keyed by ``(cache_scope, seed, workload name)``; suites built from custom
#: specs have no scope and never share.  Manage it through
#: :func:`clear_shared_matrix_cache` / :func:`shared_matrix_cache_size`, not
#: by reaching into the dict.
_SHARED_MATRIX_CACHE: Dict[tuple, SparseMatrix] = {}


def clear_shared_matrix_cache() -> None:
    """Evict the process-wide matrix cache of the canonical suites.

    Dropping the matrices also drops every per-matrix derived-result cache
    (transposes, tilings, occupancy scans) hanging off them.  Benchmarks use
    this to measure genuinely cold runs; long sweeps over many seeds can use
    it to bound memory.  Suites already holding references keep their own
    per-instance caches — only *future* suite instances rebuild.
    """
    _SHARED_MATRIX_CACHE.clear()


def shared_matrix_cache_size() -> int:
    """Number of canonical-suite matrices currently cached process-wide."""
    return len(_SHARED_MATRIX_CACHE)


class WorkloadSuite:
    """An ordered collection of workloads with cached matrix construction.

    Parameters
    ----------
    specs:
        The workload specs, in suite order.
    seed:
        Base seed of the per-workload random streams.
    stream_indices:
        Optional per-name stream index overrides.  A workload's random stream
        is derived from ``seed`` and its *stream index* (by default its
        position in this suite); :meth:`subset` passes the parent's indices so
        subset matrices are bit-identical to the parent's without being built
        eagerly.
    cache_scope:
        Hashable token identifying a canonical spec set whose matrices may be
        shared process-wide: a scope string for the built-in suites
        (``default_suite`` / ``small_suite``), a ``("mtx", paths)`` tuple for
        :func:`corpus_suite`, or a ``("synth", spec tokens)`` tuple for
        :func:`synth_suite`.  ``None`` (the default for custom suites) keeps
        caching per-instance.
    """

    def __init__(self, specs: Sequence[WorkloadSpec], *, seed: int = 2023,
                 stream_indices: Dict[str, int] | None = None,
                 cache_scope: Hashable | None = None):
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("workload names must be unique")
        self._specs: Dict[str, WorkloadSpec] = {spec.name: spec for spec in specs}
        self._order: List[str] = names
        self._seed = int(seed)
        self._cache: Dict[str, SparseMatrix] = {}
        self._pair_cache: Dict[str, SparseMatrix] = {}
        self._stream_indices: Dict[str, int] = {
            name: index for index, name in enumerate(names)
        }
        if stream_indices:
            unknown = [n for n in stream_indices if n not in self._specs]
            if unknown:
                raise KeyError(f"stream indices for unknown workloads: {unknown}")
            self._stream_indices.update(
                {name: int(index) for name, index in stream_indices.items()})
        self._cache_scope = cache_scope

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[WorkloadSpec]:
        return iter(self._specs[name] for name in self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    @property
    def names(self) -> List[str]:
        """Workload names in suite order."""
        return list(self._order)

    @property
    def seed(self) -> int:
        """Base seed of the per-workload random streams."""
        return self._seed

    def stream_index(self, name: str) -> int:
        """The workload's random-stream index (its position in the suite it
        was first defined in; see :meth:`matrix`)."""
        if name not in self._specs:
            raise KeyError(f"unknown workload {name!r}; known: {self._order}")
        return self._stream_indices[name]

    def kernel_rng(self, name: str, salt: int) -> np.random.Generator:
        """A deterministic generator for kernel operands of workload ``name``.

        The stream is a pure function of ``(suite seed, workload stream
        index, salt)``, so dense kernel factors (SpMM features, SpMV vectors,
        SDDMM factors) are bit-identical whether built in this process or
        rebuilt by a scheduler worker from the suite token.
        """
        return np.random.default_rng(
            (self._seed, self.stream_index(name), int(salt)))

    @property
    def cache_token(self):
        """Hashable identity of a canonical suite, or ``None`` for custom ones.

        Two suites with the same token produce bit-identical matrices, so
        derived results (reports) may be shared between them.
        """
        if self._cache_scope is None:
            return None
        return (self._cache_scope, self._seed, tuple(self._order))

    def spec(self, name: str) -> WorkloadSpec:
        """The spec for ``name`` (raises ``KeyError`` if unknown)."""
        return self._specs[name]

    def matrix(self, name: str) -> SparseMatrix:
        """Build (and cache) the matrix for workload ``name``.

        Each workload draws from its own deterministic random stream derived
        from the suite seed and the workload's stream index (its position in
        the suite it was first defined in), so building workloads in any
        order or subset yields identical matrices.
        """
        if name not in self._specs:
            raise KeyError(f"unknown workload {name!r}; known: {self._order}")
        if name not in self._cache:
            index = self._stream_indices[name]
            shared_key = None
            if self._cache_scope is not None:
                shared_key = (self._cache_scope, self._seed, name)
                shared = _SHARED_MATRIX_CACHE.get(shared_key)
                if shared is not None:
                    self._cache[name] = shared
                    return shared
            stream = np.random.default_rng(self._seed * 1_000_003 + index)
            built = self._specs[name].build(stream)
            self._cache[name] = built
            if shared_key is not None:
                _SHARED_MATRIX_CACHE[shared_key] = built
        return self._cache[name]

    def paired_matrix(self, name: str) -> SparseMatrix:
        """Build (and cache) the paired ``B`` operand for workload ``name``.

        Used by the general-SpMSpM kernel (``A × B`` with distinct operands).
        When the spec declares no explicit ``b_builder`` the pair is derived
        from the workload's own builder on an independent deterministic
        stream (``stream index + _PAIR_STREAM_OFFSET``), i.e. a fresh
        instance of the same structure class.
        """
        if name not in self._specs:
            raise KeyError(f"unknown workload {name!r}; known: {self._order}")
        if name not in self._pair_cache:
            index = self._stream_indices[name]
            shared_key = None
            if self._cache_scope is not None:
                shared_key = (self._cache_scope, self._seed, name, "pair")
                shared = _SHARED_MATRIX_CACHE.get(shared_key)
                if shared is not None:
                    self._pair_cache[name] = shared
                    return shared
            stream = np.random.default_rng(
                self._seed * 1_000_003 + _PAIR_STREAM_OFFSET + index)
            built = self._specs[name].build_pair(stream)
            self._pair_cache[name] = built
            if shared_key is not None:
                _SHARED_MATRIX_CACHE[shared_key] = built
        return self._pair_cache[name]

    def matrices(self) -> Dict[str, SparseMatrix]:
        """Build all workloads and return them keyed by name."""
        return {name: self.matrix(name) for name in self._order}

    def subset(self, names: Sequence[str]) -> "WorkloadSuite":
        """A suite containing only the named workloads (same seed).

        The subset stays lazy: matrices already built by this suite are
        carried over, everything else is built on first use from the stream
        derived from the workload's position in the *parent* suite (so subset
        matrices are identical to the parent's).
        """
        missing = [n for n in names if n not in self._specs]
        if missing:
            raise KeyError(f"unknown workloads: {missing}")
        subset = WorkloadSuite(
            [self._specs[n] for n in names], seed=self._seed,
            stream_indices={n: self._stream_indices[n] for n in names},
            cache_scope=self._cache_scope,
        )
        for name in names:
            if name in self._cache:
                subset._cache[name] = self._cache[name]
            if name in self._pair_cache:
                subset._pair_cache[name] = self._pair_cache[name]
        return subset


def _linear(name: str, description: str, paper_rows: int, paper_sparsity: float,
            builder: MatrixBuilder) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        category="linear-system",
        description=description,
        paper_rows=paper_rows,
        paper_cols=paper_rows,
        paper_sparsity=paper_sparsity,
        builder=builder,
    )


def _graph(name: str, description: str, paper_rows: int, paper_sparsity: float,
           builder: MatrixBuilder) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        category="graph",
        description=description,
        paper_rows=paper_rows,
        paper_cols=paper_rows,
        paper_sparsity=paper_sparsity,
        builder=builder,
    )


def _default_specs() -> List[WorkloadSpec]:
    """The 22 synthetic stand-ins for Table 2, in the paper's order."""

    def banded(n: int, bw: int, fill: float, off: int, name: str) -> MatrixBuilder:
        return lambda rng: generators.banded_matrix(
            n, bandwidth=bw, band_fill=fill, off_band_nnz=off, rng=rng, name=name)

    def blockdiag(n: int, block: int, fill: float, off: int, name: str) -> MatrixBuilder:
        return lambda rng: generators.block_diagonal_matrix(
            n, block_size=block, block_fill=fill, off_block_nnz=off, rng=rng, name=name)

    def powerlaw(n: int, nnz: int, alpha: float, name: str) -> MatrixBuilder:
        return lambda rng: generators.power_law_matrix(n, nnz, alpha=alpha, rng=rng, name=name)

    def uniform(n: int, nnz: int, name: str) -> MatrixBuilder:
        return lambda rng: generators.uniform_random_matrix(n, n, nnz, rng=rng, name=name)

    def road(n: int, name: str) -> MatrixBuilder:
        return lambda rng: generators.road_network_matrix(
            n, extra_edge_fraction=0.05, num_clusters=10, cluster_size=150,
            cluster_fill=0.35, rng=rng, name=name)

    return [
        # ---- Linear-system matrices (top half of Table 2) -----------------
        _linear("rma10", "3D CFD of Charleston harbor; dense FEM band",
                46_835, 0.9989, banded(2_900, 24, 0.85, 6_000, "rma10")),
        _linear("cant", "FEM cantilever; wide dense band",
                62_451, 0.9990, banded(3_900, 30, 0.85, 8_000, "cant")),
        _linear("consph", "FEM concentric spheres; dense band",
                83_334, 0.99913, banded(5_200, 34, 0.85, 10_000, "consph")),
        _linear("shipsec1", "FEM ship section; banded with block structure",
                140_874, 0.99960, banded(6_200, 26, 0.85, 12_000, "shipsec1")),
        _linear("pwtk", "pressurized wind tunnel stiffness matrix",
                217_918, 0.99971, banded(7_200, 25, 0.85, 12_000, "pwtk")),
        _linear("cop20k_A", "accelerator cavity design; irregular band",
                121_192, 0.99982, banded(5_600, 14, 0.60, 18_000, "cop20k_A")),
        _linear("mac_econ_fwd500", "macroeconomic model; thin band + scatter",
                206_500, 0.99997, banded(6_600, 4, 0.55, 14_000, "mac_econ_fwd500")),
        _linear("mc2depi", "2D Markov-chain epidemiology model; tridiagonal-like",
                525_825, 0.999992, banded(8_200, 2, 0.95, 2_000, "mc2depi")),
        _linear("pdb1HYS", "protein structure; dense diagonal blocks",
                36_417, 0.9967, blockdiag(2_300, 44, 0.55, 5_000, "pdb1HYS")),
        # ---- Graph / data-analytics matrices (bottom half of Table 2) -----
        _graph("sx-mathoverflow", "Q&A interaction graph; power-law hubs",
               24_818, 0.9996, powerlaw(2_400, 26_000, 1.8, "sx-mathoverflow")),
        _graph("email-Enron", "email communication graph; power-law hubs",
               36_692, 0.99973, powerlaw(2_800, 30_000, 1.7, "email-Enron")),
        _graph("cage12", "DNA electrophoresis; near-uniform banded graph",
               130_228, 0.99988, banded(4_200, 8, 0.85, 36_000, "cage12")),
        _graph("soc-Epinions1", "trust network; heavy-tailed degrees",
               75_888, 0.99991, powerlaw(3_800, 28_000, 1.7, "soc-Epinions1")),
        _graph("soc-sign-epinions", "signed trust network; heavy-tailed degrees",
               131_828, 0.99995, powerlaw(4_600, 31_000, 1.7, "soc-sign-epinions")),
        _graph("p2p-Gnutella31", "peer-to-peer overlay; near-uniform sparse",
               62_586, 0.99996, uniform(3_200, 8_000, "p2p-Gnutella31")),
        _graph("sx-askubuntu", "Q&A interaction graph; power-law hubs",
               159_316, 0.99997, powerlaw(5_000, 32_000, 1.8, "sx-askubuntu")),
        _graph("amazon0312", "co-purchasing network; moderately skewed",
               400_727, 0.99998, powerlaw(8_000, 68_000, 1.3, "amazon0312")),
        _graph("patents_main", "patent citations; near-uniform sparse",
               240_547, 0.99999, uniform(7_600, 18_000, "patents_main")),
        _graph("email-EuAll", "email graph; extreme hubs, very sparse rows",
               265_214, 0.999994, powerlaw(8_400, 26_000, 2.0, "email-EuAll")),
        _graph("web-Google", "web graph; near-uniform at tile granularity",
               916_428, 0.9999958, uniform(10_500, 60_000, "web-Google")),
        _graph("webbase-1M", "web crawl; extremely skewed hub structure",
               1_000_005, 0.9999968, powerlaw(11_000, 46_000, 2.1, "webbase-1M")),
        _graph("roadNet-CA", "California road network; planar grid + dense cities",
               1_971_281, 0.9999986, road(14_000, "roadNet-CA")),
    ]


def default_suite(seed: int = 2023) -> WorkloadSuite:
    """The full 22-workload synthetic suite mirroring Table 2."""
    return WorkloadSuite(_default_specs(), seed=seed, cache_scope="table2")


def corpus_suite(paths: Sequence, *, seed: int = 2023) -> WorkloadSuite:
    """A suite of real matrices loaded from MatrixMarket files.

    Each path (``.mtx`` or ``.mtx.gz``) becomes one workload named after its
    filename stem; the matrices are parsed lazily and cached like the
    synthetic suites.  The suite's ``cache_token`` scope is the tuple
    ``("mtx", resolved paths)``, so corpus evaluations flow through the
    parallel scheduler exactly like the canonical suites — workers re-read
    the files from the same paths.
    """
    if not paths:
        raise ValueError("corpus_suite needs at least one MatrixMarket path")
    resolved = tuple(str(Path(p).resolve()) for p in paths)
    duplicates = sorted({path for path in resolved if resolved.count(path) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate corpus path(s): {', '.join(duplicates)}; each matrix "
            f"may appear once per suite")
    specs = []
    for path in resolved:
        try:
            specs.append(WorkloadSpec.from_matrix_market(path))
        except (OSError, ValueError) as error:
            raise ValueError(
                f"failed to load corpus matrix {path}: {error}") from error
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"corpus filenames must yield unique workload "
                         f"names, got {names}")
    return WorkloadSuite(specs, seed=seed, cache_scope=("mtx", resolved))


def synth_suite(specs: Sequence, *, seed: int = 2023) -> WorkloadSuite:
    """A suite of synthetic sparsity-model workloads (see :mod:`repro.tensor.synth`).

    ``specs`` mixes :class:`~repro.tensor.synth.SynthSpec` instances and CLI
    strings (``"model:param=value,..."``); each becomes one workload named
    after its model and non-default parameters.  The suite's ``cache_token``
    scope is ``("synth", spec tokens)`` — hashable and picklable — so
    synthetic evaluations flow through the parallel scheduler exactly like
    the canonical suites: workers regenerate the matrices bit-identically
    from ``(model, params, seed)`` via :func:`suite_from_token`.
    """
    from repro.tensor import synth  # synth imports WorkloadSpec from here

    if not specs:
        raise ValueError("synth_suite needs at least one sparsity-model spec")
    resolved = synth.synth_specs(specs)
    names = [spec.workload_name for spec in resolved]
    if len(set(names)) != len(names):
        raise ValueError(
            f"synth specs must be distinct (identical (model, params) pairs "
            f"collapse to one workload), got {names}")
    return WorkloadSuite(
        [spec.workload_spec() for spec in resolved], seed=seed,
        cache_scope=("synth", tuple(spec.token for spec in resolved)))


def suite_from_token(token: tuple) -> "WorkloadSuite":
    """Rebuild a canonical suite (or a subset of one) from its ``cache_token``.

    The token — ``(cache_scope, seed, workload order)`` — is hashable and
    picklable, so it can cross a process boundary where the suite itself (its
    specs hold closures) cannot.  Worker processes of the evaluation scheduler
    use this to reconstruct bit-identical suites from seeds; see
    :mod:`repro.experiments.scheduler`.

    Four scope layouts exist: a scope *string* naming a built-in canonical
    suite (``"table2"``, ``"small"``), the tuple ``("mtx", paths)`` of a
    :func:`corpus_suite` — rebuilt by re-reading the MatrixMarket files at
    the recorded absolute paths — the tuple ``("synth", spec tokens)`` of
    a :func:`synth_suite`, rebuilt by regenerating every matrix from its
    ``(model, params, seed)`` identity, and the tuple ``("corpus",
    matrix-ids, manifest)`` of a
    :func:`~repro.tensor.corpus.corpus_workload_suite`, rebuilt by resolving
    the recorded dataset IDs through the corpus cache (whose root workers
    find via ``$REPRO_CORPUS_CACHE``).

    Raises ``KeyError`` for tokens whose scope is not a canonical suite or
    whose order names unknown workloads.
    """
    scope, seed, order = token
    if isinstance(scope, tuple) and len(scope) == 3 and scope[0] == "corpus":
        from repro.tensor import corpus

        suite = corpus.corpus_workload_suite(
            list(scope[1]), manifest=scope[2], seed=int(seed))
    elif isinstance(scope, tuple) and len(scope) == 2 and scope[0] == "mtx":
        suite = corpus_suite(scope[1], seed=int(seed))
    elif isinstance(scope, tuple) and len(scope) == 2 and scope[0] == "synth":
        from repro.tensor import synth

        suite = synth_suite(
            [synth.spec_from_token(entry) for entry in scope[1]],
            seed=int(seed))
    else:
        try:
            builder = _CANONICAL_SUITE_BUILDERS[scope]
        except (KeyError, TypeError):
            raise KeyError(
                f"unknown canonical suite scope {scope!r}; "
                f"known: {sorted(_CANONICAL_SUITE_BUILDERS)}") from None
        suite = builder(int(seed))
    if list(order) != suite.names:
        suite = suite.subset(list(order))
    return suite


def small_suite(seed: int = 2023) -> WorkloadSuite:
    """A three-workload suite (one per structure class) for tests and demos."""
    small = [
        WorkloadSpec(
            name="tiny-fem",
            category="linear-system",
            description="small FEM band (test-scale stand-in for rma10)",
            paper_rows=46_835, paper_cols=46_835, paper_sparsity=0.9989,
            builder=lambda rng: generators.banded_matrix(
                600, bandwidth=12, band_fill=0.8, off_band_nnz=1_200, rng=rng, name="tiny-fem"),
        ),
        WorkloadSpec(
            name="tiny-social",
            category="graph",
            description="small power-law graph (test-scale stand-in for soc-Epinions1)",
            paper_rows=75_888, paper_cols=75_888, paper_sparsity=0.99991,
            builder=lambda rng: generators.power_law_matrix(
                700, 6_000, alpha=1.7, rng=rng, name="tiny-social"),
        ),
        WorkloadSpec(
            name="tiny-road",
            category="graph",
            description="small road network (test-scale stand-in for roadNet-CA)",
            paper_rows=1_971_281, paper_cols=1_971_281, paper_sparsity=0.9999986,
            builder=lambda rng: generators.road_network_matrix(
                900, num_clusters=6, cluster_size=24, cluster_fill=0.3, rng=rng,
                name="tiny-road"),
        ),
    ]
    return WorkloadSuite(small, seed=seed, cache_scope="small")


#: ``cache_scope`` → builder, used by :func:`suite_from_token` to reconstruct
#: canonical suites in scheduler worker processes.
_CANONICAL_SUITE_BUILDERS: Dict[str, Callable[[int], WorkloadSuite]] = {
    "table2": default_suite,
    "small": small_suite,
}
