"""The pluggable kernel family: SpMSpM, SpMM, SpMV and SDDMM workloads.

The paper evaluates a single kernel — the Gram SpMSpM ``A × Aᵀ`` — but the
overbooking/Tailors traffic model only needs a *stationary* operand (tiled in
row blocks, possibly overbooking its buffer) and a *streaming* operand (scanned
once per stationary tile).  This module generalizes the workload layer into a
small kernel family behind one uniform interface:

* **SpMSpM** — ``Z[m,n] = A[m,k] * B[k,n]`` with two distinct sparse operands
  (:class:`~repro.tensor.einsum.MatmulWorkload`; the Gram case ``B = Aᵀ`` is
  its :meth:`~repro.tensor.einsum.MatmulWorkload.gram` constructor).
* **SpMM** — sparse × dense: ``A`` sparse, ``B`` a dense ``k × f`` factor
  (:class:`SpMMWorkload`), the shape of graph-neural-network aggregation.
* **SpMV** — sparse matrix × dense vector (:class:`SpMVWorkload`), the
  iterative-solver / PageRank primitive.
* **SDDMM** — sampled dense-dense matmul ``Z = S ⊙ (D₁ @ D₂)``
  (:class:`SDDMMWorkload`), the attention / factorization primitive whose
  output pattern is the sparse sampler ``S``.

Every workload exposes the same surface the model layer consumes:

``kernel``
    Kernel-family name (``"spmspm"``, ``"spmm"``, ``"spmv"``, ``"sddmm"``).
``einsum``
    The :class:`~repro.tensor.einsum.EinsumSpec` it instantiates.
``stationary_operand`` / ``streaming_operand``
    The two tiled operands of the stationary/streaming dataflow.  Dense
    operands are represented as fully-dense :class:`SparseMatrix` instances so
    the per-tile occupancy machinery applies unchanged (a dense tile's
    occupancy is simply its area).
``operation_counts()``
    Exact effectual multiplies, *symbolic* output occupancy (no product is
    materialized) and the dense-engine work, as :class:`OperationCounts`.
``reference_dense()``
    A dense NumPy reference result used to validate the counts and semantics.

:data:`KERNELS` is the registry the suite/model/experiment layers use to
resolve kernels by name; :func:`build_kernel_workload` is the one constructor
the pipeline calls.

Public surface
--------------
:func:`kernel_names` / :func:`kernel_spec` (registry lookup; ``kernel_spec``
is the fail-fast validator every layer calls on its ``kernel`` argument),
:func:`build_kernel_workload` (suite + name + kernel → workload object), and
the workload classes themselves (:class:`SpMMWorkload`,
:class:`SpMVWorkload`, :class:`SDDMMWorkload`, plus
:class:`~repro.tensor.einsum.MatmulWorkload` for the SpMSpM pair).  The
kernel *name* is part of the evaluation identity — it appears in report memo
keys, scheduler requests, and the persistent report store's content
addresses (see ``docs/ARCHITECTURE.md``), so renaming a kernel invalidates
its cached evaluations by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.tensor.einsum import (
    EinsumSpec,
    MatmulWorkload,
    OperationCounts,
)
from repro.tensor.sparse import SparseMatrix

#: Default inner rank of the dense factors of SpMM / SDDMM workloads.
DEFAULT_FEATURE_DIM = 32

#: The einsums of the new kernels (parsed once; ``spmv``/``sddmm`` are
#: deliberately *not* plain matmuls and are exercised by the EinsumSpec tests).
SPMM_EINSUM = EinsumSpec.parse("Z[m,f] = A[m,k] * B[k,f]")
SPMV_EINSUM = EinsumSpec.parse("z[m] = A[m,k] * x[k]")
SDDMM_EINSUM = EinsumSpec.parse("Z[m,n] = S[m,n] * P[m,n]")


@runtime_checkable
class KernelWorkload(Protocol):
    """Structural type every kernel workload satisfies (see module docstring)."""

    name: str

    @property
    def kernel(self) -> str: ...

    @property
    def einsum(self) -> EinsumSpec: ...

    @property
    def stationary_operand(self) -> SparseMatrix: ...

    @property
    def streaming_operand(self) -> SparseMatrix: ...

    def operation_counts(self) -> OperationCounts: ...

    def reference_dense(self) -> np.ndarray: ...


def dense_operand(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """A deterministic dense factor with no zero entries.

    Values are drawn uniformly from ``[0.5, 1.5)`` so that a "dense" operand
    really is fully occupied once wrapped in a :class:`SparseMatrix` (zeros
    would be eliminated) and dot products of positive values cannot cancel,
    keeping the symbolic output-occupancy counts exact.
    """
    return rng.uniform(0.5, 1.5, size=(rows, cols))


def _nonzero_row_count(matrix: SparseMatrix) -> int:
    """Rows of ``matrix`` holding at least one nonzero (symbolic, O(rows))."""
    return int(np.count_nonzero(matrix.row_occupancies()))


class SpMMWorkload:
    """Sparse × dense: ``Z[m,f] = A[m,k] * B[k,f]`` with a dense factor ``B``.

    Operation counting is exact and symbolic: every stored nonzero of ``A``
    meets every one of the ``f`` columns of ``B`` exactly once, and an output
    row is nonzero iff the corresponding row of ``A`` is (positive dense
    values cannot cancel).
    """

    kernel = "spmm"

    def __init__(self, a: SparseMatrix, b_dense: np.ndarray,
                 name: str | None = None):
        b_dense = np.asarray(b_dense, dtype=np.float64)
        if b_dense.ndim != 2:
            raise ValueError(f"B must be a 2-D dense factor, got shape "
                             f"{b_dense.shape}")
        if a.num_cols != b_dense.shape[0]:
            raise ValueError(
                f"inner dimensions do not match: {a.num_cols} vs "
                f"{b_dense.shape[0]}")
        self.a = a
        self.b_dense = b_dense
        self.name = name or f"{a.name} x dense[{b_dense.shape[1]}]"
        self._streaming: Optional[SparseMatrix] = None

    @property
    def einsum(self) -> EinsumSpec:
        return SPMM_EINSUM

    @property
    def feature_dim(self) -> int:
        return int(self.b_dense.shape[1])

    @property
    def stationary_operand(self) -> SparseMatrix:
        return self.a

    @property
    def streaming_operand(self) -> SparseMatrix:
        if self._streaming is None:
            self._streaming = SparseMatrix.from_dense(
                self.b_dense, name=f"{self.name}.B")
        return self._streaming

    def operation_counts(self) -> OperationCounts:
        f = self.feature_dim
        return OperationCounts(
            effectual_multiplies=self.a.nnz * f,
            output_nonzeros=_nonzero_row_count(self.a) * f,
            dense_multiplies=self.a.num_rows * self.a.num_cols * f,
        )

    def reference_dense(self) -> np.ndarray:
        return self.a.to_dense() @ self.b_dense


class SpMVWorkload:
    """Sparse matrix × dense vector: ``z[m] = A[m,k] * x[k]``.

    The degenerate SpMM (``f = 1``): one effectual multiply per stored nonzero
    of ``A``, one output element per nonzero row.
    """

    kernel = "spmv"

    def __init__(self, a: SparseMatrix, x: np.ndarray, name: str | None = None):
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        if a.num_cols != x.shape[0]:
            raise ValueError(
                f"inner dimensions do not match: {a.num_cols} vs {x.shape[0]}")
        self.a = a
        self.x = x
        self.name = name or f"{a.name} x vector"
        self._streaming: Optional[SparseMatrix] = None

    @property
    def einsum(self) -> EinsumSpec:
        return SPMV_EINSUM

    @property
    def stationary_operand(self) -> SparseMatrix:
        return self.a

    @property
    def streaming_operand(self) -> SparseMatrix:
        if self._streaming is None:
            self._streaming = SparseMatrix.from_dense(
                self.x.reshape(-1, 1), name=f"{self.name}.x")
        return self._streaming

    def operation_counts(self) -> OperationCounts:
        return OperationCounts(
            effectual_multiplies=self.a.nnz,
            output_nonzeros=_nonzero_row_count(self.a),
            dense_multiplies=self.a.num_rows * self.a.num_cols,
        )

    def reference_dense(self) -> np.ndarray:
        return self.a.to_dense() @ self.x


class SDDMMWorkload:
    """Sampled dense-dense matmul: ``Z = S ⊙ (D₁ @ D₂)``.

    ``S`` (sparse, ``m × n``) samples the dense product of ``D₁`` (``m × f``)
    and ``D₂`` (``f × n``): every stored nonzero of ``S`` requires one
    ``f``-long dot product plus the sampling scale, so the effectual work is
    ``nnz(S) · (f + 1)`` multiplies and the output pattern is exactly ``S``'s.
    For the traffic model the sampler ``S`` is the stationary (tiled) operand
    and the dense factor ``D₂`` streams; ``D₁`` rows ride along with their
    ``S`` row tiles.
    """

    kernel = "sddmm"

    def __init__(self, s: SparseMatrix, d1: np.ndarray, d2: np.ndarray,
                 name: str | None = None):
        d1 = np.asarray(d1, dtype=np.float64)
        d2 = np.asarray(d2, dtype=np.float64)
        if d1.ndim != 2 or d2.ndim != 2:
            raise ValueError("D1 and D2 must be 2-D dense factors")
        if d1.shape[1] != d2.shape[0]:
            raise ValueError(
                f"inner dimensions do not match: {d1.shape[1]} vs {d2.shape[0]}")
        if (s.num_rows, s.num_cols) != (d1.shape[0], d2.shape[1]):
            raise ValueError(
                f"sampler shape {s.csr.shape} does not match dense product "
                f"shape {(d1.shape[0], d2.shape[1])}")
        self.s = s
        self.d1 = d1
        self.d2 = d2
        self.name = name or f"{s.name} sddmm[{d1.shape[1]}]"
        self._streaming: Optional[SparseMatrix] = None

    @property
    def einsum(self) -> EinsumSpec:
        return SDDMM_EINSUM

    @property
    def feature_dim(self) -> int:
        return int(self.d1.shape[1])

    @property
    def stationary_operand(self) -> SparseMatrix:
        return self.s

    @property
    def streaming_operand(self) -> SparseMatrix:
        if self._streaming is None:
            self._streaming = SparseMatrix.from_dense(
                self.d2, name=f"{self.name}.D2")
        return self._streaming

    def operation_counts(self) -> OperationCounts:
        f = self.feature_dim
        m, n = self.s.num_rows, self.s.num_cols
        return OperationCounts(
            effectual_multiplies=self.s.nnz * (f + 1),
            output_nonzeros=self.s.nnz,
            dense_multiplies=m * n * f + m * n,
        )

    def reference_dense(self) -> np.ndarray:
        return self.s.to_dense() * (self.d1 @ self.d2)


# --------------------------------------------------------------------- #
# Kernel registry
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class KernelSpec:
    """Registry entry describing one kernel of the family.

    Attributes
    ----------
    name:
        Kernel name used across the pipeline (CLI ``--kernel``, memo keys,
        scheduler requests, sweep grids).
    einsum:
        The einsum expression the kernel instantiates.
    title:
        One-line description for reports and ``python -m repro list``.
    needs_paired_operand:
        Whether the kernel consumes a second *sparse* operand (general
        SpMSpM); the suite derives it deterministically when the workload
        spec carries no explicit ``b_builder``.
    needs_dense_operand:
        Whether the kernel consumes deterministic dense factors (SpMM / SpMV
        / SDDMM) and therefore a random stream.
    stream_salt:
        Stable per-kernel salt mixed into the dense-operand random stream so
        different kernels on the same workload draw independent factors.
        (A literal constant, not ``hash(name)`` — ``hash`` of strings is
        process-randomized and the streams must match across scheduler
        workers.)
    """

    name: str
    einsum: str
    title: str
    needs_paired_operand: bool = False
    needs_dense_operand: bool = False
    stream_salt: int = 0


#: The kernel family, keyed by name.  ``"gram"`` is the paper's kernel; the
#: rest are the scenario extensions this refactor unlocks.
KERNELS: Dict[str, KernelSpec] = {
    spec.name: spec for spec in (
        KernelSpec(
            name="gram",
            einsum="Z[m,n] = A[m,k] * A^T[k,n]",
            title="Gram SpMSpM A x A^T (the paper's kernel)",
        ),
        KernelSpec(
            name="spmspm",
            einsum="Z[m,n] = A[m,k] * B[k,n]",
            title="general SpMSpM with two distinct sparse operands",
            needs_paired_operand=True,
        ),
        KernelSpec(
            name="spmm",
            einsum="Z[m,f] = A[m,k] * B[k,f]",
            title="SpMM: sparse x dense feature factor",
            needs_dense_operand=True,
            stream_salt=101,
        ),
        KernelSpec(
            name="spmv",
            einsum="z[m] = A[m,k] * x[k]",
            title="SpMV: sparse matrix x dense vector",
            needs_dense_operand=True,
            stream_salt=211,
        ),
        KernelSpec(
            name="sddmm",
            einsum="Z[m,n] = S[m,n] * (D1 @ D2)[m,n]",
            title="SDDMM: dense product sampled by the sparse pattern",
            needs_dense_operand=True,
            stream_salt=307,
        ),
    )
}


def kernel_names() -> Tuple[str, ...]:
    """The registered kernel names, Gram first."""
    return tuple(KERNELS)


def kernel_spec(name: str) -> KernelSpec:
    """The :class:`KernelSpec` registered as ``name`` (KeyError with hint)."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; "
                       f"known: {list(KERNELS)}") from None


def build_kernel_workload(kernel: str, matrix: SparseMatrix, *,
                          name: str | None = None,
                          paired_matrix: SparseMatrix | None = None,
                          rng: np.random.Generator | None = None,
                          feature_dim: int = DEFAULT_FEATURE_DIM):
    """Instantiate the ``kernel`` workload for ``matrix``.

    Parameters
    ----------
    kernel:
        A name from :data:`KERNELS`.
    matrix:
        The primary sparse operand (``A``, or the sampler ``S`` for SDDMM).
    name:
        Workload name for reports (defaults to the kernel's own naming).
    paired_matrix:
        Second sparse operand, required by ``"spmspm"``.
    rng:
        Generator for the deterministic dense factors, required by
        ``"spmm"`` / ``"spmv"`` / ``"sddmm"``.
    feature_dim:
        Inner rank ``f`` of the dense factors of SpMM and SDDMM.
    """
    spec = kernel_spec(kernel)
    if spec.needs_paired_operand and paired_matrix is None:
        raise ValueError(f"kernel {kernel!r} requires a paired sparse operand")
    if spec.needs_dense_operand and rng is None:
        raise ValueError(f"kernel {kernel!r} requires an rng for its dense "
                         "factors")
    if kernel == "gram":
        return MatmulWorkload.gram(matrix, name=name)
    if kernel == "spmspm":
        return MatmulWorkload(a=matrix, b=paired_matrix,
                              name=name or f"{matrix.name} x B")
    if kernel == "spmm":
        factor = dense_operand(rng, matrix.num_cols, feature_dim)
        return SpMMWorkload(matrix, factor, name=name)
    if kernel == "spmv":
        vector = dense_operand(rng, matrix.num_cols, 1)
        return SpMVWorkload(matrix, vector, name=name)
    if kernel == "sddmm":
        d1 = dense_operand(rng, matrix.num_rows, feature_dim)
        d2 = dense_operand(rng, matrix.num_cols, feature_dim).T
        return SDDMMWorkload(matrix, d1, d2, name=name)
    raise KeyError(f"unknown kernel {kernel!r}")  # pragma: no cover
