"""Sparse tensor substrate.

This subpackage provides everything the rest of the library needs to talk
about sparse tensors:

* :mod:`repro.tensor.coords` — shapes, points, and range arithmetic.
* :mod:`repro.tensor.sparse` — the :class:`SparseMatrix` workhorse (COO/CSR
  backed, with fast per-tile occupancy counting).
* :mod:`repro.tensor.formats` — the Compressed Sparse Fiber (CSF) fiber-tree
  representation traversed by the ExTensor address generators.
* :mod:`repro.tensor.einsum` — Einsum workload descriptions and operation
  counting for SpMSpM.
* :mod:`repro.tensor.kernels` — the pluggable kernel family (general SpMSpM,
  SpMM, SpMV, SDDMM) behind the workload layer.
* :mod:`repro.tensor.generators` — synthetic sparse matrix generators that
  mimic the SuiteSparse matrix classes used in the paper's evaluation.
* :mod:`repro.tensor.synth` — the seeded sparsity-model registry
  (:class:`SynthSpec`) that turns sparsity structure into a first-class,
  exactly reproducible experiment axis.
* :mod:`repro.tensor.suite` — the 22-workload synthetic evaluation suite
  mirroring Table 2 of the paper, plus MatrixMarket corpus suites.
* :mod:`repro.tensor.corpus` — the real-world corpus manager: DLMC +
  SuiteSparse dataset descriptors, an offline-first checksummed matrix
  cache with injectable transports, and corpus-addressed workload suites.
* :mod:`repro.tensor.io` — MatrixMarket-style persistence.
"""

from repro.tensor.coords import Shape, Point, Range
from repro.tensor.sparse import SparseMatrix
from repro.tensor.formats import CompressedSparseFiber, Fiber
from repro.tensor.einsum import EinsumSpec, MatmulWorkload, count_spmspm_operations
from repro.tensor.kernels import (
    KERNELS,
    SDDMMWorkload,
    SpMMWorkload,
    SpMVWorkload,
    build_kernel_workload,
    kernel_names,
)
from repro.tensor.generators import (
    banded_matrix,
    block_diagonal_matrix,
    density_gradient_matrix,
    erdos_renyi_matrix,
    power_law_matrix,
    road_network_matrix,
    uniform_random_matrix,
)
from repro.tensor.suite import (
    WorkloadSpec,
    WorkloadSuite,
    corpus_suite,
    default_suite,
    synth_suite,
)
from repro.tensor.synth import SynthSpec, model_names, parse_synth_spec
from repro.tensor.corpus import (
    CorpusCache,
    CorpusError,
    InMemoryTransport,
    MatrixDescriptor,
    builtin_catalog,
    corpus_workload_suite,
    load_manifest,
    parse_corpus_ids,
)

__all__ = [
    "Shape",
    "Point",
    "Range",
    "SparseMatrix",
    "CompressedSparseFiber",
    "Fiber",
    "EinsumSpec",
    "MatmulWorkload",
    "count_spmspm_operations",
    "KERNELS",
    "SDDMMWorkload",
    "SpMMWorkload",
    "SpMVWorkload",
    "build_kernel_workload",
    "kernel_names",
    "banded_matrix",
    "block_diagonal_matrix",
    "density_gradient_matrix",
    "erdos_renyi_matrix",
    "power_law_matrix",
    "road_network_matrix",
    "uniform_random_matrix",
    "WorkloadSpec",
    "WorkloadSuite",
    "corpus_suite",
    "default_suite",
    "synth_suite",
    "SynthSpec",
    "model_names",
    "parse_synth_spec",
    "CorpusCache",
    "CorpusError",
    "InMemoryTransport",
    "MatrixDescriptor",
    "builtin_catalog",
    "corpus_workload_suite",
    "load_manifest",
    "parse_corpus_ids",
]
