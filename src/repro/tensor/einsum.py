"""Einsum workload descriptions and SpMSpM operation counting.

The paper expresses its kernels in Einstein-summation notation, e.g.
``Z[m,n] = A[m,k] * B[k,n]`` (Eq. 1), and evaluates ``A × Aᵀ`` on every
workload.  This module provides:

* :class:`EinsumSpec` — a tiny parser/validator for two-operand einsums, used
  by the workload descriptors and the analytical model to know which
  dimension is shared (contracted) and which are kept.
* :class:`MatmulWorkload` — a concrete SpMSpM problem (two sparse operands).
* :func:`count_spmspm_operations` — exact counting of effectual multiplies
  and output nonzeros, the compute-side inputs to the cycle/energy model.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.tensor.sparse import SparseMatrix

_EINSUM_PATTERN = re.compile(
    r"^\s*(?P<out>\w+)\[(?P<out_idx>[^\]]+)\]\s*=\s*"
    r"(?P<a>\w+)\[(?P<a_idx>[^\]]+)\]\s*\*\s*"
    r"(?P<b>\w+)\[(?P<b_idx>[^\]]+)\]\s*$"
)


def _split_indices(text: str) -> Tuple[str, ...]:
    parts = tuple(p.strip() for p in text.split(","))
    if any(not p for p in parts):
        raise ValueError(f"malformed index list: {text!r}")
    return parts


@dataclass(frozen=True)
class EinsumSpec:
    """A parsed two-operand Einsum of the form ``Z[m,n] = A[m,k] * B[k,n]``.

    Attributes
    ----------
    output, operand_a, operand_b:
        Tensor names.
    output_indices, a_indices, b_indices:
        Index tuples for each tensor.
    """

    output: str
    output_indices: Tuple[str, ...]
    operand_a: str
    a_indices: Tuple[str, ...]
    operand_b: str
    b_indices: Tuple[str, ...]

    @classmethod
    def parse(cls, expression: str) -> "EinsumSpec":
        """Parse an einsum expression string.

        >>> spec = EinsumSpec.parse("Z[m,n] = A[m,k] * B[k,n]")
        >>> spec.contracted_indices
        ('k',)
        """
        match = _EINSUM_PATTERN.match(expression)
        if match is None:
            raise ValueError(
                "expected an expression like 'Z[m,n] = A[m,k] * B[k,n]', "
                f"got {expression!r}"
            )
        return cls(
            output=match["out"],
            output_indices=_split_indices(match["out_idx"]),
            operand_a=match["a"],
            a_indices=_split_indices(match["a_idx"]),
            operand_b=match["b"],
            b_indices=_split_indices(match["b_idx"]),
        )

    @property
    def contracted_indices(self) -> Tuple[str, ...]:
        """Indices that appear in both operands but not in the output."""
        output = set(self.output_indices)
        shared = [i for i in self.a_indices if i in self.b_indices and i not in output]
        return tuple(shared)

    @property
    def is_matmul(self) -> bool:
        """True when the spec is a plain matrix multiplication."""
        return (
            len(self.a_indices) == 2
            and len(self.b_indices) == 2
            and len(self.output_indices) == 2
            and len(self.contracted_indices) == 1
        )

    def validate_shapes(self, shapes: Dict[str, Tuple[int, ...]]) -> Dict[str, int]:
        """Check operand shapes against the index structure.

        ``shapes`` maps tensor name to its dimension tuple.  Returns the
        resolved extent of every index, raising ``ValueError`` on mismatch.
        """
        extents: Dict[str, int] = {}
        for name, indices in (
            (self.operand_a, self.a_indices),
            (self.operand_b, self.b_indices),
            (self.output, self.output_indices),
        ):
            if name not in shapes:
                continue
            dims = shapes[name]
            if len(dims) != len(indices):
                raise ValueError(
                    f"tensor {name} has {len(dims)} dimensions but the einsum names "
                    f"{len(indices)} indices"
                )
            for index, extent in zip(indices, dims):
                if index in extents and extents[index] != extent:
                    raise ValueError(
                        f"index {index!r} has conflicting extents "
                        f"{extents[index]} and {extent}"
                    )
                extents[index] = int(extent)
        return extents


#: The matrix-multiplication einsum from Eq. 1 of the paper.
MATMUL_EINSUM = EinsumSpec.parse("Z[m,n] = A[m,k] * B[k,n]")


@dataclass(frozen=True)
class OperationCounts:
    """Exact work of an SpMSpM problem.

    Attributes
    ----------
    effectual_multiplies:
        Number of scalar multiplications between two nonzeros — the work an
        ideal sparse accelerator performs.
    output_nonzeros:
        Number of nonzeros in the output tensor.
    dense_multiplies:
        Work a dense engine would perform (``M * K * N``); the ratio to
        ``effectual_multiplies`` is the compute saving from sparsity.
    """

    effectual_multiplies: int
    output_nonzeros: int
    dense_multiplies: int

    @property
    def compute_saving(self) -> float:
        """``dense_multiplies / effectual_multiplies`` (∞-safe)."""
        if self.effectual_multiplies == 0:
            return float("inf")
        return self.dense_multiplies / self.effectual_multiplies


def _output_pattern_nnz(a: SparseMatrix, b: SparseMatrix) -> int:
    """Stored nonzeros of ``A @ B`` without computing the product's values.

    SciPy's SpGEMM is two-phase (SMMP): a symbolic pass sizes the output
    pattern, then a numeric pass fills it.  The stored ``nnz`` of the product
    equals the symbolic pattern size (SciPy does not prune entries that cancel
    numerically), so running only the symbolic pass yields the identical count
    at a fraction of the cost.  Falls back to the full (memoized) multiply if
    the SciPy internal is unavailable.
    """
    try:
        from scipy.sparse import _sparsetools
        csr_matmat_maxnnz = _sparsetools.csr_matmat_maxnnz
        from scipy.sparse import _sputils
        get_index_dtype = _sputils.get_index_dtype
    except (ImportError, AttributeError):
        # Raw SciPy product: its stored nnz is the pattern size (SciPy keeps
        # entries that cancel numerically), matching the fast path exactly.
        return int((a.csr @ b.csr).nnz)
    left = a.csr
    right = b.csr
    m, _ = left.shape
    n = right.shape[1]
    idx_dtype = get_index_dtype(
        (left.indptr, left.indices, right.indptr, right.indices))
    return int(csr_matmat_maxnnz(
        m, n,
        left.indptr.astype(idx_dtype, copy=False),
        left.indices.astype(idx_dtype, copy=False),
        right.indptr.astype(idx_dtype, copy=False),
        right.indices.astype(idx_dtype, copy=False),
    ))


def count_spmspm_operations(a: SparseMatrix, b: SparseMatrix) -> OperationCounts:
    """Count effectual multiplies and output nonzeros of ``A @ B``.

    The number of effectual multiplications of a row-times-column formulation
    equals ``sum_k nnz(A[:, k]) * nnz(B[k, :])`` — each nonzero in column ``k``
    of ``A`` meets each nonzero in row ``k`` of ``B`` exactly once.
    """
    if a.num_cols != b.num_rows:
        raise ValueError(
            f"inner dimensions do not match: {a.num_cols} vs {b.num_rows}"
        )
    key = ("spmspm_operations", b.uid)
    cached = a.memo.get(key)
    if cached is not None:
        return cached
    a_col_occ = a.col_occupancies()
    b_row_occ = b.row_occupancies()
    effectual = int(np.dot(a_col_occ.astype(np.float64), b_row_occ.astype(np.float64)))
    output_nnz = _output_pattern_nnz(a, b)
    dense = a.num_rows * a.num_cols * b.num_cols
    counts = OperationCounts(
        effectual_multiplies=effectual,
        output_nonzeros=output_nnz,
        dense_multiplies=dense,
    )
    a.memo[key] = counts
    return counts


@dataclass(frozen=True)
class MatmulWorkload:
    """A concrete SpMSpM workload: ``Z = A @ B`` with both operands sparse.

    The paper evaluates ``A × Aᵀ``; :meth:`gram` builds that case.  As part of
    the kernel family (see :mod:`repro.tensor.kernels`) the workload exposes
    the uniform ``kernel`` / ``stationary_operand`` / ``streaming_operand`` /
    ``reference_dense`` surface the model layer consumes; ``A`` is the tiled
    stationary operand and ``B`` streams.
    """

    a: SparseMatrix
    b: SparseMatrix
    name: str = "matmul"

    @property
    def kernel(self) -> str:
        """Kernel-family name: ``"gram"`` when ``B`` is ``A``'s transpose.

        Gram workloads share ``A``'s cached transpose instance (see
        :meth:`gram`), so the identity check is exact and free.
        """
        return "gram" if self.b is self.a.transpose() else "spmspm"

    def __post_init__(self) -> None:
        if self.a.num_cols != self.b.num_rows:
            raise ValueError(
                "operand shapes are incompatible: "
                f"A is {self.a.csr.shape}, B is {self.b.csr.shape}"
            )

    @classmethod
    def gram(cls, a: SparseMatrix, name: str | None = None) -> "MatmulWorkload":
        """Build the ``A × Aᵀ`` workload used throughout the evaluation."""
        return cls(a=a, b=a.transpose(), name=name or f"{a.name} x {a.name}^T")

    @property
    def einsum(self) -> EinsumSpec:
        """The einsum this workload instantiates."""
        return MATMUL_EINSUM

    @property
    def m(self) -> int:
        return self.a.num_rows

    @property
    def k(self) -> int:
        return self.a.num_cols

    @property
    def n(self) -> int:
        return self.b.num_cols

    @property
    def stationary_operand(self) -> SparseMatrix:
        """The operand tiled in row blocks by the dataflow (``A``)."""
        return self.a

    @property
    def streaming_operand(self) -> SparseMatrix:
        """The operand streamed once per stationary tile (``B``)."""
        return self.b

    def operation_counts(self) -> OperationCounts:
        """Exact effectual work of the workload."""
        return count_spmspm_operations(self.a, self.b)

    def reference_result(self) -> SparseMatrix:
        """Functional ground truth computed with SciPy."""
        return self.a.matmul(self.b)

    def reference_dense(self) -> np.ndarray:
        """Dense NumPy reference result (kernel-family validation surface)."""
        return self.a.to_dense() @ self.b.to_dense()
