"""Real-world corpus manager: DLMC + SuiteSparse matrices as first-class IDs.

The paper's evaluation is grounded in 22 real SuiteSparse matrices, and the
sparse-kernel literature the kernel family targets (SpMSpM/SpMM/SpMV/SDDMM)
benchmarks against the Deep Learning Matrix Collection (DLMC) of pruned-DNN
weight matrices.  This module turns both corpora into *addressable dataset
identities* instead of loose ``.mtx`` files on someone's disk:

* **Matrix IDs.**  Every matrix is named ``dataset:group/name`` (e.g.
  ``suitesparse:Williams/cant`` or
  ``dlmc:rn50/magnitude_pruning/0.8/bottleneck_projection``) and resolved
  through a :class:`Catalog` of :class:`MatrixDescriptor` entries carrying
  the download URL, an optional pinned SHA-256, the on-disk format
  (``mtx``/``mtx.gz``/``smtx``/``tar.gz`` + archive member) and dimension
  metadata.  Built-in catalogs cover the paper's 22 SuiteSparse matrices and
  a representative DLMC slice; JSON *manifests* (:func:`load_manifest`) add
  or override entries — the offline CI fixture corpus is exactly such a
  manifest.
* **Offline-first transports.**  All network access goes through the
  injectable :class:`Transport` protocol.  :class:`UrllibTransport` (the
  default) performs real HTTP(S) and local ``file://`` fetches;
  :class:`InMemoryTransport` serves bytes from a dict and records every
  request (tests, air-gapped smoke runs).  ``REPRO_CORPUS_OFFLINE=1`` (or
  ``offline=True``) refuses every remote URL while still allowing local
  ``file://`` manifests, and any fetch failure *degrades to the cached copy*
  when one exists.
* **Checksummed atomic cache.**  :class:`CorpusCache` installs each matrix
  under ``<cache>/matrices/<dataset>/<group>/<name>.<ext>`` via
  download → SHA-256 verify → ``os.replace``; a checksum mismatch
  quarantines the bad download and re-fetches once before giving up
  (:class:`ChecksumMismatch`).  A truncated/torn cache file (size disagrees
  with its install receipt) is treated as a *miss*, never served.  Archives
  (SuiteSparse ``.tar.gz``, the DLMC tarball) are cached under
  ``downloads/`` so sibling members share one download.  ``corpus
  fetch``/``verify``/``gc`` on the CLI drive the same code paths.
* **Corpus suite tokens.**  :func:`corpus_workload_suite` builds a lazy
  :class:`~repro.tensor.suite.WorkloadSuite` whose ``cache_token`` scope is
  ``("corpus", matrix-ids, manifest)`` — picklable and rebuildable, so
  scheduler workers, the shared-memory fan-out path, the report store and
  ``sweep_grid(corpus=...)`` address real matrices exactly like the
  synthetic suites.  Workers resolve the cache root from
  ``REPRO_CORPUS_CACHE``, so a pool shares one on-disk cache.

Fault injection (:mod:`repro.utils.faults`) hooks the two interesting
failure sites: ``corpus.fetch`` raises a transient ``OSError`` from the
transport call and ``corpus.corrupt`` truncates a completed download before
verification — CI drills both without a network.

Public surface
--------------
:class:`MatrixDescriptor`, :class:`Catalog`, :func:`builtin_catalog`,
:func:`load_manifest`, :func:`resolve_catalog`, :func:`parse_corpus_ids`,
:class:`Transport`, :class:`UrllibTransport`, :class:`InMemoryTransport`,
:func:`default_transport`, :func:`set_default_transport`,
:class:`CorpusCache`, :func:`read_smtx`, :func:`corpus_workload_suite`,
:class:`CorpusError`, :class:`ChecksumMismatch`, :class:`CorpusFetchWarning`.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import tarfile
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    BinaryIO,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.tensor.io import matrix_market_header, read_matrix_market
from repro.tensor.sparse import SparseMatrix
from repro.utils import faults

#: Environment variable overriding the default cache root.
ENV_CACHE = "REPRO_CORPUS_CACHE"

#: Environment variable forcing offline mode (any non-``file`` fetch fails).
ENV_OFFLINE = "REPRO_CORPUS_OFFLINE"

#: Formats a descriptor may declare.  ``tar.gz`` requires ``member``.
KNOWN_FORMATS = ("mtx", "mtx.gz", "smtx", "tar.gz")

#: The datasets the built-in catalogs cover.
KNOWN_DATASETS = ("dlmc", "suitesparse")


class CorpusError(RuntimeError):
    """A corpus operation failed in a way the caller must handle."""


class ChecksumMismatch(CorpusError):
    """A download repeatedly failed SHA-256 verification."""


class CorpusFetchWarning(UserWarning):
    """A fetch failed but a cached copy (or a re-fetch) saved the run."""


# --------------------------------------------------------------------- #
# Descriptors, catalogs, manifests
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class MatrixDescriptor:
    """One corpus matrix: where it lives, how to verify it, what it is.

    ``sha256`` pins the downloaded *resource* (the ``.mtx``/``.smtx`` file
    itself, or the archive for ``tar.gz`` entries); ``None`` means
    trust-on-first-use — the digest is recorded in the install receipt and
    enforced by ``corpus verify`` from then on.  ``rows``/``cols``/``nnz``
    are metadata for suite specs; when absent they are peeked from the
    installed file's header on first use.
    """

    dataset: str
    group: str
    name: str
    url: str
    sha256: Optional[str] = None
    format: str = "mtx"
    member: Optional[str] = None
    rows: Optional[int] = None
    cols: Optional[int] = None
    nnz: Optional[int] = None

    def __post_init__(self) -> None:
        if self.format not in KNOWN_FORMATS:
            raise CorpusError(
                f"unknown corpus format {self.format!r} for "
                f"{self.dataset}:{self.group}/{self.name}; "
                f"known: {', '.join(KNOWN_FORMATS)}")
        if self.format == "tar.gz" and not self.member:
            raise CorpusError(
                f"archive entry {self.dataset}:{self.group}/{self.name} "
                f"needs a 'member' path inside the tarball")

    @property
    def matrix_id(self) -> str:
        """The canonical ``dataset:group/name`` address."""
        return f"{self.dataset}:{self.group}/{self.name}"

    @property
    def installed_suffix(self) -> str:
        """Extension of the installed per-matrix file."""
        if self.format == "tar.gz":
            member = self.member or ""
            for suffix in (".mtx.gz", ".mtx", ".smtx"):
                if member.endswith(suffix):
                    return suffix
            return ".mtx"
        return "." + self.format

    @property
    def filename(self) -> str:
        return self.name + self.installed_suffix


class Catalog:
    """An ordered ``matrix_id`` → :class:`MatrixDescriptor` mapping."""

    def __init__(self, descriptors: Iterable[MatrixDescriptor] = ()):
        self._entries: Dict[str, MatrixDescriptor] = {}
        for descriptor in descriptors:
            self.add(descriptor)

    def add(self, descriptor: MatrixDescriptor) -> None:
        """Insert (or override) one descriptor."""
        self._entries[descriptor.matrix_id] = descriptor

    def update(self, other: "Catalog") -> None:
        """Overlay ``other``'s entries over this catalog (other wins)."""
        self._entries.update(other._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, matrix_id: str) -> bool:
        return matrix_id in self._entries

    def __iter__(self):
        return iter(self._entries.values())

    @property
    def ids(self) -> List[str]:
        return list(self._entries)

    def get(self, matrix_id: str) -> MatrixDescriptor:
        """The descriptor for ``matrix_id`` (raises :class:`CorpusError`)."""
        try:
            return self._entries[matrix_id]
        except KeyError:
            dataset = matrix_id.partition(":")[0]
            siblings = [known for known in self._entries
                        if known.startswith(dataset + ":")]
            hint = (f"; known {dataset} matrices include "
                    f"{', '.join(siblings[:4])}" if siblings else
                    f"; no {dataset!r} matrices are known — pass a manifest "
                    f"or check the dataset prefix")
            raise CorpusError(
                f"unknown corpus matrix {matrix_id!r}{hint}") from None

    def subset(self, matrix_ids: Sequence[str]) -> List[MatrixDescriptor]:
        """Descriptors for ``matrix_ids``, in the given order."""
        return [self.get(matrix_id) for matrix_id in matrix_ids]


def load_manifest(path: Union[str, Path]) -> Catalog:
    """Load a JSON descriptor manifest into a :class:`Catalog`.

    Layout::

        {"dataset": "suitesparse",          # optional per-file default
         "matrices": [
           {"group": "fixture", "name": "fem-band",
            "url": "fem-band.mtx.gz",        # relative → file:// next to
            "sha256": "...",                 #   the manifest itself
            "format": "mtx.gz",
            "rows": 150, "cols": 150, "nnz": 1803},
           ...]}

    Relative ``url`` values are resolved against the manifest's directory
    into ``file://`` URLs, which is what makes a checked-in fixture corpus
    fully relocatable and offline.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        raise CorpusError(f"cannot read corpus manifest {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise CorpusError(f"corpus manifest {path} is not valid JSON: "
                          f"{error}") from error
    if not isinstance(payload, dict) or "matrices" not in payload:
        raise CorpusError(f"corpus manifest {path} must be an object with a "
                          f"'matrices' list")
    default_dataset = payload.get("dataset")
    catalog = Catalog()
    for index, entry in enumerate(payload["matrices"]):
        try:
            dataset = entry.get("dataset", default_dataset)
            if not dataset:
                raise CorpusError("missing 'dataset' (and no manifest-level "
                                  "default)")
            url = str(entry["url"])
            if "://" not in url:
                url = (path.parent / url).resolve().as_uri()
            catalog.add(MatrixDescriptor(
                dataset=str(dataset),
                group=str(entry["group"]),
                name=str(entry["name"]),
                url=url,
                sha256=entry.get("sha256"),
                format=str(entry.get("format", "mtx")),
                member=entry.get("member"),
                rows=entry.get("rows"),
                cols=entry.get("cols"),
                nnz=entry.get("nnz"),
            ))
        except (KeyError, CorpusError) as error:
            raise CorpusError(f"corpus manifest {path}, matrices[{index}]: "
                              f"{error}") from None
    return catalog


#: SuiteSparse serves one gzipped tarball per matrix, with the MatrixMarket
#: file at ``<name>/<name>.mtx`` inside it.
_SUITESPARSE_URL = "https://suitesparse-collection-website.herokuapp.com/MM"

#: The whole Deep Learning Matrix Collection is one tarball of ``.smtx``
#: files; individual matrices are members of it (the archive is downloaded
#: once and cached, then members are extracted on demand).
_DLMC_URL = "https://storage.googleapis.com/sgk-sc2020/dlmc.tar.gz"

#: SuiteSparse group of every paper matrix (Table 2 order).
_SUITESPARSE_GROUPS = (
    ("Bova", "rma10"), ("Williams", "cant"), ("Williams", "consph"),
    ("DNVS", "shipsec1"), ("Boeing", "pwtk"), ("Williams", "cop20k_A"),
    ("Williams", "mac_econ_fwd500"), ("Williams", "mc2depi"),
    ("Williams", "pdb1HYS"), ("SNAP", "sx-mathoverflow"),
    ("SNAP", "email-Enron"), ("vanHeukelum", "cage12"),
    ("SNAP", "soc-Epinions1"), ("SNAP", "soc-sign-epinions"),
    ("SNAP", "p2p-Gnutella31"), ("SNAP", "sx-askubuntu"),
    ("SNAP", "amazon0312"), ("Pajek", "patents_main"),
    ("SNAP", "email-EuAll"), ("SNAP", "web-Google"),
    ("Williams", "webbase-1M"), ("SNAP", "roadNet-CA"),
)

#: A representative DLMC slice: ResNet-50 and Transformer weights across
#: pruning methods and sparsities (members of the collection tarball).
_DLMC_MEMBERS = tuple(
    f"rn50/{method}/{sparsity}/{layer}"
    for method in ("magnitude_pruning", "random_pruning")
    for sparsity in ("0.5", "0.8", "0.9")
    for layer in ("bottleneck_projection_block_group_projection_block_group1",)
) + tuple(
    f"transformer/{method}/{sparsity}/{layer}"
    for method in ("magnitude_pruning",)
    for sparsity in ("0.5", "0.9")
    for layer in ("body_decoder_layer_0_encdec_attention_multihead_attention_q",)
)


def builtin_catalog() -> Catalog:
    """The built-in DLMC + SuiteSparse catalog.

    SuiteSparse entries cover the paper's 22 matrices; DLMC entries cover a
    representative pruned-DNN slice.  Checksums are trust-on-first-use
    (recorded in install receipts, enforced by ``corpus verify``) because the
    collections do not publish per-file digests; pin them via a manifest if
    your deployment needs stronger guarantees.
    """
    catalog = Catalog()
    for group, name in _SUITESPARSE_GROUPS:
        catalog.add(MatrixDescriptor(
            dataset="suitesparse", group=group, name=name,
            url=f"{_SUITESPARSE_URL}/{group}/{name}.tar.gz",
            format="tar.gz", member=f"{name}/{name}.mtx"))
    for member in _DLMC_MEMBERS:
        group, _, name = member.rpartition("/")
        catalog.add(MatrixDescriptor(
            dataset="dlmc", group=group, name=name,
            url=_DLMC_URL, format="tar.gz",
            member=f"dlmc/{member}.smtx"))
    return catalog


def resolve_catalog(manifest: Union[str, Path, None] = None) -> Catalog:
    """The built-in catalog, overlaid with ``manifest`` when given."""
    catalog = builtin_catalog()
    if manifest is not None:
        catalog.update(load_manifest(manifest))
    return catalog


def parse_corpus_ids(text: str, *, default_dataset: Optional[str] = None,
                     ) -> List[str]:
    """Parse a CLI corpus spec into canonical matrix IDs.

    ``"dlmc:rn50/mp/0.8/conv1,rn50/mp/0.9/conv1,suitesparse:Williams/cant"``
    — comma-separated, and the ``dataset:`` prefix is *sticky*: entries
    without one inherit the most recent prefix (or ``default_dataset``).
    """
    ids: List[str] = []
    dataset = default_dataset
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            dataset, _, rest = part.partition(":")
            dataset = dataset.strip()
            part = rest.strip()
        if not dataset:
            raise CorpusError(
                f"corpus matrix {part!r} has no dataset prefix; write "
                f"dataset:group/name (datasets: {', '.join(KNOWN_DATASETS)})")
        if "/" not in part:
            raise CorpusError(
                f"corpus matrix {dataset}:{part!r} has no group; write "
                f"dataset:group/name")
        ids.append(f"{dataset}:{part}")
    if not ids:
        raise CorpusError(f"empty corpus spec {text!r}")
    return ids


# --------------------------------------------------------------------- #
# Transports
# --------------------------------------------------------------------- #
class Transport(Protocol):
    """Anything that can stream the bytes behind a URL into a sink."""

    def fetch(self, url: str, sink: BinaryIO) -> None:
        """Write the resource at ``url`` into ``sink`` (raise ``OSError``)."""


class UrllibTransport:
    """The real transport: HTTP(S) via :mod:`urllib`, plus ``file://``."""

    def __init__(self, chunk_bytes: int = 1 << 16, timeout: float = 60.0):
        self.chunk_bytes = int(chunk_bytes)
        self.timeout = float(timeout)

    def fetch(self, url: str, sink: BinaryIO) -> None:
        from urllib.error import URLError
        from urllib.request import urlopen

        try:
            with urlopen(url, timeout=self.timeout) as source:  # noqa: S310
                while True:
                    chunk = source.read(self.chunk_bytes)
                    if not chunk:
                        break
                    sink.write(chunk)
        except URLError as error:
            raise OSError(f"fetch of {url} failed: {error}") from error


class InMemoryTransport:
    """A fake transport serving bytes from a mapping (tests, hermetic CI).

    Values may be ``bytes`` or zero-argument callables returning bytes (so a
    test can serve corrupted bytes first and good bytes on the re-fetch).
    Every fetch is appended to :attr:`requests`; unknown URLs raise
    ``OSError`` like a dead network would.
    """

    def __init__(self, resources: Mapping[str, Union[bytes, Callable[[], bytes]]]):
        self.resources = dict(resources)
        self.requests: List[str] = []

    def fetch(self, url: str, sink: BinaryIO) -> None:
        self.requests.append(url)
        if url not in self.resources:
            raise OSError(f"in-memory transport has no resource for {url}")
        payload = self.resources[url]
        if callable(payload):
            payload = payload()
        sink.write(payload)


_default_transport: Optional[Transport] = None
_urllib_singleton: Optional[UrllibTransport] = None


def default_transport() -> Transport:
    """The process-wide transport (:class:`UrllibTransport` unless overridden)."""
    global _urllib_singleton
    if _default_transport is not None:
        return _default_transport
    if _urllib_singleton is None:
        _urllib_singleton = UrllibTransport()
    return _urllib_singleton


def set_default_transport(transport: Optional[Transport]) -> None:
    """Override the process-wide transport (``None`` restores urllib).

    Tests and air-gapped deployments install fakes here; scheduler workers
    inherit the override through ``fork``.
    """
    global _default_transport
    _default_transport = transport


def offline_mode() -> bool:
    """Whether ``REPRO_CORPUS_OFFLINE`` forbids remote fetches."""
    return os.environ.get(ENV_OFFLINE, "").strip() not in ("", "0", "false")


def _url_scheme(url: str) -> str:
    from urllib.parse import urlsplit

    return urlsplit(url).scheme


# --------------------------------------------------------------------- #
# The cache
# --------------------------------------------------------------------- #
#: Subdirectories of a cache root.
MATRICES_DIR = "matrices"
DOWNLOADS_DIR = "downloads"
QUARANTINE_DIR = "quarantine"

#: Install-receipt sidecar suffix.
RECEIPT_SUFFIX = ".meta.json"


@dataclass(frozen=True)
class VerifyOutcome:
    """What :meth:`CorpusCache.verify` found."""

    checked: int
    ok: int
    missing: List[str] = field(default_factory=list)
    corrupt: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class GcOutcome:
    """What :meth:`CorpusCache.gc` reclaimed."""

    removed_downloads: int
    removed_quarantined: int
    reclaimed_bytes: int


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def default_cache_root() -> Path:
    """``$REPRO_CORPUS_CACHE`` or ``~/.cache/repro/corpus``."""
    override = os.environ.get(ENV_CACHE, "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "corpus"


class CorpusCache:
    """Checksummed, atomic, offline-friendly on-disk matrix cache.

    Layout under ``root``::

        matrices/<dataset>/<group>/<name>.<ext>            installed matrices
        matrices/.../<name>.<ext>.meta.json                install receipts
        downloads/<urldigest>-<basename>                   cached archives
        quarantine/                                        failed downloads

    Installs are atomic (unique temp file + ``os.replace`` in the
    destination directory), so concurrent workers racing on one matrix
    converge on identical bytes with no torn intermediate visible.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_cache_root()

    # -- layout -------------------------------------------------------- #
    @property
    def matrices_root(self) -> Path:
        return self.root / MATRICES_DIR

    @property
    def downloads_root(self) -> Path:
        return self.root / DOWNLOADS_DIR

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    def matrix_path(self, descriptor: MatrixDescriptor) -> Path:
        return (self.matrices_root / descriptor.dataset /
                descriptor.group / descriptor.filename)

    def receipt_path(self, descriptor: MatrixDescriptor) -> Path:
        path = self.matrix_path(descriptor)
        return path.with_name(path.name + RECEIPT_SUFFIX)

    # -- queries ------------------------------------------------------- #
    def installed_path(self, descriptor: MatrixDescriptor) -> Optional[Path]:
        """The installed file, or ``None`` when absent *or torn*.

        A file whose size disagrees with its install receipt — a truncated
        copy, a partially synced cache directory — is sidelined to
        ``quarantine/`` and reported as a miss, so a torn cache can only
        cost a re-fetch, never a silently wrong evaluation.
        """
        path = self.matrix_path(descriptor)
        if not path.exists():
            return None
        receipt = self._read_receipt(descriptor)
        if receipt is None or path.stat().st_size != receipt.get("size"):
            self._quarantine(path, reason="torn-cache-file")
            receipt_path = self.receipt_path(descriptor)
            if receipt_path.exists():
                receipt_path.unlink()
            return None
        return path

    def _read_receipt(self, descriptor: MatrixDescriptor) -> Optional[dict]:
        try:
            return json.loads(self.receipt_path(descriptor).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    # -- the workhorse ------------------------------------------------- #
    def ensure_local(self, descriptor: MatrixDescriptor, *,
                     transport: Optional[Transport] = None,
                     offline: Optional[bool] = None,
                     refresh: bool = False) -> Path:
        """Return the local path of ``descriptor``, fetching if needed.

        ``refresh=True`` re-downloads even when a cached copy exists (the
        CLI's ``corpus fetch --refresh``).  Any fetch failure — network
        down, offline mode, injected ``corpus.fetch`` fault — *degrades to
        the cached copy* with a :class:`CorpusFetchWarning` when one is
        installed, and raises a :class:`CorpusError` naming both the cache
        path and the URL only when the matrix is absent everywhere.
        """
        cached = self.installed_path(descriptor)
        if cached is not None and not refresh:
            return cached
        try:
            return self._fetch_and_install(descriptor, transport, offline)
        except ChecksumMismatch:
            raise
        except (OSError, CorpusError) as error:
            if cached is not None:
                warnings.warn(
                    f"fetch of {descriptor.matrix_id} failed ({error}); "
                    f"using the cached copy at {cached}", CorpusFetchWarning,
                    stacklevel=2)
                return cached
            raise CorpusError(
                f"corpus matrix {descriptor.matrix_id} is not cached at "
                f"{self.matrix_path(descriptor)} and fetching {descriptor.url} "
                f"failed: {error}") from error

    def fetch(self, descriptor: MatrixDescriptor, *,
              transport: Optional[Transport] = None,
              offline: Optional[bool] = None,
              refresh: bool = False) -> Path:
        """Alias of :meth:`ensure_local` (the CLI subcommand's verb)."""
        return self.ensure_local(descriptor, transport=transport,
                                 offline=offline, refresh=refresh)

    # -- internals ----------------------------------------------------- #
    def _fetch_and_install(self, descriptor: MatrixDescriptor,
                           transport: Optional[Transport],
                           offline: Optional[bool]) -> Path:
        if offline is None:
            offline = offline_mode()
        scheme = _url_scheme(descriptor.url)
        if offline and scheme not in ("", "file"):
            raise OSError(
                f"offline mode ({ENV_OFFLINE}=1) forbids fetching "
                f"{descriptor.url}")
        transport = transport or default_transport()
        destination = self.matrix_path(descriptor)
        destination.parent.mkdir(parents=True, exist_ok=True)

        if descriptor.format == "tar.gz":
            archive = self._ensure_download(descriptor, transport)
            self._extract_member(descriptor, archive, destination)
        else:
            fetched, _ = self._download(descriptor, transport,
                                        destination.parent)
            os.replace(fetched, destination)
        self._write_receipt(descriptor, destination)
        return destination

    def _download(self, descriptor: MatrixDescriptor, transport: Transport,
                  directory: Path) -> Tuple[Path, str]:
        """Download the descriptor's resource into ``directory``, verified.

        Returns ``(temp path, digest)``.  A checksum mismatch quarantines
        the bad bytes and re-fetches once (the second attempt's warning
        names the quarantined file); two mismatches raise
        :class:`ChecksumMismatch`.
        """
        directory.mkdir(parents=True, exist_ok=True)
        last_digest = None
        for attempt in (1, 2):
            faults.active().maybe_raise("corpus.fetch")
            handle, tmp_name = tempfile.mkstemp(
                prefix=descriptor.name + ".", suffix=".tmp", dir=directory)
            tmp = Path(tmp_name)
            try:
                with os.fdopen(handle, "wb") as sink:
                    transport.fetch(descriptor.url, sink)
            except BaseException:
                tmp.unlink(missing_ok=True)
                raise
            faults.active().maybe_corrupt(tmp, site="corpus.corrupt")
            digest = _sha256_file(tmp)
            if descriptor.sha256 is None or digest == descriptor.sha256:
                return tmp, digest
            quarantined = self._quarantine(tmp, reason="checksum-mismatch")
            last_digest = digest
            if attempt == 1:
                warnings.warn(
                    f"checksum mismatch for {descriptor.matrix_id} "
                    f"(expected {descriptor.sha256[:12]}…, got "
                    f"{digest[:12]}…); bad download quarantined at "
                    f"{quarantined}, re-fetching once", CorpusFetchWarning,
                    stacklevel=3)
        raise ChecksumMismatch(
            f"{descriptor.matrix_id}: {descriptor.url} failed SHA-256 "
            f"verification twice (expected {descriptor.sha256}, got "
            f"{last_digest}); the upstream file changed or the mirror is "
            f"corrupt — bad downloads are under {self.quarantine_root}")

    def _ensure_download(self, descriptor: MatrixDescriptor,
                         transport: Transport) -> Path:
        """The cached archive behind ``descriptor`` (shared across members)."""
        key = hashlib.sha256(descriptor.url.encode()).hexdigest()[:16]
        basename = descriptor.url.rsplit("/", 1)[-1] or "download"
        archive = self.downloads_root / f"{key}-{basename}"
        if archive.exists():
            if descriptor.sha256 is None or \
                    _sha256_file(archive) == descriptor.sha256:
                return archive
            self._quarantine(archive, reason="archive-checksum-mismatch")
        tmp, _ = self._download(descriptor, transport, self.downloads_root)
        os.replace(tmp, archive)
        return archive

    def _extract_member(self, descriptor: MatrixDescriptor, archive: Path,
                        destination: Path) -> None:
        handle, tmp_name = tempfile.mkstemp(
            prefix=descriptor.name + ".", suffix=".tmp",
            dir=destination.parent)
        tmp = Path(tmp_name)
        try:
            with tarfile.open(archive, "r:*") as tar:
                try:
                    member = tar.extractfile(descriptor.member)
                except KeyError:
                    member = None
                if member is None:
                    raise CorpusError(
                        f"archive {archive.name} has no member "
                        f"{descriptor.member!r} (wanted by "
                        f"{descriptor.matrix_id})")
                with os.fdopen(handle, "wb") as sink:
                    while True:
                        chunk = member.read(1 << 16)
                        if not chunk:
                            break
                        sink.write(chunk)
            os.replace(tmp, destination)
        except (tarfile.TarError, EOFError) as error:
            tmp.unlink(missing_ok=True)
            self._quarantine(archive, reason="unreadable-archive")
            raise CorpusError(
                f"archive behind {descriptor.matrix_id} is unreadable "
                f"({error}); it was quarantined — re-fetch to repair") from error
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def _write_receipt(self, descriptor: MatrixDescriptor,
                       path: Path) -> None:
        receipt = {
            "matrix_id": descriptor.matrix_id,
            "url": descriptor.url,
            "sha256": _sha256_file(path),
            "size": path.stat().st_size,
        }
        handle, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent)
        with os.fdopen(handle, "w") as sink:
            json.dump(receipt, sink, indent=1)
        os.replace(tmp_name, self.receipt_path(descriptor))

    def _quarantine(self, path: Path, *, reason: str) -> Path:
        self.quarantine_root.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_root / f"{reason}-{path.name}"
        suffix = 0
        while target.exists():
            suffix += 1
            target = self.quarantine_root / f"{reason}-{suffix}-{path.name}"
        os.replace(path, target)
        return target

    # -- maintenance --------------------------------------------------- #
    def installed(self) -> List[Path]:
        """Every installed matrix file (receipts excluded), sorted."""
        if not self.matrices_root.exists():
            return []
        return sorted(
            path for path in self.matrices_root.rglob("*")
            if path.is_file() and not path.name.endswith(RECEIPT_SUFFIX)
            and not path.name.endswith(".tmp"))

    def verify(self, descriptors: Optional[Iterable[MatrixDescriptor]] = None,
               ) -> VerifyOutcome:
        """Re-hash installed matrices against their install receipts.

        With ``descriptors`` the scan covers exactly those (missing ones are
        reported); without, every installed file with a receipt is checked.
        Corrupt files are quarantined so the next ``ensure_local`` re-fetches.
        """
        checked = ok = 0
        missing: List[str] = []
        corrupt: List[str] = []
        if descriptors is not None:
            for descriptor in descriptors:
                checked += 1
                path = self.matrix_path(descriptor)
                receipt = self._read_receipt(descriptor)
                if not path.exists() or receipt is None:
                    missing.append(descriptor.matrix_id)
                    continue
                if _sha256_file(path) != receipt.get("sha256"):
                    corrupt.append(descriptor.matrix_id)
                    self._quarantine(path, reason="verify-corrupt")
                    self.receipt_path(descriptor).unlink(missing_ok=True)
                else:
                    ok += 1
            return VerifyOutcome(checked=checked, ok=ok, missing=missing,
                                 corrupt=corrupt)
        for path in self.installed():
            receipt_path = path.with_name(path.name + RECEIPT_SUFFIX)
            checked += 1
            try:
                receipt = json.loads(receipt_path.read_text())
            except (OSError, json.JSONDecodeError):
                missing.append(str(path))
                continue
            if _sha256_file(path) != receipt.get("sha256"):
                corrupt.append(str(path))
                self._quarantine(path, reason="verify-corrupt")
                receipt_path.unlink(missing_ok=True)
            else:
                ok += 1
        return VerifyOutcome(checked=checked, ok=ok, missing=missing,
                             corrupt=corrupt)

    def gc(self) -> GcOutcome:
        """Reclaim the re-fetchable tiers: downloads and quarantine.

        Installed matrices (the expensive, identity-bearing tier) are kept;
        archives can be re-downloaded and quarantined files exist only for
        forensics.
        """
        removed_downloads = removed_quarantined = 0
        reclaimed = 0
        for directory, counter in ((self.downloads_root, "downloads"),
                                   (self.quarantine_root, "quarantine")):
            if not directory.exists():
                continue
            for path in sorted(directory.iterdir()):
                if not path.is_file():
                    continue
                reclaimed += path.stat().st_size
                path.unlink()
                if counter == "downloads":
                    removed_downloads += 1
                else:
                    removed_quarantined += 1
        return GcOutcome(removed_downloads=removed_downloads,
                         removed_quarantined=removed_quarantined,
                         reclaimed_bytes=reclaimed)


# --------------------------------------------------------------------- #
# Loading
# --------------------------------------------------------------------- #
def read_smtx(path: Union[str, Path], name: Optional[str] = None) -> SparseMatrix:
    """Read a DLMC ``.smtx`` file (CSR text format) into a SparseMatrix.

    Layout: a ``nrows, ncols, nnz`` header line, a line of ``nrows + 1`` row
    offsets, and a line of ``nnz`` column indices.  Values are implicitly
    1.0 (the collection stores pruning *masks*).  ``.gz``-compressed files
    are handled transparently.
    """
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt") as handle:  # type: ignore[operator]
        header = handle.readline().replace(",", " ").split()
        if len(header) != 3:
            raise ValueError(f"{path}: malformed .smtx header {header!r} "
                             f"(expected 'nrows, ncols, nnz')")
        num_rows, num_cols, nnz = (int(part) for part in header)
        indptr = np.array(handle.readline().split(), dtype=np.int64)
        indices = np.array(handle.readline().split(), dtype=np.int64)
    if indptr.size != num_rows + 1:
        raise ValueError(f"{path}: expected {num_rows + 1} row offsets, "
                         f"found {indptr.size}")
    if indices.size != nnz or (nnz and indptr[-1] != nnz):
        raise ValueError(f"{path}: expected {nnz} column indices, found "
                         f"{indices.size} (offsets end at {indptr[-1]})")
    import scipy.sparse as sp

    csr = sp.csr_matrix(
        (np.ones(nnz, dtype=np.float64), indices, indptr),
        shape=(num_rows, num_cols))
    return SparseMatrix(csr, name=name or path.name.replace(".smtx", ""))


def _peek_dimensions(descriptor: MatrixDescriptor,
                     path: Path) -> Tuple[int, int, int]:
    """``(rows, cols, nnz)`` of an installed file, reading only its header."""
    if path.name.endswith(".smtx"):
        with open(path, "rt") as handle:
            header = handle.readline().replace(",", " ").split()
        if len(header) != 3:
            raise ValueError(f"{path}: malformed .smtx header")
        rows, cols, nnz = (int(part) for part in header)
        return rows, cols, nnz
    rows, cols, entries, symmetric = matrix_market_header(path)
    return rows, cols, entries * 2 if symmetric else entries


def _load_installed(descriptor: MatrixDescriptor, path: Path,
                    name: str) -> SparseMatrix:
    try:
        if path.name.endswith(".smtx"):
            return read_smtx(path, name=name)
        return read_matrix_market(path, name=name)
    except (OSError, ValueError) as error:
        raise CorpusError(
            f"failed to load corpus matrix {descriptor.matrix_id} from "
            f"{path}: {error}") from error


# --------------------------------------------------------------------- #
# The workload-suite bridge
# --------------------------------------------------------------------- #
def _workload_names(descriptors: Sequence[MatrixDescriptor]) -> List[str]:
    """Short names where unique, ``group.name`` qualified on collision."""
    counts: Dict[str, int] = {}
    for descriptor in descriptors:
        counts[descriptor.name] = counts.get(descriptor.name, 0) + 1
    names = []
    for descriptor in descriptors:
        if counts[descriptor.name] == 1:
            names.append(descriptor.name)
        else:
            names.append(f"{descriptor.group.replace('/', '.')}"
                         f".{descriptor.name}")
    return names


def corpus_workload_suite(matrix_ids: Sequence[str], *, seed: int = 2023,
                          manifest: Union[str, Path, None] = None,
                          cache: Optional[CorpusCache] = None,
                          transport: Optional[Transport] = None,
                          offline: Optional[bool] = None):
    """A lazy :class:`~repro.tensor.suite.WorkloadSuite` of corpus matrices.

    ``matrix_ids`` are canonical ``dataset:group/name`` addresses (strings
    with commas are expanded via :func:`parse_corpus_ids`), resolved through
    the built-in catalog overlaid with ``manifest``.  Matrices are fetched
    into ``cache`` (default: :func:`default_cache_root`) on first
    :meth:`~repro.tensor.suite.WorkloadSuite.matrix` call — building the
    suite itself touches the network only for entries whose manifest omits
    dimension metadata.

    The suite's ``cache_token`` scope is ``("corpus", matrix-ids,
    manifest-path)``: hashable, picklable, and rebuildable by
    :func:`~repro.tensor.suite.suite_from_token` in scheduler workers, which
    resolve the cache root from ``$REPRO_CORPUS_CACHE`` — corpus evaluations
    flow through the parallel scheduler, the shared-memory fan-out path and
    the report store exactly like the synthetic suites.
    """
    from repro.tensor.suite import WorkloadSpec, WorkloadSuite, _permuted_transpose

    ids: List[str] = []
    for entry in matrix_ids:
        ids.extend(parse_corpus_ids(str(entry)))
    duplicates = sorted({m for m in ids if ids.count(m) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate corpus matrix id(s): {', '.join(duplicates)}; each "
            f"matrix may appear once per suite")
    catalog = resolve_catalog(manifest)
    descriptors = catalog.subset(ids)
    cache = cache or CorpusCache()
    names = _workload_names(descriptors)

    specs = []
    for descriptor, workload_name in zip(descriptors, names):
        specs.append(_corpus_workload_spec(
            WorkloadSpec, _permuted_transpose, descriptor, workload_name,
            cache, transport, offline))
    manifest_token = (str(Path(manifest).resolve())
                      if manifest is not None else None)
    return WorkloadSuite(specs, seed=seed,
                         cache_scope=("corpus", tuple(ids), manifest_token))


def _corpus_workload_spec(WorkloadSpec, _permuted_transpose,
                          descriptor: MatrixDescriptor, workload_name: str,
                          cache: CorpusCache,
                          transport: Optional[Transport],
                          offline: Optional[bool]):
    rows, cols, nnz = descriptor.rows, descriptor.cols, descriptor.nnz
    if rows is None or cols is None or nnz is None:
        path = cache.ensure_local(descriptor, transport=transport,
                                  offline=offline)
        try:
            rows, cols, nnz = _peek_dimensions(descriptor, path)
        except (OSError, ValueError) as error:
            raise CorpusError(
                f"failed to read the header of {descriptor.matrix_id} "
                f"from {path}: {error}") from error
    density = nnz / (rows * cols) if rows and cols else 0.0

    def build(rng: np.random.Generator) -> SparseMatrix:
        path = cache.ensure_local(descriptor, transport=transport,
                                  offline=offline)
        return _load_installed(descriptor, path, workload_name)

    def build_pair(rng: np.random.Generator) -> SparseMatrix:
        return _permuted_transpose(build(rng), rng)

    return WorkloadSpec(
        name=workload_name,
        category="corpus",
        description=(f"{descriptor.dataset} corpus matrix "
                     f"{descriptor.group}/{descriptor.name}"),
        paper_rows=int(rows),
        paper_cols=int(cols),
        paper_sparsity=max(0.0, 1.0 - density),
        builder=build,
        b_builder=build_pair,
    )
