"""Synthetic sparse matrix generators.

The paper evaluates on 22 SuiteSparse matrices (Table 2).  Those matrices are
not redistributable inside this repository, so the evaluation suite is built
from synthetic generators that reproduce the two *classes* of structure the
paper calls out, because those classes are what drive the results:

* **Linear-system matrices** (rma10, cant, consph, ...): symmetric-looking FEM
  matrices with a dense band around the diagonal and a light scatter of
  off-band entries.  Their tile-occupancy distribution is highly bimodal —
  diagonal tiles are dense, off-diagonal tiles nearly empty — which is the
  "deterministic high variability" case discussed in Section 6.2.
* **Graph matrices** (soc-Epinions1, web-Google, roadNet-CA, ...): power-law
  degree distributions (social/web graphs) or near-planar grids with localized
  dense clusters (road networks).  Power-law graphs give a heavy-tailed,
  *asymmetric* tile-occupancy distribution — few very dense tiles, many almost
  empty ones — which is where overbooking wins the most.

All generators:

* take an explicit random source (see :mod:`repro.utils.rng`), so the suite is
  deterministic;
* return a :class:`~repro.tensor.sparse.SparseMatrix` with values of 1.0
  (values do not matter for the traffic/energy model, only positions);
* guarantee the requested shape and approximately the requested occupancy
  (duplicates from random sampling are removed, so the realized nnz may be
  slightly below the request; the suite records the realized numbers).
"""

from __future__ import annotations

import numpy as np

from repro.tensor.sparse import SparseMatrix
from repro.utils.rng import RandomState, resolve_rng
from repro.utils.validation import check_fraction, check_positive_int


def _dedupe(rows: np.ndarray, cols: np.ndarray, num_cols: int) -> tuple[np.ndarray, np.ndarray]:
    """Remove duplicate (row, col) pairs, preserving no particular order.

    Equivalent to ``np.unique`` on the linearized keys (the result is the
    sorted unique key set) but via an explicit sort + neighbor mask, which is
    substantially faster than the hash-based unique for these sizes.
    """
    keys = rows.astype(np.int64) * np.int64(num_cols) + cols.astype(np.int64)
    if keys.size == 0:
        empty = keys.astype(np.int64)
        return empty, empty.copy()
    keys.sort(kind="quicksort")
    mask = np.empty(keys.size, dtype=bool)
    mask[0] = True
    np.not_equal(keys[1:], keys[:-1], out=mask[1:])
    unique = keys[mask]
    return (unique // num_cols).astype(np.int64), (unique % num_cols).astype(np.int64)


def _build(rows: np.ndarray, cols: np.ndarray, shape: tuple[int, int], name: str) -> SparseMatrix:
    rows, cols = _dedupe(np.asarray(rows), np.asarray(cols), shape[1])
    return SparseMatrix.from_coo(rows, cols, None, shape, name=name)


def _trim_to_nnz(rows: np.ndarray, cols: np.ndarray, nnz: int,
                 generator: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Uniformly downselect oversampled pairs to exactly ``nnz``.

    A no-op (and no generator draw) when at or below the target, so callers'
    random streams are unchanged whether or not they oversampled.
    """
    if len(rows) > nnz:
        keep = generator.choice(len(rows), size=nnz, replace=False)
        return rows[keep], cols[keep]
    return rows, cols


def uniform_random_matrix(num_rows: int, num_cols: int, nnz: int, *,
                          rng: RandomState = None,
                          name: str = "uniform") -> SparseMatrix:
    """Uniformly scattered nonzeros (no structure).

    This is the distribution Swiftiles' initial estimate is exact for: when
    nonzeros are uniform, a tile sized ``b / density`` holds ``b`` nonzeros in
    expectation (Section 4.2.1).
    """
    check_positive_int(num_rows, "num_rows")
    check_positive_int(num_cols, "num_cols")
    check_positive_int(nnz, "nnz")
    generator = resolve_rng(rng)
    # Oversample to compensate for duplicate removal.
    sample = min(int(nnz * 1.15) + 16, num_rows * num_cols)
    rows = generator.integers(0, num_rows, size=sample)
    cols = generator.integers(0, num_cols, size=sample)
    rows, cols = _dedupe(rows, cols, num_cols)
    rows, cols = _trim_to_nnz(rows, cols, nnz, generator)
    return _build(rows, cols, (num_rows, num_cols), name)


def erdos_renyi_matrix(num_nodes: int, density: float, *, rng: RandomState = None,
                       name: str = "erdos-renyi") -> SparseMatrix:
    """Erdős–Rényi adjacency matrix with the given edge density."""
    check_positive_int(num_nodes, "num_nodes")
    check_fraction(density, "density", inclusive_low=False, inclusive_high=False)
    nnz = max(1, int(round(density * num_nodes * num_nodes)))
    return uniform_random_matrix(num_nodes, num_nodes, nnz, rng=rng, name=name)


def banded_matrix(num_rows: int, *, bandwidth: int, band_fill: float = 0.6,
                  off_band_nnz: int = 0, rng: RandomState = None,
                  name: str = "banded") -> SparseMatrix:
    """FEM / linear-system style matrix: dense band plus off-band scatter.

    Parameters
    ----------
    num_rows:
        Matrix dimension (the matrix is square).
    bandwidth:
        Half-width of the band: nonzeros are placed at column offsets in
        ``[-bandwidth, +bandwidth]`` of the diagonal.
    band_fill:
        Fraction of in-band positions that are populated.
    off_band_nnz:
        Number of additional nonzeros scattered uniformly outside the band
        (models the long-range couplings present in e.g. rma10).
    """
    check_positive_int(num_rows, "num_rows")
    check_positive_int(bandwidth, "bandwidth")
    check_fraction(band_fill, "band_fill", inclusive_low=False)
    generator = resolve_rng(rng)

    per_row = max(1, int(round(band_fill * (2 * bandwidth + 1))))
    row_ids = np.repeat(np.arange(num_rows, dtype=np.int64), per_row)
    offsets = generator.integers(-bandwidth, bandwidth + 1, size=len(row_ids))
    col_ids = np.clip(row_ids + offsets, 0, num_rows - 1)

    if off_band_nnz > 0:
        extra_rows = generator.integers(0, num_rows, size=off_band_nnz)
        extra_cols = generator.integers(0, num_rows, size=off_band_nnz)
        row_ids = np.concatenate([row_ids, extra_rows])
        col_ids = np.concatenate([col_ids, extra_cols])

    # Make sure the diagonal itself is populated (FEM stiffness matrices are
    # diagonally dominant), which keeps A @ A^T well-behaved.
    diag = np.arange(num_rows, dtype=np.int64)
    row_ids = np.concatenate([row_ids, diag])
    col_ids = np.concatenate([col_ids, diag])
    return _build(row_ids, col_ids, (num_rows, num_rows), name)


def block_diagonal_matrix(num_rows: int, *, block_size: int, block_fill: float = 0.5,
                          off_block_nnz: int = 0, rng: RandomState = None,
                          name: str = "block-diagonal") -> SparseMatrix:
    """Block-diagonal matrix with dense blocks (models pdb1HYS-like structure)."""
    check_positive_int(num_rows, "num_rows")
    check_positive_int(block_size, "block_size")
    check_fraction(block_fill, "block_fill", inclusive_low=False)
    generator = resolve_rng(rng)

    rows_list = []
    cols_list = []
    for block_start in range(0, num_rows, block_size):
        block_stop = min(block_start + block_size, num_rows)
        extent = block_stop - block_start
        count = max(extent, int(round(block_fill * extent * extent)))
        rows_list.append(block_start + generator.integers(0, extent, size=count))
        cols_list.append(block_start + generator.integers(0, extent, size=count))
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)

    if off_block_nnz > 0:
        rows = np.concatenate([rows, generator.integers(0, num_rows, size=off_block_nnz)])
        cols = np.concatenate([cols, generator.integers(0, num_rows, size=off_block_nnz)])
    diag = np.arange(num_rows, dtype=np.int64)
    rows = np.concatenate([rows, diag])
    cols = np.concatenate([cols, diag])
    return _build(rows, cols, (num_rows, num_rows), name)


def power_law_matrix(num_nodes: int, nnz: int, *, alpha: float = 1.6,
                     max_degree_fraction: float = 0.04,
                     rng: RandomState = None, name: str = "power-law") -> SparseMatrix:
    """Scale-free graph adjacency matrix with power-law degree distribution.

    Node ``i`` is sampled as an endpoint with probability proportional to
    ``(i + 1) ** -alpha``; rows and columns are drawn independently, which
    yields the hub-dominated structure of social/web graphs and therefore a
    heavy-tailed, highly skewed tile-occupancy distribution — exactly the
    regime in which the paper reports the largest overbooking benefit
    (e.g. webbase-1M, roadNet-CA with 5.7–6.3× over ExTensor-P).
    """
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(nnz, "nnz")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    nnz = min(nnz, num_nodes * num_nodes)
    generator = resolve_rng(rng)

    weights = (np.arange(1, num_nodes + 1, dtype=np.float64)) ** (-alpha)
    weights /= weights.sum()

    # Give every node an out-degree proportional to its power-law weight (so
    # hub rows really do carry thousands of edges like real social graphs),
    # then draw the neighbour of each edge from the same skewed distribution.
    # The hub degree is capped at a fraction of the total edge count so that
    # no single row dwarfs the rest of the tensor (real SuiteSparse graphs
    # have heavy tails, not single rows holding most of the matrix).
    check_fraction(max_degree_fraction, "max_degree_fraction", inclusive_low=False)
    degree_cap = max(4, int(round(max_degree_fraction * nnz)))
    degrees = np.minimum(np.round(weights * nnz).astype(np.int64),
                         min(num_nodes, degree_cap))
    rows = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
    # Neighbours are drawn mostly uniformly (few collisions, so hub degrees
    # survive deduplication) with a skewed minority that recreates the
    # hub-to-hub dense blocks of real social graphs.
    uniform_cols = generator.integers(0, num_nodes, size=len(rows))
    skewed_cols = generator.choice(num_nodes, size=len(rows), p=weights)
    use_skewed = generator.random(len(rows)) < 0.25
    cols = np.where(use_skewed, skewed_cols, uniform_cols)
    rows, cols = _dedupe(rows, cols, num_nodes)

    # Deduplication removes edges that collided inside hub rows; top the edge
    # list back up with uniformly chosen endpoints until the requested
    # occupancy is (approximately) reached.  Uniform top-up keeps the hub
    # degree cap intact while preserving the overall heavy tail.
    for _ in range(12):
        if len(rows) >= nnz:
            break
        deficit = nnz - len(rows)
        extra_rows = generator.integers(0, num_nodes, size=deficit)
        extra_cols = generator.integers(0, num_nodes, size=deficit)
        rows = np.concatenate([rows, extra_rows])
        cols = np.concatenate([cols, extra_cols])
        rows, cols = _dedupe(rows, cols, num_nodes)

    # Scatter hub identities across the coordinate space so the dense tiles do
    # not all land at the origin: apply a fixed pseudo-random permutation.
    permutation = generator.permutation(num_nodes)
    rows = permutation[rows]
    cols = permutation[cols]
    rows, cols = _trim_to_nnz(rows, cols, nnz, generator)
    return _build(rows, cols, (num_nodes, num_nodes), name)


def density_gradient_matrix(num_rows: int, num_cols: int, nnz: int, *,
                            gamma: float = 2.0, rng: RandomState = None,
                            name: str = "density-gradient") -> SparseMatrix:
    """Nonzeros whose density ramps smoothly toward the bottom-right corner.

    Row ``i`` (column ``j``) is sampled with probability proportional to
    ``((i + 1) / num_rows) ** gamma``, independently for rows and columns, so
    the local density grows polynomially along both axes.  ``gamma = 0`` is
    the uniform distribution; larger ``gamma`` concentrates the nonzeros in
    one corner and yields a *monotone* tile-occupancy gradient — a structure
    class no SuiteSparse stand-in covers, and a useful probe between the
    uniform case (Swiftiles' estimate is exact) and the heavy-tailed one
    (overbooking's best case).
    """
    check_positive_int(num_rows, "num_rows")
    check_positive_int(num_cols, "num_cols")
    check_positive_int(nnz, "nnz")
    if gamma < 0:
        raise ValueError(f"gamma must be non-negative, got {gamma}")
    generator = resolve_rng(rng)
    nnz = min(nnz, num_rows * num_cols)

    row_weights = ((np.arange(num_rows, dtype=np.float64) + 1.0) / num_rows) ** gamma
    row_weights /= row_weights.sum()
    col_weights = ((np.arange(num_cols, dtype=np.float64) + 1.0) / num_cols) ** gamma
    col_weights /= col_weights.sum()

    # Oversample, deduplicate, and top up: the skewed sampling collides much
    # more often than uniform sampling, so the realized nnz converges to the
    # request over a few rounds (bounded, like power_law_matrix's top-up).
    rows = np.empty(0, dtype=np.int64)
    cols = np.empty(0, dtype=np.int64)
    for _ in range(12):
        deficit = nnz - len(rows)
        if deficit <= 0:
            break
        sample = int(deficit * 1.2) + 16
        rows = np.concatenate([
            rows, generator.choice(num_rows, size=sample, p=row_weights)])
        cols = np.concatenate([
            cols, generator.choice(num_cols, size=sample, p=col_weights)])
        rows, cols = _dedupe(rows, cols, num_cols)
    rows, cols = _trim_to_nnz(rows, cols, nnz, generator)
    return _build(rows, cols, (num_rows, num_cols), name)


def road_network_matrix(num_nodes: int, *, extra_edge_fraction: float = 0.05,
                        num_clusters: int = 12, cluster_size: int = 64,
                        cluster_fill: float = 0.25, rng: RandomState = None,
                        name: str = "road-network") -> SparseMatrix:
    """Road-network style adjacency: near-planar grid plus dense "city" clusters.

    Road networks are almost planar (every junction touches a handful of
    roads) but contain small regions — cities — whose junction density is much
    higher.  The grid part produces the near-diagonal structure the paper
    describes for roadNet-CA; the clusters produce the "very few tiles with
    very high occupancy" asymmetry that makes overbooking so effective on it.
    """
    check_positive_int(num_nodes, "num_nodes")
    check_fraction(extra_edge_fraction, "extra_edge_fraction")
    check_fraction(cluster_fill, "cluster_fill", inclusive_low=False)
    generator = resolve_rng(rng)

    side = max(2, int(np.sqrt(num_nodes)))
    usable = side * side
    node = np.arange(usable, dtype=np.int64)
    x = node % side
    y = node // side

    rows_list = []
    cols_list = []
    # Horizontal neighbours.
    mask = x < side - 1
    rows_list.append(node[mask])
    cols_list.append(node[mask] + 1)
    # Vertical neighbours.
    mask = y < side - 1
    rows_list.append(node[mask])
    cols_list.append(node[mask] + side)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    # Make the adjacency symmetric like an undirected road graph.
    rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])

    num_extra = int(extra_edge_fraction * len(rows))
    if num_extra > 0:
        extra_rows = generator.integers(0, num_nodes, size=num_extra)
        extra_cols = generator.integers(0, num_nodes, size=num_extra)
        rows = np.concatenate([rows, extra_rows])
        cols = np.concatenate([cols, extra_cols])

    for _ in range(num_clusters):
        anchor = int(generator.integers(0, max(1, num_nodes - cluster_size)))
        count = max(1, int(round(cluster_fill * cluster_size * cluster_size)))
        cluster_rows = anchor + generator.integers(0, cluster_size, size=count)
        cluster_cols = anchor + generator.integers(0, cluster_size, size=count)
        rows = np.concatenate([rows, cluster_rows])
        cols = np.concatenate([cols, cluster_cols])

    rows = np.clip(rows, 0, num_nodes - 1)
    cols = np.clip(cols, 0, num_nodes - 1)
    return _build(rows, cols, (num_nodes, num_nodes), name)
