"""The :class:`SparseMatrix` workhorse.

The evaluation in the paper operates on two-dimensional sparse tensors
(matrices) from SuiteSparse.  ``SparseMatrix`` wraps a SciPy CSR matrix and
adds the operations the rest of the library needs:

* cheap global statistics (nnz, sparsity, density) used by Swiftiles' initial
  estimate (Eq. 2 of the paper needs only shape and nnz);
* fast *per-tile occupancy* counting for coordinate-space tilings, which
  drives every occupancy-distribution figure (Fig. 1, Fig. 6, Fig. 11–13);
* row/column structure queries used by the ExTensor dataflow model
  (intersection counting, per-row-block occupancies);
* submatrix extraction used when constructing per-tile traces for the
  Tailors/buffet reuse simulations.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.tensor.coords import Range, Shape
from repro.utils.validation import check_positive_int

#: Monotonically increasing identity tokens for cache keys (see ``uid``).
_UID_COUNTER = itertools.count()


def _read_only(array: np.ndarray) -> np.ndarray:
    """Mark ``array`` read-only so cached results cannot be mutated in place."""
    array.setflags(write=False)
    return array


class SparseMatrix:
    """An immutable two-dimensional sparse tensor backed by CSR storage.

    Parameters
    ----------
    matrix:
        Anything SciPy can turn into a CSR matrix (``scipy.sparse`` matrix,
        dense ``numpy`` array, ...).  Explicit zeros are eliminated so that
        ``nnz`` always means "number of stored nonzero values", matching the
        paper's definition of occupancy.
    name:
        Optional human-readable name (workload names such as ``"roadNet-CA"``).
    """

    def __init__(self, matrix: sp.spmatrix | np.ndarray, name: str = "unnamed"):
        self._init_from_csr(sp.csr_matrix(matrix, copy=True), name)

    @classmethod
    def _from_owned_csr(cls, csr: sp.csr_matrix, name: str) -> "SparseMatrix":
        """Wrap a CSR matrix the caller owns, without the defensive copy.

        Internal fast path for derived matrices (transposes, products) whose
        storage is freshly allocated and never aliased by the caller.
        """
        obj = cls.__new__(cls)
        obj._init_from_csr(sp.csr_matrix(csr, copy=False), name)
        return obj

    @classmethod
    def _from_canonical_csr(cls, csr: sp.csr_matrix, name: str) -> "SparseMatrix":
        """Wrap a CSR matrix already in canonical form, without normalizing.

        Canonical means: no explicit zeros, indices sorted within each row.
        The normalization pass in ``_init_from_csr`` *mutates* the CSR
        buffers, which is illegal for matrices whose arrays are read-only
        views into a shared-memory segment (:mod:`repro.tensor.shm`) — the
        exporter guarantees canonical form (every exported matrix came out of
        the normalizing constructor), so this trusted path just attaches.
        """
        obj = cls.__new__(cls)
        obj._attach_csr(csr, name)
        return obj

    def _init_from_csr(self, csr: sp.csr_matrix, name: str) -> None:
        csr.eliminate_zeros()
        csr.sort_indices()
        self._attach_csr(csr, name)

    def _attach_csr(self, csr: sp.csr_matrix, name: str) -> None:
        if csr.ndim != 2:
            raise ValueError("SparseMatrix only supports two-dimensional tensors")
        self._csr = csr
        self._name = str(name)
        # Memoized derived results.  A SparseMatrix is immutable, so every
        # pure function of the matrix can be cached on the instance; the
        # caches below are what lets the evaluation pipeline re-tile, re-scan
        # and re-transpose the same operand at array speed.
        self._uid = next(_UID_COUNTER)
        self._memo: Dict = {}
        self._transpose_cache: Optional["SparseMatrix"] = None
        self._gram_cache: Optional["SparseMatrix"] = None
        self._coords_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._row_block_occ_cache: Dict[int, np.ndarray] = {}
        self._tile_occ_cache: Dict[Tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(cls, rows: Sequence[int], cols: Sequence[int],
                 values: Sequence[float] | None, shape: Tuple[int, int],
                 name: str = "unnamed") -> "SparseMatrix":
        """Build from coordinate lists.  ``values=None`` stores all ones.

        Duplicate coordinates are summed, mirroring SciPy COO semantics.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if values is None:
            values = np.ones(len(rows), dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if not (len(rows) == len(cols) == len(values)):
            raise ValueError("rows, cols and values must have equal lengths")
        coo = sp.coo_matrix((values, (rows, cols)), shape=shape)
        return cls(coo, name=name)

    @classmethod
    def from_dense(cls, array: np.ndarray, name: str = "unnamed") -> "SparseMatrix":
        """Build from a dense NumPy array, dropping the zeros."""
        return cls(sp.csr_matrix(np.asarray(array)), name=name)

    @classmethod
    def identity(cls, n: int, name: str = "identity") -> "SparseMatrix":
        """The n-by-n identity matrix (useful in tests)."""
        check_positive_int(n, "n")
        return cls(sp.identity(n, format="csr"), name=name)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Workload name used in reports."""
        return self._name

    @property
    def uid(self) -> int:
        """Process-unique identity token (stable for the instance's lifetime).

        Used as part of cache keys by consumers that memoize derived results
        per matrix (e.g. the tiling cache in :mod:`repro.core.overbooking`).
        """
        return self._uid

    @property
    def memo(self) -> Dict:
        """Instance-scoped cache for derived results keyed by the caller.

        The matrix is immutable, so any pure function of it may store its
        result here (tilers cache :class:`~repro.core.overbooking.TilerResult`
        objects keyed by strategy and capacity).  Entries live exactly as long
        as the matrix, so the cache cannot leak across workloads.
        """
        return self._memo

    @property
    def csr(self) -> sp.csr_matrix:
        """The underlying SciPy CSR matrix (do not mutate)."""
        return self._csr

    @property
    def shape(self) -> Shape:
        """The coordinate-space shape of the tensor."""
        return Shape(self._csr.shape)

    @property
    def num_rows(self) -> int:
        return int(self._csr.shape[0])

    @property
    def num_cols(self) -> int:
        return int(self._csr.shape[1])

    @property
    def size(self) -> int:
        """Number of points (zeros and nonzeros) in the tensor."""
        return self.num_rows * self.num_cols

    @property
    def nnz(self) -> int:
        """Occupancy of the whole tensor: the number of stored nonzeros."""
        return int(self._csr.nnz)

    @property
    def density(self) -> float:
        """Fraction of points that are nonzero (``1 - sparsity``)."""
        return self.nnz / self.size if self.size else 0.0

    @property
    def sparsity(self) -> float:
        """Fraction of points that are zero, the paper's ``s``."""
        return 1.0 - self.density

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseMatrix(name={self._name!r}, shape={self._csr.shape}, "
            f"nnz={self.nnz}, sparsity={self.sparsity:.6f})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMatrix):
            return NotImplemented
        if self._csr.shape != other._csr.shape:
            return False
        return (self._csr != other._csr).nnz == 0

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def row_occupancies(self) -> np.ndarray:
        """Number of nonzeros in each row (length ``num_rows``)."""
        return np.diff(self._csr.indptr).astype(np.int64)

    def col_occupancies(self) -> np.ndarray:
        """Number of nonzeros in each column (length ``num_cols``)."""
        return np.asarray(
            np.bincount(self._csr.indices, minlength=self.num_cols), dtype=np.int64
        )

    def coordinates(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(rows, cols)`` coordinate arrays of the nonzeros.

        The arrays are computed once and returned read-only; callers that
        need to reorder or scale them should copy (fancy indexing already
        does).
        """
        if self._coords_cache is None:
            coo = self._csr.tocoo()
            self._coords_cache = (_read_only(coo.row.astype(np.int64)),
                                  _read_only(coo.col.astype(np.int64)))
        return self._coords_cache

    def values(self) -> np.ndarray:
        """Nonzero values in CSR order."""
        return self._csr.data.copy()

    def iter_nonzeros(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over ``(row, col, value)`` triples in row-major order."""
        indptr = self._csr.indptr
        indices = self._csr.indices
        data = self._csr.data
        for row in range(self.num_rows):
            for k in range(indptr[row], indptr[row + 1]):
                yield row, int(indices[k]), float(data[k])

    def row_slice_nnz(self, row_range: Range) -> int:
        """Occupancy of the row band ``[row_range.start, row_range.stop)``."""
        indptr = self._csr.indptr
        start = min(row_range.start, self.num_rows)
        stop = min(row_range.stop, self.num_rows)
        return int(indptr[stop] - indptr[start])

    def submatrix(self, row_range: Range, col_range: Range,
                  name: str | None = None) -> "SparseMatrix":
        """Extract the tile covering ``row_range`` × ``col_range``.

        The returned matrix has the tile's shape; coordinates are re-based to
        the tile's origin, which is how tile-local traces are produced for the
        buffer simulations.
        """
        row_range = row_range.clamp(self.num_rows)
        col_range = col_range.clamp(self.num_cols)
        block = self._csr[row_range.start:row_range.stop, col_range.start:col_range.stop]
        tile_name = name or f"{self._name}[{row_range.start}:{row_range.stop},{col_range.start}:{col_range.stop}]"
        return SparseMatrix._from_owned_csr(sp.csr_matrix(block), name=tile_name)

    def transpose(self) -> "SparseMatrix":
        """Return the transposed tensor (used to form ``B = Aᵀ`` workloads).

        The result is computed once per matrix and cached; the transpose's own
        ``transpose()`` returns this matrix, so round trips are free.  The
        evaluation engine forms ``B = Aᵀ`` once per variant per level — the
        cache collapses those to a single CSR transpose per workload.
        """
        if self._transpose_cache is None:
            transposed = SparseMatrix._from_owned_csr(
                self._csr.T.tocsr(), name=f"{self._name}.T")
            transposed._transpose_cache = self
            self._transpose_cache = transposed
        return self._transpose_cache

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (tests and tiny examples only)."""
        return np.asarray(self._csr.todense())

    # ------------------------------------------------------------------ #
    # Tile occupancy counting
    # ------------------------------------------------------------------ #
    def tile_occupancies(self, tile_rows: int, tile_cols: int,
                         *, include_empty: bool = True) -> np.ndarray:
        """Occupancy of every coordinate-space tile of shape (tile_rows, tile_cols).

        Tiles are laid out on a regular grid anchored at the origin; boundary
        tiles may be smaller.  The result is a 1-D array in row-major tile
        order whose length is ``ceil(M/tile_rows) * ceil(N/tile_cols)`` when
        ``include_empty`` is true, otherwise only the occupancies of tiles that
        contain at least one nonzero are returned.

        This is the primitive behind every occupancy-distribution figure: it
        costs one pass over the nonzeros (``O(nnz)``), independent of the
        number of tiles, which is exactly the cheap per-size measurement the
        prescient baseline has to repeat for every candidate size.
        """
        check_positive_int(tile_rows, "tile_rows")
        check_positive_int(tile_cols, "tile_cols")
        key = (tile_rows, tile_cols)
        counts = self._tile_occ_cache.get(key)
        if counts is None:
            grid_rows = -(-self.num_rows // tile_rows)
            grid_cols = -(-self.num_cols // tile_cols)
            rows, cols = self.coordinates()
            tile_ids = (rows // tile_rows) * grid_cols + (cols // tile_cols)
            counts = np.bincount(tile_ids, minlength=grid_rows * grid_cols)
            counts = _read_only(counts.astype(np.int64))
            self._tile_occ_cache[key] = counts
        if include_empty:
            return counts
        return counts[counts > 0]

    def row_block_occupancies(self, block_rows: int) -> np.ndarray:
        """Occupancy of every row-band tile of ``block_rows`` rows × full width.

        This is the tile construction the evaluated ExTensor dataflow uses for
        the stationary operand (expand along K first, to its full extent, then
        grow along M), so the per-block occupancies determine whether a global
        buffer tile fits or overbooks.
        """
        check_positive_int(block_rows, "block_rows")
        cached = self._row_block_occ_cache.get(block_rows)
        if cached is None:
            indptr = self._csr.indptr
            boundaries = np.arange(0, self.num_rows + block_rows, block_rows)
            boundaries = np.clip(boundaries, 0, self.num_rows)
            cumulative = indptr[boundaries]
            cached = _read_only(np.diff(cumulative).astype(np.int64))
            self._row_block_occ_cache[block_rows] = cached
        return cached

    def max_tile_occupancy(self, tile_rows: int, tile_cols: int) -> int:
        """Largest occupancy over all tiles of the given shape (prescient search)."""
        occupancies = self.tile_occupancies(tile_rows, tile_cols)
        return int(occupancies.max()) if occupancies.size else 0

    # ------------------------------------------------------------------ #
    # Algebra helpers
    # ------------------------------------------------------------------ #
    def matmul(self, other: "SparseMatrix") -> "SparseMatrix":
        """Reference sparse-sparse matrix multiply (functional ground truth).

        Products are memoized per right-hand operand, so the operation-count
        pass and the reference kernel share a single SpGEMM per workload.
        """
        if self.num_cols != other.num_rows:
            raise ValueError(
                f"inner dimensions do not match: {self.num_cols} vs {other.num_rows}"
            )
        key = ("matmul", other.uid)
        cached = self._memo.get(key)
        if cached is None:
            product = self._csr @ other._csr
            cached = SparseMatrix._from_owned_csr(
                product, name=f"{self._name}@{other._name}")
            self._memo[key] = cached
        return cached

    def gram(self) -> "SparseMatrix":
        """Compute ``A @ Aᵀ``, the SpMSpM kernel evaluated throughout the paper.

        Both the transpose and the product are memoized, so repeated calls
        (operation counts, reference checks) cost one SpGEMM total.
        """
        if self._gram_cache is None:
            self._gram_cache = self.matmul(self.transpose())
        return self._gram_cache
