"""Seeded sparsity-model registry: synthetic structure as an experiment axis.

The evaluation suites so far come from two places: the 22 Table-2 stand-ins
(:func:`repro.tensor.suite.default_suite`) and MatrixMarket corpora
(:func:`repro.tensor.suite.corpus_suite`).  Both are *file lists* — a fixed
set of matrices.  This module makes sparsity **structure** itself the
first-class axis: a registry of parameterized sparsity models

* ``uniform`` — no structure (Swiftiles' estimate is exact here);
* ``banded`` — FEM-style dense band plus off-band scatter;
* ``block_diagonal`` — dense diagonal blocks (pdb1HYS-like);
* ``power_law_rows`` — RMAT-like hub skew, the heavy-tailed regime where
  overbooking wins the most;
* ``density_gradient`` — density ramping monotonically toward one corner,
  a probe between the uniform and heavy-tailed regimes

each of which emits :class:`~repro.tensor.suite.WorkloadSpec`-compatible
builders.  A :class:`SynthSpec` is the exactly-reproducible identity of one
synthetic workload: the ``(model, params)`` pair, canonicalized (defaults
resolved, values coerced, keys sorted), so that

* the same ``(model, params, seed)`` triple always regenerates the
  bit-identical matrix, wherever it is built;
* its :attr:`SynthSpec.token` is hashable *and picklable*, which is what lets
  :func:`repro.tensor.suite.synth_suite` give synthetic suites a
  ``("synth", tokens)`` cache scope that parallel-scheduler workers rebuild
  via :func:`repro.tensor.suite.suite_from_token` — synthetic evaluations
  flow through the whole batching/dedup/fan-out machinery exactly like the
  canonical suites.

The CLI (``--synth model:param=value,...``), the sweep runner's
model/params columns, and the ``table4`` experiment (overbooking benefit
vs. structure skew) are all thin layers over this registry.

Public surface
--------------
:class:`SynthSpec` (the canonical identity), :func:`parse_synth_spec` /
:func:`synth_specs` (CLI-string and mixed-sequence parsing),
:func:`spec_from_token` (the inverse of :attr:`SynthSpec.token`, used by
scheduler workers and the persistent report store's key round-trip),
:func:`model_names` / :func:`get_model` (registry introspection),
:func:`specs_by_workload_name` (suite → spec mapping for the sweep/search
columns), and :func:`tile_occupancy_cv` (the structure-skew statistic of
``table4``).  Everything else is registry plumbing.  The token/identity
contract this module guarantees is documented in
``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.tensor import generators
from repro.tensor.sparse import SparseMatrix
from repro.utils.rng import RandomState, resolve_rng

#: Parameter values are plain numbers so spec tokens stay picklable/hashable.
ParamValue = Union[int, float]
#: Canonical parameter layout: ``((key, value), ...)`` sorted by key.
ParamItems = Tuple[Tuple[str, ParamValue], ...]


def _format_value(value: ParamValue) -> str:
    # repr() is the shortest round-trip rendering for floats, so distinct
    # values never collapse to one label (a "%g" would truncate at 6
    # significant digits) and parse_synth_spec(params_label) is lossless.
    return str(value) if isinstance(value, int) else repr(value)


def format_params(params: Mapping[str, ParamValue] | ParamItems) -> str:
    """Render parameters as the CLI's ``key=value,key=value`` syntax."""
    items = params.items() if isinstance(params, Mapping) else params
    return ",".join(f"{key}={_format_value(value)}" for key, value in items)


@dataclass(frozen=True)
class SparsityModel:
    """One registered sparsity model (see the module docstring).

    Attributes
    ----------
    name:
        Registry key, used by the CLI (``--synth name:...``) and spec tokens.
    title:
        One-line description for docs and error messages.
    defaults:
        Canonical parameter set with default values.  A parameter's default
        also fixes its *type*: integer defaults coerce overrides with
        ``int()``, float defaults with ``float()`` — so resolved parameters
        (and with them the spec tokens) are independent of how the caller
        spelled the value (``0.5`` vs ``"0.5"``, ``10`` vs ``10.0``).
    build:
        ``build(params, rng, name)`` — generates the matrix from fully
        resolved parameters and an explicit random stream.
    """

    name: str
    title: str
    defaults: ParamItems
    build: Callable[[Dict[str, ParamValue], np.random.Generator, str],
                    SparseMatrix] = field(repr=False, compare=False)
    #: ``metadata(params) -> (rows, cols, nnz_hint)`` for spec bookkeeping.
    metadata: Callable[[Dict[str, ParamValue]], Tuple[int, int, int]] = field(
        repr=False, compare=False, default=None)

    def resolve(self, params: Mapping[str, ParamValue]) -> Dict[str, ParamValue]:
        """Defaults merged with ``params``, values coerced to default types."""
        known = dict(self.defaults)
        unknown = sorted(set(params) - set(known))
        if unknown:
            raise KeyError(
                f"unknown parameter(s) {unknown} for sparsity model "
                f"{self.name!r}; known: {sorted(known)}")
        resolved = dict(known)
        for key, value in params.items():
            coerce = int if isinstance(known[key], int) else float
            try:
                resolved[key] = coerce(value)
            except (TypeError, ValueError):
                raise ValueError(
                    f"parameter {key!r} of sparsity model {self.name!r} "
                    f"expects {coerce.__name__}, got {value!r}") from None
        return resolved


# --------------------------------------------------------------------- #
# The registered models
# --------------------------------------------------------------------- #
def _build_uniform(params, rng, name):
    return generators.uniform_random_matrix(
        params["n"], params["n"], params["nnz"], rng=rng, name=name)


def _build_banded(params, rng, name):
    return generators.banded_matrix(
        params["n"], bandwidth=params["bandwidth"],
        band_fill=params["band_fill"], off_band_nnz=params["off_band_nnz"],
        rng=rng, name=name)


def _build_block_diagonal(params, rng, name):
    return generators.block_diagonal_matrix(
        params["n"], block_size=params["block_size"],
        block_fill=params["block_fill"], off_block_nnz=params["off_block_nnz"],
        rng=rng, name=name)


def _build_power_law_rows(params, rng, name):
    return generators.power_law_matrix(
        params["n"], params["nnz"], alpha=params["alpha"],
        max_degree_fraction=params["max_degree_fraction"], rng=rng, name=name)


def _build_density_gradient(params, rng, name):
    return generators.density_gradient_matrix(
        params["n"], params["n"], params["nnz"], gamma=params["gamma"],
        rng=rng, name=name)


def _square_meta(nnz_key):
    def metadata(params):
        return params["n"], params["n"], params[nnz_key]
    return metadata


def _banded_meta(params):
    per_row = max(1, int(round(params["band_fill"] * (2 * params["bandwidth"] + 1))))
    return params["n"], params["n"], params["n"] * per_row + params["off_band_nnz"]


def _block_diagonal_meta(params):
    n, block = params["n"], params["block_size"]
    blocks = -(-n // block)
    per_block = max(block, int(round(params["block_fill"] * block * block)))
    return n, n, blocks * per_block + params["off_block_nnz"] + n


MODELS: Dict[str, SparsityModel] = {
    model.name: model for model in (
        SparsityModel(
            name="uniform",
            title="uniformly scattered nonzeros (no structure)",
            defaults=(("n", 900), ("nnz", 8100)),
            build=_build_uniform,
            metadata=_square_meta("nnz"),
        ),
        SparsityModel(
            name="banded",
            title="FEM-style dense band plus off-band scatter",
            defaults=(("band_fill", 0.8), ("bandwidth", 10), ("n", 800),
                      ("off_band_nnz", 1600)),
            build=_build_banded,
            metadata=_banded_meta,
        ),
        SparsityModel(
            name="block_diagonal",
            title="dense diagonal blocks plus off-block scatter",
            defaults=(("block_fill", 0.5), ("block_size", 48), ("n", 768),
                      ("off_block_nnz", 1500)),
            build=_build_block_diagonal,
            metadata=_block_diagonal_meta,
        ),
        SparsityModel(
            name="power_law_rows",
            title="RMAT-like hub skew (power-law row/column degrees)",
            defaults=(("alpha", 1.7), ("max_degree_fraction", 0.04),
                      ("n", 900), ("nnz", 9000)),
            build=_build_power_law_rows,
            metadata=_square_meta("nnz"),
        ),
        SparsityModel(
            name="density_gradient",
            title="density ramping monotonically toward one corner",
            defaults=(("gamma", 2.0), ("n", 800), ("nnz", 8000)),
            build=_build_density_gradient,
            metadata=_square_meta("nnz"),
        ),
    )
}


def model_names() -> Tuple[str, ...]:
    """The registered sparsity-model names."""
    return tuple(MODELS)


def get_model(name: str) -> SparsityModel:
    """The :class:`SparsityModel` registered as ``name`` (KeyError with hint)."""
    try:
        return MODELS[name]
    except KeyError:
        raise KeyError(f"unknown sparsity model {name!r}; "
                       f"known: {list(MODELS)}") from None


# --------------------------------------------------------------------- #
# Specs: the reproducible (model, params) identity
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SynthSpec:
    """Canonical identity of one synthetic workload.

    Construction resolves the model's defaults and coerces every value, so
    two specs describing the same effective configuration compare (and hash,
    and pickle) equal no matter how they were spelled.  ``params`` holds the
    *fully resolved* parameter set as a sorted item tuple.
    """

    model: str
    params: ParamItems = ()

    def __post_init__(self) -> None:
        resolved = get_model(self.model).resolve(dict(self.params))
        object.__setattr__(self, "params", tuple(sorted(resolved.items())))

    # -------------------------------------------------------------- #
    @property
    def token(self) -> tuple:
        """Hashable, picklable identity: ``(model, resolved params)``.

        Everything a scheduler worker needs to regenerate the matrix
        bit-identically (together with the suite seed carried by the suite
        token that embeds this one).
        """
        return (self.model, self.params)

    @property
    def overrides(self) -> ParamItems:
        """The parameters that differ from the model's defaults."""
        defaults = dict(get_model(self.model).defaults)
        return tuple((key, value) for key, value in self.params
                     if value != defaults[key])

    @property
    def workload_name(self) -> str:
        """Deterministic workload name: model plus non-default parameters.

        Distinct specs of one model always differ in at least one resolved
        parameter, so the override rendering is unique per distinct spec.
        """
        overrides = self.overrides
        if not overrides:
            return self.model
        return f"{self.model}[{format_params(overrides)}]"

    @property
    def params_label(self) -> str:
        """Full resolved parameters as ``key=value,...`` (sweep columns)."""
        return format_params(self.params)

    # -------------------------------------------------------------- #
    def build(self, rng: RandomState = None) -> SparseMatrix:
        """Generate the matrix (explicit stream => exact reproducibility)."""
        return get_model(self.model).build(
            dict(self.params), resolve_rng(rng), self.workload_name)

    def workload_spec(self):
        """A :class:`~repro.tensor.suite.WorkloadSpec` wrapping this model.

        The paired ``B`` operand of general SpMSpM falls back to the suite's
        default derivation — a fresh instance of the same model on an
        independent deterministic stream.
        """
        from repro.tensor.suite import WorkloadSpec  # suite imports us lazily

        model = get_model(self.model)
        rows, cols, nnz_hint = model.metadata(dict(self.params))
        points = rows * cols
        density = min(nnz_hint, points) / points if points else 0.0
        return WorkloadSpec(
            name=self.workload_name,
            category="synthetic",
            description=f"{model.title} ({self.params_label})",
            paper_rows=rows,
            paper_cols=cols,
            paper_sparsity=max(0.0, 1.0 - density),
            builder=self.build,
        )


def spec_from_token(token: tuple) -> SynthSpec:
    """Rebuild a :class:`SynthSpec` from its :attr:`SynthSpec.token`.

    The inverse of ``token`` (revalidated against the registry), used by
    :func:`repro.tensor.suite.suite_from_token` in scheduler workers.
    """
    model, params = token
    return SynthSpec(model=model, params=tuple(params))


def parse_synth_spec(text: str) -> SynthSpec:
    """Parse the CLI syntax ``model[:param=value,param=value,...]``.

    Examples: ``uniform``, ``banded:bandwidth=24``,
    ``power_law_rows:n=1200,nnz=14000,alpha=2.1``.  Values parse as ``int``
    when possible, else ``float``; the model's defaults fix the final type.
    """
    model, _, param_text = text.strip().partition(":")
    if not model:
        raise ValueError(f"empty sparsity-model spec {text!r}")
    params: Dict[str, ParamValue] = {}
    for part in param_text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value_text = part.partition("=")
        key, value_text = key.strip(), value_text.strip()
        if not sep or not key or not value_text:
            raise ValueError(
                f"malformed parameter {part!r} in synth spec {text!r}; "
                f"expected key=value")
        try:
            value: ParamValue = int(value_text)
        except ValueError:
            try:
                value = float(value_text)
            except ValueError:
                raise ValueError(
                    f"parameter {key!r} in synth spec {text!r} must be "
                    f"numeric, got {value_text!r}") from None
        if key in params:
            raise ValueError(
                f"parameter {key!r} given twice in synth spec {text!r}")
        params[key] = value
    return SynthSpec(model=model, params=tuple(params.items()))


def specs_by_workload_name(suite) -> Dict[str, SynthSpec]:
    """Map workload name → :class:`SynthSpec` for a synthetic suite.

    Returns ``{}`` for suites that are not synth-scoped (canonical, corpus or
    custom).  Subsets keep the parent's scope, so the mapping may contain
    more names than the subset exposes — callers index by workload name.
    """
    token = getattr(suite, "cache_token", None)
    if token is None:
        return {}
    scope = token[0]
    if not (isinstance(scope, tuple) and len(scope) == 2 and scope[0] == "synth"):
        return {}
    return {spec.workload_name: spec
            for spec in (spec_from_token(entry) for entry in scope[1])}


def tile_occupancy_cv(matrix: SparseMatrix, *, grid: int = 16) -> float:
    """Coefficient of variation of tile occupancies on a ``grid × grid`` split.

    A scale-free summary of structure skew: 0 for perfectly even tilings,
    growing with banding/blocking and largest for hub-dominated matrices.
    The ``table4`` experiment reports it next to the overbooking benefit.
    """
    tile_rows = max(1, -(-matrix.num_rows // grid))
    tile_cols = max(1, -(-matrix.num_cols // grid))
    occupancies = matrix.tile_occupancies(tile_rows, tile_cols,
                                          include_empty=True)
    occupancies = np.asarray(occupancies, dtype=np.float64)
    mean = occupancies.mean() if occupancies.size else 0.0
    if mean == 0.0:
        return 0.0
    return float(occupancies.std() / mean)


def synth_specs(specs: Sequence[Union[str, SynthSpec]]) -> Tuple[SynthSpec, ...]:
    """Normalize a mixed sequence of CLI strings / specs into specs."""
    return tuple(spec if isinstance(spec, SynthSpec) else parse_synth_spec(spec)
                 for spec in specs)
