"""Compressed Sparse Fiber (CSF) fiber-tree representation.

ExTensor (and the terminology the paper adopts from Sze et al.) views a sparse
tensor as a *fiber tree*: each level of the tree corresponds to one dimension
("rank"), and each fiber holds the coordinates that are populated at that
level along with payloads that are either the next-level fibers or, at the
leaves, the nonzero values.

The accelerator model uses this representation to count metadata traffic and
to drive the coordinate-intersection unit: intersecting two fibers produces
the coordinates where *both* operands have nonzeros, which is the set of
effectual multiplications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.tensor.sparse import SparseMatrix


@dataclass
class Fiber:
    """A single fiber: sorted coordinates with one payload per coordinate.

    Payloads are either :class:`Fiber` instances (non-leaf levels) or floats
    (leaf level).
    """

    coords: List[int] = field(default_factory=list)
    payloads: List[object] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.coords) != len(self.payloads):
            raise ValueError("coords and payloads must have the same length")
        if any(b <= a for a, b in zip(self.coords, self.coords[1:])):
            raise ValueError("fiber coordinates must be strictly increasing")

    def __len__(self) -> int:
        return len(self.coords)

    def __iter__(self) -> Iterator[Tuple[int, object]]:
        return iter(zip(self.coords, self.payloads))

    @property
    def occupancy(self) -> int:
        """Number of populated coordinates in this fiber."""
        return len(self.coords)

    def lookup(self, coordinate: int) -> object | None:
        """Return the payload at ``coordinate`` or ``None`` when absent."""
        index = int(np.searchsorted(self.coords, coordinate))
        if index < len(self.coords) and self.coords[index] == coordinate:
            return self.payloads[index]
        return None

    def intersect(self, other: "Fiber") -> List[Tuple[int, object, object]]:
        """Two-finger intersection of two fibers.

        Returns the list of ``(coordinate, payload_self, payload_other)`` for
        coordinates present in both fibers.  The number of *steps* the
        intersection hardware takes is reported by :func:`intersection_steps`.
        """
        result: List[Tuple[int, object, object]] = []
        i, j = 0, 0
        while i < len(self.coords) and j < len(other.coords):
            a, b = self.coords[i], other.coords[j]
            if a == b:
                result.append((a, self.payloads[i], other.payloads[j]))
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return result


def intersection_steps(fiber_a: Fiber, fiber_b: Fiber) -> int:
    """Number of comparator steps a two-finger intersection takes.

    Each step advances at least one finger, so the step count is bounded by
    ``len(a) + len(b)`` and is the quantity the accelerator model charges to
    the intersection unit.
    """
    i, j, steps = 0, 0, 0
    ca, cb = fiber_a.coords, fiber_b.coords
    while i < len(ca) and j < len(cb):
        steps += 1
        if ca[i] == cb[j]:
            i += 1
            j += 1
        elif ca[i] < cb[j]:
            i += 1
        else:
            j += 1
    return steps


class CompressedSparseFiber:
    """A two-level CSF (row fiber of column fibers) built from a matrix.

    The top-level fiber enumerates the populated rows; each payload is the
    fiber of populated columns within that row, whose payloads are the values.

    The class exposes the quantities the accelerator model charges for:

    * :attr:`metadata_words` — number of coordinate words stored, i.e. the
      compressed-format overhead moved alongside values;
    * :attr:`data_words` — number of value words;
    * :meth:`row_fiber` — per-row fibers for intersection accounting.
    """

    def __init__(self, matrix: SparseMatrix):
        self._matrix = matrix
        csr = matrix.csr
        self._indptr = csr.indptr
        self._indices = csr.indices
        self._data = csr.data
        populated = np.flatnonzero(np.diff(self._indptr)).astype(np.int64)
        self._populated_rows = populated

    @property
    def matrix(self) -> SparseMatrix:
        """The source matrix."""
        return self._matrix

    @property
    def populated_rows(self) -> np.ndarray:
        """Row coordinates that contain at least one nonzero."""
        return self._populated_rows

    @property
    def data_words(self) -> int:
        """Number of stored nonzero values."""
        return int(self._matrix.nnz)

    @property
    def metadata_words(self) -> int:
        """Number of coordinate words in the two-level CSF.

        One word per populated row (top-level coordinates) plus one word per
        nonzero (column coordinates).
        """
        return int(len(self._populated_rows) + self._matrix.nnz)

    @property
    def footprint_words(self) -> int:
        """Total words (values + metadata) a buffer holding the tensor needs."""
        return self.data_words + self.metadata_words

    def row_fiber(self, row: int) -> Fiber:
        """The fiber of populated columns in ``row`` (empty fiber if none)."""
        if not 0 <= row < self._matrix.num_rows:
            raise IndexError(f"row {row} outside [0, {self._matrix.num_rows})")
        start, stop = self._indptr[row], self._indptr[row + 1]
        coords = [int(c) for c in self._indices[start:stop]]
        payloads = [float(v) for v in self._data[start:stop]]
        return Fiber(coords, payloads)

    def top_fiber(self) -> Fiber:
        """The root fiber whose payloads are the per-row column fibers."""
        coords = [int(r) for r in self._populated_rows]
        payloads = [self.row_fiber(r) for r in coords]
        return Fiber(coords, payloads)

    def to_dict(self) -> Dict[int, Dict[int, float]]:
        """Nested-dict view ``{row: {col: value}}`` (tests and examples)."""
        result: Dict[int, Dict[int, float]] = {}
        for row in self._populated_rows:
            fiber = self.row_fiber(int(row))
            result[int(row)] = dict(zip(fiber.coords, fiber.payloads))
        return result
