"""The overbooking tiling strategy and the baselines it is compared against.

A *tiler* turns (matrix, buffer capacity) into a concrete row-block
coordinate-space tiling — the tile construction used by the evaluated
ExTensor dataflow (expand along the shared K dimension to its full extent
first, then along M).  Three tilers are provided, one per evaluated
accelerator variant:

* :class:`NaiveTiler` (ExTensor-N): assumes dense tiles, so a buffer of ``b``
  words affords ``b / K`` rows.  Zero tiling tax, lowest utilization.
* :class:`PrescientTiler` (ExTensor-P): the largest row-block whose *maximum
  observed* occupancy fits the buffer.  Requires traversing the tensor for
  every candidate size (recorded in the tiling tax).
* :class:`OverbookingTiler` (ExTensor-OB): sizes the block with Swiftiles so
  that roughly ``y`` of the tiles overbook the buffer; overbooked tiles are
  handled by Tailors at runtime.

All three share the :class:`TilerResult` interface consumed by the
accelerator model and the experiment harness.

Tiler results are **memoized per matrix**: ``TilerResult`` is immutable and a
tiler is a deterministic function of ``(matrix, strategy parameters,
capacity)``, so each tiler stores its result in ``matrix.memo`` keyed by its
configuration.  The engine evaluates every workload under three variants and
two memory levels, and the experiment harness sweeps parameters on top — the
cache makes each distinct tiling computed exactly once per matrix instance.
(The overbooking tiler only caches when its random source is a seed, i.e.
reproducible; passing a live ``numpy`` generator bypasses the cache.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.swiftiles import Swiftiles, SwiftilesConfig, SwiftilesEstimate
from repro.tensor.sparse import SparseMatrix
from repro.tiling.base import Tiling, TilingTax
from repro.tiling.coordinate import (
    dense_row_block_rows,
    prescient_row_block_rows,
    row_block_tiling,
)
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class TilerResult:
    """Outcome of applying a tiler to one operand.

    Attributes
    ----------
    strategy:
        Human-readable strategy name (matches the accelerator variant).
    block_rows:
        Rows per tile of the produced row-block tiling.
    tile_size:
        Coordinate-space tile size (``block_rows * num_cols``).
    tiling:
        The concrete tiling (per-tile occupancies and ranges).
    tax:
        Preprocessing/matching cost incurred to choose the tile size.
    swiftiles:
        The Swiftiles estimate when the overbooking tiler produced the result.
    """

    strategy: str
    block_rows: int
    tile_size: int
    tiling: Tiling
    tax: TilingTax
    swiftiles: Optional[SwiftilesEstimate] = None

    def overbooking_rate(self, capacity: int) -> float:
        """Fraction of tiles that exceed ``capacity``."""
        return self.tiling.overbooking_rate(capacity)

    def buffer_utilization(self, capacity: int) -> float:
        """Average utilization of a buffer of ``capacity`` over the tiles."""
        return self.tiling.buffer_utilization(capacity)


def _memoized_tile(matrix: SparseMatrix, cache_key, build):
    """Look up / populate a :class:`TilerResult` in ``matrix.memo``.

    ``cache_key`` of ``None`` disables memoization (non-reproducible tilers).
    """
    if cache_key is None:
        return build()
    result = matrix.memo.get(cache_key)
    if result is None:
        result = build()
        matrix.memo[cache_key] = result
    return result


class NaiveTiler:
    """ExTensor-N's tiling: uniform shape sized for the dense worst case."""

    name = "uniform-shape (dense worst case)"

    def __init__(self, *, min_block_rows: int = 1):
        check_positive_int(min_block_rows, "min_block_rows")
        self._min_block_rows = min_block_rows

    def tile(self, matrix: SparseMatrix, capacity: int) -> TilerResult:
        """Tile ``matrix`` for a buffer of ``capacity`` words, assuming density."""
        check_positive_int(capacity, "capacity")
        key = ("tiler", self.name, self._min_block_rows, capacity)
        return _memoized_tile(matrix, key, lambda: self._build(matrix, capacity))

    def _build(self, matrix: SparseMatrix, capacity: int) -> TilerResult:
        block_rows = max(self._min_block_rows,
                         dense_row_block_rows(capacity, matrix.num_cols))
        block_rows = min(block_rows, matrix.num_rows)
        tiling = row_block_tiling(matrix, block_rows, strategy=self.name)
        return TilerResult(
            strategy=self.name,
            block_rows=block_rows,
            tile_size=block_rows * matrix.num_cols,
            tiling=tiling,
            tax=TilingTax(),
        )


class PrescientTiler:
    """ExTensor-P's tiling: largest uniform shape whose worst tile still fits."""

    name = "prescient uniform shape"

    def tile(self, matrix: SparseMatrix, capacity: int) -> TilerResult:
        """Tile ``matrix`` using full knowledge of per-tile occupancies."""
        check_positive_int(capacity, "capacity")
        key = ("tiler", self.name, capacity)
        return _memoized_tile(matrix, key, lambda: self._build(matrix, capacity))

    def _build(self, matrix: SparseMatrix, capacity: int) -> TilerResult:
        block_rows, tax = prescient_row_block_rows(matrix, capacity)
        block_rows = min(max(1, block_rows), matrix.num_rows)
        tiling = row_block_tiling(matrix, block_rows, strategy=self.name, tax=tax)
        return TilerResult(
            strategy=self.name,
            block_rows=block_rows,
            tile_size=block_rows * matrix.num_cols,
            tiling=tiling,
            tax=tax,
        )


class OverbookingTiler:
    """The paper's strategy: Swiftiles-sized tiles that may overbook the buffer."""

    name = "overbooking (Swiftiles)"

    def __init__(self, config: SwiftilesConfig | None = None, *, rng: RandomState = None):
        self.config = config or SwiftilesConfig()
        self._rng = rng

    def _cache_key(self, capacity: int):
        """Memoization key, or ``None`` when the random source is stateful.

        A seed (or the default ``None`` seed) makes the sampling stream a pure
        function of the configuration, so results can be shared; a live
        generator advances with every call and must not be cached.
        """
        if self._rng is not None and not isinstance(self._rng, (int, np.integer)):
            return None
        cfg = self.config
        return ("tiler", self.name, cfg.overbooking_target, cfg.samples_in_tail,
                cfg.sample_all_tiles, self._rng, capacity)

    def tile(self, matrix: SparseMatrix, capacity: int) -> TilerResult:
        """Tile ``matrix`` targeting ``config.overbooking_target`` overbooked tiles."""
        check_positive_int(capacity, "capacity")
        return _memoized_tile(matrix, self._cache_key(capacity),
                              lambda: self._build(matrix, capacity))

    def _build(self, matrix: SparseMatrix, capacity: int) -> TilerResult:
        estimator = Swiftiles(self.config, rng=self._rng)
        estimate = estimator.estimate(matrix, capacity)
        block_rows = max(1, int(round(estimate.target_size / matrix.num_cols)))
        block_rows = min(block_rows, matrix.num_rows)
        tiling = row_block_tiling(matrix, block_rows, strategy=self.name,
                                  tax=estimate.tax)
        return TilerResult(
            strategy=self.name,
            block_rows=block_rows,
            tile_size=block_rows * matrix.num_cols,
            tiling=tiling,
            tax=estimate.tax,
            swiftiles=estimate,
        )
