"""Tailors: the Tail-Overbooked Buffer storage idiom (Section 3 of the paper).

A Tailor behaves exactly like a buffet while the tile it holds fits within the
buffer.  The moment the buffer is full and more of the tile still needs to
arrive (i.e. the tile *overbooks* the buffer), the Tailor switches the tail of
the buffer into a FIFO-managed streaming region:

* the first *overwriting fill* (``OWFill``) atomically reclaims the last
  ``fifo_region_size`` slots of the buffet-managed region and writes the first
  bumped element there;
* subsequent ``OWFill`` operations stream further bumped elements through that
  region, replacing the oldest streamed element (FIFO policy);
* reads with an index below the FIFO head keep hitting the buffet-managed
  region unchanged — that resident portion of the tile is what keeps being
  reused;
* reads with an index at or past the FIFO head are served from the FIFO
  region; the Tailor tracks which tile index each streamed slot currently
  holds, which realizes the paper's *FIFO offset* bookkeeping
  (``Index - FIFO offset`` gives the position to access).

The implementation below is a functional model with exact slot tracking: it
returns real data (so correctness can be asserted end to end), counts every
action (so energy can be charged), and exposes the FIFO offset so the
operation-by-operation example of Fig. 5 can be reproduced as a golden test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.buffers.base import BufferFullError, BufferStallError, StorageIdiom
from repro.buffers.credits import CreditChannel
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class TailorsConfig:
    """Static configuration of a Tailor.

    Attributes
    ----------
    capacity:
        Buffer capacity in data words.
    fifo_region_size:
        Number of slots at the tail reserved for streaming once the buffer is
        overbooked.  The paper sizes this region statically so that the
        round-trip latency to the parent can be hidden by double-buffering
        (Section 3.3); it must be smaller than the capacity so that some data
        remains resident for reuse.
    """

    capacity: int
    fifo_region_size: int

    def __post_init__(self) -> None:
        check_positive_int(self.capacity, "capacity")
        check_positive_int(self.fifo_region_size, "fifo_region_size")
        if self.fifo_region_size >= self.capacity:
            raise ValueError(
                "fifo_region_size must be smaller than capacity "
                f"(got {self.fifo_region_size} >= {self.capacity})"
            )

    @property
    def resident_capacity(self) -> int:
        """Slots that keep holding the head of the tile when overbooked."""
        return self.capacity - self.fifo_region_size

    @classmethod
    def for_latency(cls, capacity: int, *, round_trip_latency: int = 2,
                    fill_bandwidth: int = 1) -> "TailorsConfig":
        """Size the FIFO region to hide a parent round-trip latency.

        ``round_trip_latency * fill_bandwidth`` words are in flight while a
        request travels to the parent and back; double-buffering that amount
        keeps the child from starving, which is the static sizing rule the
        paper uses for all workloads.
        """
        fifo = min(capacity - 1, max(1, 2 * round_trip_latency * fill_bandwidth))
        return cls(capacity=capacity, fifo_region_size=fifo)


class Tailors(StorageIdiom):
    """Functional model of a Tail-Overbooked Buffer.

    The buffer has two operating modes:

    * **buffet mode** (not overbooked): :meth:`fill`, :meth:`read`,
      :meth:`update`, :meth:`shrink` behave exactly like
      :class:`repro.buffers.buffet.Buffet`;
    * **overbooked mode** (after the first :meth:`overwriting_fill`): the last
      ``fifo_region_size`` physical slots become the FIFO-managed region;
      reads below the FIFO head are unchanged, reads into the region return
      the streamed element with the requested tile index.
    """

    def __init__(self, config: TailorsConfig, name: str = "tailors"):
        super().__init__(capacity=config.capacity, name=name)
        self.config = config
        self._slots: List[Optional[Any]] = [None] * config.capacity
        # Tile index currently held by each physical slot (None = invalid).
        self._slot_index: List[Optional[int]] = [None] * config.capacity
        self._occupancy = 0
        self._overbooked = False
        # Next FIFO slot (physical offset) an overwriting fill will write, and
        # a monotonically increasing stamp used to find the least recent entry.
        self._fifo_next = 0
        self._fill_stamp = 0
        self._slot_stamp: List[int] = [0] * config.capacity
        # Index → physical slot for the FIFO-managed region, kept in stream
        # (insertion) order: the first key is always the least recently
        # streamed element still resident.  Maintained on every overwriting
        # fill and cleared on shrink/reset, so FIFO reads and the FIFO-offset
        # bookkeeping are O(1) instead of a linear scan of the region.
        self._streamed_slots: Dict[int, int] = {}
        self._credits = CreditChannel(config.capacity)
        # Tile indices ever bumped (streamed) — used by reuse accounting.
        self._streamed_fills = 0

    # ------------------------------------------------------------------ #
    # State and derived quantities
    # ------------------------------------------------------------------ #
    @property
    def occupancy(self) -> int:
        return self._occupancy

    @property
    def is_overbooked(self) -> bool:
        """Whether the Tailor has switched to split buffet/FIFO management."""
        return self._overbooked

    @property
    def fifo_head(self) -> int:
        """Physical offset where the FIFO-managed region starts.

        Equals the size of the buffet-managed region; only meaningful once the
        buffer is overbooked (before that the whole buffer is buffet-managed).
        """
        return self.config.resident_capacity

    @property
    def fifo_region_size(self) -> int:
        return self.config.fifo_region_size

    @property
    def credits(self) -> CreditChannel:
        """Credit channel toward the parent level."""
        return self._credits

    @property
    def streamed_fills(self) -> int:
        """Number of overwriting fills performed (bumped words streamed in)."""
        return self._streamed_fills

    @property
    def fifo_offset(self) -> int:
        """The paper's FIFO offset bookkeeping value.

        Defined as the difference between the tile index of the *least
        recently streamed* element currently in the FIFO-managed region and
        the FIFO head.  ``Index - fifo_offset`` then gives the queue position
        to access, which is how reads into the FIFO region are served without
        changing the buffet read semantics (Section 3.3.2).  Returns 0 when
        the buffer is not overbooked.
        """
        if not self._overbooked or not self._streamed_slots:
            return 0
        # Streaming writes evict in insertion order, so the first key of the
        # index→slot map is the least recently streamed resident element.
        oldest_index = next(iter(self._streamed_slots))
        return oldest_index - self.fifo_head

    def reset(self) -> None:
        self._slots = [None] * self.capacity
        self._slot_index = [None] * self.capacity
        self._slot_stamp = [0] * self.capacity
        self._streamed_slots = {}
        self._occupancy = 0
        self._overbooked = False
        self._fifo_next = 0
        self._fill_stamp = 0
        self._credits.reset()

    def contents(self) -> List[Any]:
        """Data currently valid, in physical-slot order (``None`` = invalid)."""
        return list(self._slots)

    def resident_indices(self) -> List[int]:
        """Tile indices currently held anywhere in the buffer."""
        return [idx for idx in self._slot_index if idx is not None]

    # ------------------------------------------------------------------ #
    # Buffet-compatible operations
    # ------------------------------------------------------------------ #
    def can_fill(self) -> bool:
        """Whether a (non-overwriting) fill can be accepted."""
        return not self.is_full

    def fill(self, value: Any) -> None:
        """Buffet fill: append ``value`` at the tail of the queue.

        Only legal while the buffer is not full and not overbooked — once
        streaming has begun, new data must arrive through
        :meth:`overwriting_fill` until a shrink drains the tile
        (Section 3.3.2, "Maintaining support for Fill").
        """
        if self._overbooked:
            raise BufferFullError(
                f"{self.name}: plain fill while overbooked; use overwriting_fill"
            )
        if self.is_full:
            raise BufferFullError(f"{self.name}: fill into a full buffer")
        self._credits.consume(1)
        offset = self._occupancy
        self._slots[offset] = value
        self._slot_index[offset] = offset
        self._fill_stamp += 1
        self._slot_stamp[offset] = self._fill_stamp
        self._occupancy += 1
        self.counters.fills += 1

    def overwriting_fill(self, value: Any, index: int | None = None) -> None:
        """Stream one bumped element of the tile through the FIFO region.

        Parameters
        ----------
        value:
            The data word being streamed.
        index:
            The tile index this word corresponds to.  When omitted, the word
            is assumed to be the next sequential element of the tile (one past
            the largest index seen so far), which matches the scan access
            pattern of the ExTensor dataflow.

        The first overwriting fill flips the buffer into overbooked mode:
        the last ``fifo_region_size`` slots of the buffet-managed region are
        invalidated (their data will be re-streamed later if needed) and the
        streamed word takes the first of them.
        """
        if not self.is_full and not self._overbooked:
            raise BufferFullError(
                f"{self.name}: overwriting fill is only legal when the buffer is full "
                "(streaming must not race with plain fills)"
            )
        if index is None:
            highest = max((i for i in self._slot_index if i is not None), default=-1)
            index = highest + 1

        if not self._overbooked:
            # Initial overwriting fill: carve the FIFO region out of the tail
            # of the buffet-managed region.
            self._overbooked = True
            for offset in range(self.fifo_head, self.capacity):
                self._slots[offset] = None
                self._slot_index[offset] = None
            self._streamed_slots = {}
            self._fifo_next = self.fifo_head

        offset = self._fifo_next
        evicted = self._slot_index[offset]
        if evicted is not None and self._streamed_slots.get(evicted) == offset:
            del self._streamed_slots[evicted]
        self._streamed_slots.pop(index, None)
        self._streamed_slots[index] = offset
        self._slots[offset] = value
        self._slot_index[offset] = index
        self._fill_stamp += 1
        self._slot_stamp[offset] = self._fill_stamp
        self._fifo_next += 1
        if self._fifo_next >= self.capacity:
            self._fifo_next = self.fifo_head
        self.counters.overwriting_fills += 1
        self._streamed_fills += 1

    def read(self, index: int) -> Any:
        """Read the element of the current tile with tile index ``index``.

        Reads below the FIFO head (or any read while not overbooked) behave
        exactly like buffet reads.  Reads at or past the FIFO head are served
        from the FIFO-managed region; if the requested element is not
        currently streamed in, the read stalls
        (:class:`~repro.buffers.base.BufferStallError`), signalling that the
        driver must issue the corresponding :meth:`overwriting_fill` first.
        """
        if index < 0:
            raise IndexError(f"{self.name}: negative index {index}")
        if not self._overbooked or index < self.fifo_head:
            if index >= self._occupancy:
                raise BufferStallError(
                    f"{self.name}: read of index {index} but occupancy is {self._occupancy}"
                )
            self.counters.reads += 1
            return self._slots[index]

        offset = self._find_streamed(index)
        if offset is None:
            raise BufferStallError(
                f"{self.name}: tile index {index} is not resident in the FIFO region; "
                "stream it with overwriting_fill first"
            )
        self.counters.reads += 1
        return self._slots[offset]

    def offset_of(self, index: int) -> int:
        """Physical buffer offset that currently holds tile index ``index``.

        Used by the Fig. 5 golden test to check the index→offset translation;
        raises :class:`BufferStallError` when the element is not resident.
        """
        if not self._overbooked or index < self.fifo_head:
            if index >= self._occupancy:
                raise BufferStallError(f"{self.name}: index {index} not resident")
            return index
        offset = self._find_streamed(index)
        if offset is None:
            raise BufferStallError(f"{self.name}: index {index} not resident")
        return offset

    def update(self, index: int, value: Any) -> None:
        """Overwrite the element with tile index ``index`` (must be resident)."""
        offset = self.offset_of(index)
        self._slots[offset] = value
        self.counters.updates += 1

    def shrink(self, num: int = 1) -> None:
        """Free ``num`` elements from the head of the buffer.

        A shrink ends the current tile's residency of those slots and releases
        credits to the parent.  Per Section 3.3.2 a shrink also terminates the
        overbooked episode: the next tile starts with a clean buffet-managed
        buffer (backfill of any still-needed data arrives as ordinary fills).
        """
        check_positive_int(num, "num")
        if num > self._occupancy:
            raise BufferStallError(
                f"{self.name}: shrink of {num} but occupancy is {self._occupancy}"
            )
        remaining = [
            (self._slot_index[o], self._slots[o], self._slot_stamp[o])
            for o in range(self.capacity)
            if self._slot_index[o] is not None and self._slot_index[o] >= num
        ]
        if remaining:
            self._slots = [None] * self.capacity
            self._slot_index = [None] * self.capacity
            self._slot_stamp = [0] * self.capacity
            # Re-base the surviving elements to their new indices at the head.
            remaining.sort(key=lambda item: item[0])
            for new_offset, (old_index, value, stamp) in enumerate(remaining):
                if new_offset >= self.capacity:
                    break
                self._slots[new_offset] = value
                self._slot_index[new_offset] = old_index - num
                self._slot_stamp[new_offset] = stamp
            self._occupancy = min(len(remaining), self.capacity)
        else:
            # Nothing survives: invalidate the occupied slots in place rather
            # than allocating three fresh full-capacity arrays.
            for offset in range(self.capacity):
                if self._slot_index[offset] is not None:
                    self._slots[offset] = None
                    self._slot_index[offset] = None
                    self._slot_stamp[offset] = 0
            self._occupancy = 0
        self._streamed_slots = {}
        self._overbooked = False
        self._fifo_next = 0
        self._credits.release(min(num, self._credits.initial_credits - self._credits.available))
        self.counters.shrinks += num

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _find_streamed(self, index: int) -> Optional[int]:
        return self._streamed_slots.get(index)
