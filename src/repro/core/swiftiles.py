"""Swiftiles: statistical tile-size selection for overbooking (Section 4).

Swiftiles picks a coordinate-space tile *size* such that approximately ``y``
(a fraction) of the resulting tiles overbook a buffer of capacity ``b``.  It
does so with a one-shot, sampling-based procedure whose cost is independent of
the tensor size:

1. **Initial estimate** (Eq. 2):  ``T_initial = b / (1 - s)`` where ``s`` is
   the tensor's global sparsity.  This is the tile size whose *expected*
   occupancy equals the buffer capacity, i.e. the 50%-overbooking point for a
   uniformly sparse tensor.  It needs only the tensor shape and nnz.
2. **Tile sampling**:  tile the tensor (conceptually) at ``T_initial`` and
   sample ``ceil(k / y)`` tile occupancies at random, so that about ``k``
   samples land in the top ``y`` quantile — enough to resolve the quantile the
   next step scales against.
3. **Distribution scaling** (Eq. 3):  find the occupancy ``Q_y`` that ``y`` of
   the sampled tiles exceed and linearly rescale the tile size:
   ``T_target = T_initial * b / Q_y``.  The linearity assumption — that tile
   occupancies scale proportionally with tile size for modest size changes —
   is evaluated in Fig. 11/Fig. 12 of the paper and by the corresponding
   experiments in this repository.

The tile "size" manipulated here is the uncompressed coordinate-space size
(number of points).  How a size is turned into a concrete tile *shape* is the
job of the dataflow-specific tiler in :mod:`repro.core.overbooking` (the
evaluated ExTensor dataflow expands along the shared K dimension first, so a
size maps to a number of rows of the stationary operand).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.tensor.sparse import SparseMatrix
from repro.tiling.base import TilingTax
from repro.tiling.stats import OccupancyStats
from repro.utils.rng import RandomState, resolve_rng
from repro.utils.validation import check_fraction, check_positive, check_positive_int


@dataclass(frozen=True)
class SwiftilesConfig:
    """Parameters of the Swiftiles estimator.

    Attributes
    ----------
    overbooking_target:
        The paper's ``y``: the desired fraction of tiles that overbook the
        buffer.  The evaluation uses 0.10.
    samples_in_tail:
        The paper's ``k``: the number of samples expected to land in the top
        ``y`` quantile.  The total number of sampled tiles is ``ceil(k / y)``.
        The evaluation uses 10 (so 100 tiles are sampled at ``y = 10%``).
    sample_all_tiles:
        When true, every tile is measured instead of sampling — used by the
        Fig. 11/12 experiments to isolate the scaling error from the sampling
        error.
    """

    overbooking_target: float = 0.10
    samples_in_tail: int = 10
    sample_all_tiles: bool = False

    def __post_init__(self) -> None:
        check_fraction(self.overbooking_target, "overbooking_target",
                       inclusive_low=True, inclusive_high=True)
        check_positive_int(self.samples_in_tail, "samples_in_tail")

    @property
    def num_samples(self) -> int:
        """Total number of tiles to sample (``ceil(k / y)``, at least ``k``)."""
        if self.overbooking_target <= 0.0:
            return self.samples_in_tail * 100
        return int(math.ceil(self.samples_in_tail / self.overbooking_target))


@dataclass(frozen=True)
class SwiftilesEstimate:
    """The outcome of one Swiftiles run.

    Attributes
    ----------
    initial_size:
        ``T_initial`` — coordinate-space tile size of the initial estimate.
    target_size:
        ``T_target`` — the final predicted tile size.
    quantile_occupancy:
        ``Q_y`` measured on the sampling distribution at ``T_initial``.
    sampled_occupancies:
        The sampled tile occupancies (at ``T_initial``).
    buffer_capacity:
        The capacity the estimate targets.
    overbooking_target:
        The requested ``y``.
    tax:
        Preprocessing cost actually incurred (elements touched while
        sampling), for the Table 1 comparison.
    """

    initial_size: float
    target_size: float
    quantile_occupancy: float
    sampled_occupancies: np.ndarray
    buffer_capacity: int
    overbooking_target: float
    tax: TilingTax

    @property
    def scale_factor(self) -> float:
        """``T_target / T_initial`` — how much the distribution was rescaled."""
        if self.initial_size == 0:
            return 1.0
        return self.target_size / self.initial_size

    def predicted_distribution(self) -> OccupancyStats:
        """The sampled distribution linearly rescaled to ``T_target``.

        This is the ``T_target (predicted)`` curve of Fig. 6c / Fig. 13.
        """
        return OccupancyStats(self.sampled_occupancies).scaled(self.scale_factor)


class Swiftiles:
    """The Swiftiles tile-size estimator.

    Parameters
    ----------
    config:
        Estimator parameters (``y``, ``k``, sampling mode).
    rng:
        Randomness for tile sampling; fixed by default so experiments are
        reproducible.
    """

    def __init__(self, config: SwiftilesConfig | None = None, *, rng: RandomState = None):
        self.config = config or SwiftilesConfig()
        self._rng = resolve_rng(rng)

    # ------------------------------------------------------------------ #
    # Step 1: initial estimate
    # ------------------------------------------------------------------ #
    @staticmethod
    def initial_estimate(matrix: SparseMatrix, buffer_capacity: int) -> float:
        """``T_initial = b / (1 - s)`` (Eq. 2).

        Requires only the matrix shape and nnz — no traversal.
        """
        check_positive_int(buffer_capacity, "buffer_capacity")
        density = matrix.density
        if density <= 0.0:
            # An all-zero tensor fits anywhere; any tile size works.
            return float(matrix.size)
        return float(buffer_capacity) / density

    # ------------------------------------------------------------------ #
    # Step 2: tile sampling
    # ------------------------------------------------------------------ #
    def sample_occupancies(self, matrix: SparseMatrix, tile_size: float,
                           *, aspect_rows: Optional[int] = None) -> tuple[np.ndarray, int]:
        """Sample tile occupancies for a tiling with tiles of ``tile_size`` points.

        The tile size is turned into a row-block shape (``rows × full K``),
        matching the evaluated dataflow: ``rows = max(1, round(size / K))``.
        Returns ``(occupancies, elements_touched)`` where ``elements_touched``
        is the preprocessing cost charged to the tiling tax (nonzeros inside
        the sampled tiles only — the point of sampling is that this does not
        grow with the tensor).
        """
        check_positive(tile_size, "tile_size")
        num_cols = matrix.num_cols
        block_rows = aspect_rows or max(1, int(round(tile_size / num_cols)))
        block_rows = min(block_rows, matrix.num_rows)
        # The per-block occupancy array is memoized on the matrix, so repeated
        # estimates (parameter sweeps, multiple variants) re-read it for free.
        occupancies = matrix.row_block_occupancies(block_rows)
        num_tiles = len(occupancies)

        if self.config.sample_all_tiles or num_tiles <= self.config.num_samples:
            touched = int(occupancies.sum())
            return occupancies.astype(np.float64), touched

        chosen = self._rng.choice(num_tiles, size=self.config.num_samples, replace=False)
        sampled = occupancies[np.sort(chosen)].astype(np.float64)
        touched = int(sampled.sum())
        return sampled, touched

    # ------------------------------------------------------------------ #
    # Step 3: distribution scaling
    # ------------------------------------------------------------------ #
    def estimate(self, matrix: SparseMatrix, buffer_capacity: int) -> SwiftilesEstimate:
        """Run the full three-step Swiftiles procedure for one tensor/buffer."""
        check_positive_int(buffer_capacity, "buffer_capacity")
        y = self.config.overbooking_target

        initial_size = self.initial_estimate(matrix, buffer_capacity)
        sampled, touched = self.sample_occupancies(matrix, initial_size)
        stats = OccupancyStats(sampled) if sampled.size else None

        if stats is None or stats.total == 0:
            # Degenerate tensors: fall back to the initial estimate.
            quantile = float(buffer_capacity)
        else:
            quantile = stats.quantile_for_overbooking(y)
            quantile = max(quantile, 1.0)

        target_size = initial_size * buffer_capacity / quantile
        # Clamp to sensible coordinate-space bounds.
        target_size = float(min(max(target_size, 1.0), matrix.size))

        tax = TilingTax(preprocessing_elements=touched, candidate_sizes=1)
        return SwiftilesEstimate(
            initial_size=initial_size,
            target_size=target_size,
            quantile_occupancy=quantile,
            sampled_occupancies=sampled,
            buffer_capacity=buffer_capacity,
            overbooking_target=y,
            tax=tax,
        )

    # ------------------------------------------------------------------ #
    # Evaluation helpers (Figs. 11 and 12)
    # ------------------------------------------------------------------ #
    @staticmethod
    def observed_overbooking_rate(matrix: SparseMatrix, tile_size: float,
                                  buffer_capacity: int) -> float:
        """The overbooking rate actually obtained when tiling at ``tile_size``.

        Tiles the matrix into row blocks of the shape the size maps to and
        measures the fraction of tiles whose occupancy exceeds the capacity —
        the ground truth Swiftiles tries to steer to ``y``.
        """
        check_positive(tile_size, "tile_size")
        check_positive_int(buffer_capacity, "buffer_capacity")
        block_rows = max(1, int(round(tile_size / matrix.num_cols)))
        block_rows = min(block_rows, matrix.num_rows)
        occupancies = matrix.row_block_occupancies(block_rows)
        if occupancies.size == 0:
            return 0.0
        return float((occupancies > buffer_capacity).mean())

    def prediction_error(self, matrix: SparseMatrix, buffer_capacity: int) -> float:
        """Absolute error between the achieved and the requested overbooking rate."""
        estimate = self.estimate(matrix, buffer_capacity)
        achieved = self.observed_overbooking_rate(
            matrix, estimate.target_size, buffer_capacity)
        return abs(achieved - self.config.overbooking_target)
