"""Reuse accounting for overbooked tiles: buffets vs. Tailors vs. caches.

The cost of overbooking is lost reuse on the bumped portion of a tile
(Section 6.2).  This module quantifies that cost with two complementary
approaches:

* **trace-driven simulation** — drive an actual storage-idiom model
  (:class:`~repro.buffers.buffet.Buffet`, :class:`~repro.core.tailors.Tailors`
  or :class:`~repro.buffers.cache.LruCache`) with the scan access pattern the
  ExTensor dataflow produces (every pass over the non-stationary operand
  touches every element of the stationary tile in order) and count how many
  words had to be re-fetched from the parent level;
* **closed-form accounting** — the same counts computed analytically, used by
  the accelerator model where tiles are far too large to simulate word by
  word.  The trace-driven and analytic paths are cross-checked against each
  other in the test suite.

The headline quantities are those of Fig. 9:

* *bumped fraction* — the share of a tile's occupancy that exceeds the buffer;
* *reuse fraction* — the share of accesses served without a parent re-fetch;
* *streaming traffic* — the extra parent traffic caused by overbooking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.buffers.base import BufferFullError, BufferStallError
from repro.buffers.buffet import Buffet
from repro.buffers.cache import LruCache
from repro.core.tailors import Tailors, TailorsConfig
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ReuseReport:
    """Outcome of running one tile through a storage idiom for several passes.

    Attributes
    ----------
    idiom:
        Name of the storage idiom that produced the report.
    tile_occupancy:
        Number of nonzeros in the tile.
    capacity:
        Buffer capacity in words.
    num_passes:
        Number of complete scans over the tile (one per tile of the other
        operand that has to be matched against it).
    parent_fetches:
        Words fetched from the parent level, including the initial fill.
    total_accesses:
        Words delivered to the consumer (``tile_occupancy * num_passes``).
    """

    idiom: str
    tile_occupancy: int
    capacity: int
    num_passes: int
    parent_fetches: int
    total_accesses: int

    @property
    def overbooked(self) -> bool:
        """Whether the tile exceeded the buffer capacity."""
        return self.tile_occupancy > self.capacity

    @property
    def bumped_elements(self) -> int:
        """Nonzeros that do not fit in the buffer (0 when not overbooked)."""
        return max(0, self.tile_occupancy - self.capacity)

    @property
    def bumped_fraction(self) -> float:
        """Share of the tile that is bumped (x-axis of Fig. 9b)."""
        if self.tile_occupancy == 0:
            return 0.0
        return self.bumped_elements / self.tile_occupancy

    @property
    def reuse_fraction(self) -> float:
        """Share of accesses that did not require a parent fetch (y-axis of Fig. 9b).

        With an infinitely large buffer every access past the initial fill is
        a reuse, so the fraction approaches ``1 - 1/num_passes``; we normalize
        by that ideal so a non-overbooked tile scores 1.0.
        """
        if self.total_accesses == 0:
            return 1.0
        ideal_fetches = self.tile_occupancy
        excess = self.parent_fetches - ideal_fetches
        reusable = self.total_accesses - ideal_fetches
        if reusable <= 0:
            return 1.0
        return max(0.0, 1.0 - excess / reusable)

    @property
    def streaming_fetches(self) -> int:
        """Parent fetches beyond the initial fill (the overbooking overhead)."""
        return max(0, self.parent_fetches - self.tile_occupancy)


# --------------------------------------------------------------------------- #
# Closed forms
# --------------------------------------------------------------------------- #
def analytic_buffet_fetches(tile_occupancy: int, capacity: int, num_passes: int) -> int:
    """Parent fetches a buffet needs for ``num_passes`` scans of a tile.

    If the tile fits, it is filled once.  If it does not fit, the buffet's
    sliding-window management can only shrink from the head, so every pass has
    to drop everything and re-fill the entire tile (Fig. 3 discussion).
    """
    if tile_occupancy <= capacity:
        return tile_occupancy
    return tile_occupancy * num_passes


def analytic_tailors_fetches(tile_occupancy: int, capacity: int,
                             fifo_region_size: int, num_passes: int) -> int:
    """Parent fetches a Tailor needs for ``num_passes`` scans of a tile.

    The first ``capacity - fifo_region_size`` elements stay resident across
    passes; the remaining (bumped) elements are streamed through the FIFO
    region once per pass.
    """
    if tile_occupancy <= capacity:
        return tile_occupancy
    resident = capacity - fifo_region_size
    bumped = tile_occupancy - resident
    return resident + bumped * num_passes


def analytic_cache_scan_fetches(tile_occupancy: int, capacity: int, num_passes: int) -> int:
    """Parent fetches of an LRU cache under a repeated scan.

    A scan whose footprint exceeds the cache capacity is the canonical LRU
    pathology: by the time the scan wraps around, the head of the tile has
    already been evicted, so *every* access misses.  This is why the paper
    relates Tailors to scan-resistant replacement (BRRIP) rather than LRU.
    """
    if tile_occupancy <= capacity:
        return tile_occupancy
    return tile_occupancy * num_passes


# --------------------------------------------------------------------------- #
# Trace-driven simulation
# --------------------------------------------------------------------------- #
def _scan_indices(tile_occupancy: int, num_passes: int) -> Sequence[int]:
    for _ in range(num_passes):
        yield from range(tile_occupancy)


def simulate_buffet_tile(tile_occupancy: int, capacity: int,
                         num_passes: int = 2) -> ReuseReport:
    """Run a repeated scan of one tile through a buffet and count fetches."""
    check_positive_int(tile_occupancy, "tile_occupancy")
    check_positive_int(capacity, "capacity")
    check_positive_int(num_passes, "num_passes")

    buffet = Buffet(capacity)
    fetches = 0
    reads = 0
    if tile_occupancy <= capacity:
        for i in range(tile_occupancy):
            buffet.fill(("tile", i))
            fetches += 1
        for index in _scan_indices(tile_occupancy, num_passes):
            buffet.read(index)
            reads += 1
    else:
        # The reuse window exceeds the buffer: each pass re-fills the tile in
        # capacity-sized chunks, shrinking the previous chunk away.
        for _ in range(num_passes):
            position = 0
            while position < tile_occupancy:
                chunk = min(capacity, tile_occupancy - position)
                if buffet.occupancy:
                    buffet.shrink(buffet.occupancy)
                for i in range(chunk):
                    buffet.fill(("tile", position + i))
                    fetches += 1
                for i in range(chunk):
                    buffet.read(i)
                    reads += 1
                position += chunk
            if buffet.occupancy:
                buffet.shrink(buffet.occupancy)
    return ReuseReport(
        idiom="buffet",
        tile_occupancy=tile_occupancy,
        capacity=capacity,
        num_passes=num_passes,
        parent_fetches=fetches,
        total_accesses=reads,
    )


def simulate_tailors_tile(tile_occupancy: int, capacity: int,
                          fifo_region_size: int | None = None,
                          num_passes: int = 2) -> ReuseReport:
    """Run a repeated scan of one tile through a Tailor and count fetches.

    The driver mimics the parent's address generator: it fills the buffer
    until full, then streams every subsequently-requested non-resident element
    with an overwriting fill immediately before the read that needs it.
    """
    check_positive_int(tile_occupancy, "tile_occupancy")
    check_positive_int(capacity, "capacity")
    check_positive_int(num_passes, "num_passes")
    if fifo_region_size is None:
        fifo_region_size = max(1, min(capacity - 1, capacity // 4))

    config = TailorsConfig(capacity=capacity, fifo_region_size=fifo_region_size)
    tailor = Tailors(config)
    fetches = 0
    reads = 0

    initial = min(tile_occupancy, capacity)
    for i in range(initial):
        tailor.fill(("tile", i))
        fetches += 1

    resident_limit = capacity if tile_occupancy <= capacity else config.resident_capacity
    for index in _scan_indices(tile_occupancy, num_passes):
        if index < resident_limit:
            tailor.read(index)
        else:
            try:
                tailor.read(index)
            except (BufferStallError, BufferFullError):
                tailor.overwriting_fill(("tile", index), index=index)
                fetches += 1
                tailor.read(index)
        reads += 1
    return ReuseReport(
        idiom="tailors",
        tile_occupancy=tile_occupancy,
        capacity=capacity,
        num_passes=num_passes,
        parent_fetches=fetches,
        total_accesses=reads,
    )


def simulate_cache_tile(tile_occupancy: int, capacity: int,
                        num_passes: int = 2) -> ReuseReport:
    """Run a repeated scan of one tile through an LRU cache and count misses."""
    check_positive_int(tile_occupancy, "tile_occupancy")
    check_positive_int(capacity, "capacity")
    check_positive_int(num_passes, "num_passes")

    cache = LruCache(capacity)
    reads = 0
    for index in _scan_indices(tile_occupancy, num_passes):
        cache.access(("tile", index))
        reads += 1
    return ReuseReport(
        idiom="lru-cache",
        tile_occupancy=tile_occupancy,
        capacity=capacity,
        num_passes=num_passes,
        parent_fetches=cache.counters.misses,
        total_accesses=reads,
    )
