"""The paper's primary contribution: Tailors, Swiftiles, and overbooking.

* :mod:`repro.core.tailors` — the Tail-Overbooked Buffer storage idiom
  (Section 3): a buffet extended with an *overwriting fill* so that an
  overbooked tile streams its bumped tail through a FIFO-managed region while
  the head of the tile stays resident for reuse.
* :mod:`repro.core.reuse` — trace-driven reuse accounting that compares
  buffets, Tailors, and caches on overbooked tiles (Figs. 3 and 9b).
* :mod:`repro.core.swiftiles` — the statistical tile-size selector
  (Section 4): initial estimate, one-shot sampling, distribution scaling.
* :mod:`repro.core.overbooking` — the end-to-end overbooking tiling strategy
  that combines Swiftiles with the row-block CST construction used by the
  evaluated ExTensor dataflow, alongside the naive and prescient tilers it is
  compared against.
"""

from repro.core.tailors import Tailors, TailorsConfig
from repro.core.reuse import ReuseReport, simulate_buffet_tile, simulate_tailors_tile, simulate_cache_tile
from repro.core.swiftiles import SwiftilesConfig, SwiftilesEstimate, Swiftiles
from repro.core.overbooking import (
    NaiveTiler,
    OverbookingTiler,
    PrescientTiler,
    TilerResult,
)

__all__ = [
    "Tailors",
    "TailorsConfig",
    "ReuseReport",
    "simulate_buffet_tile",
    "simulate_tailors_tile",
    "simulate_cache_tile",
    "SwiftilesConfig",
    "SwiftilesEstimate",
    "Swiftiles",
    "NaiveTiler",
    "OverbookingTiler",
    "PrescientTiler",
    "TilerResult",
]
