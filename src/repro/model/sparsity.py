"""Per-tile occupancy sparsity model.

The paper implements "a new sparsity model in Sparseloop to capture sparsity
characteristics based on the per-tile data occupancy extracted from sparse
tensors" (Section 5.1).  :class:`TileOccupancyModel` is that model for this
reproduction: given an operand and a tiler, it produces the per-tile occupancy
arrays at each memory level, plus the derived statistics (overbooking rate,
buffer utilization, bumped fraction) the traffic equations and the experiment
harness consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional

import numpy as np

from repro.core.overbooking import TilerResult
from repro.tensor.sparse import SparseMatrix
from repro.tiling.stats import OccupancyStats
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class TileOccupancyModel:
    """Occupancy statistics of one operand tiled at one memory level.

    Attributes
    ----------
    operand:
        Operand name (``"A"`` or ``"B"``).
    level:
        Memory level name (``"global_buffer"`` or ``"pe_buffer"``).
    capacity:
        The level's per-operand capacity in words.
    fifo_words:
        Tailors FIFO-region size at that level (used to compute the resident
        portion of overbooked tiles).
    tiler_result:
        The tiling chosen by the variant's tiler for this operand/level.
    """

    operand: str
    level: str
    capacity: int
    fifo_words: int
    tiler_result: TilerResult

    def __post_init__(self) -> None:
        check_positive_int(self.capacity, "capacity")
        check_positive_int(self.fifo_words, "fifo_words")

    @cached_property
    def occupancies(self) -> np.ndarray:
        """Per-tile occupancy array (read-only, shared with the tiling).

        The tiling stores its occupancies as one array, so this is a cached
        reference, not a rebuild — every property below is a vectorized
        reduction over it.
        """
        return self.tiler_result.tiling.occupancies()

    @property
    def num_tiles(self) -> int:
        return int(len(self.occupancies))

    @cached_property
    def total_nonzeros(self) -> int:
        return int(self.occupancies.sum())

    @property
    def resident_capacity(self) -> int:
        """Words of an overbooked tile that stay resident under Tailors."""
        return max(1, self.capacity - self.fifo_words)

    @cached_property
    def overbooking_rate(self) -> float:
        """Fraction of tiles whose occupancy exceeds the capacity."""
        occ = self.occupancies
        if occ.size == 0:
            return 0.0
        return float((occ > self.capacity).mean())

    @cached_property
    def buffer_utilization(self) -> float:
        """Average fraction of the buffer occupied while tiles are resident."""
        occ = self.occupancies
        if occ.size == 0:
            return 0.0
        return float(np.minimum(occ, self.capacity).mean() / self.capacity)

    @cached_property
    def bumped_elements(self) -> int:
        """Nonzeros that exceed the *resident* portion across overbooked tiles."""
        occ = self.occupancies
        overbooked = occ > self.capacity
        if not overbooked.any():
            return 0
        return int(np.maximum(occ[overbooked] - self.resident_capacity, 0).sum())

    @property
    def bumped_fraction(self) -> float:
        """Share of the operand's nonzeros that are bumped (x-axis of Fig. 9b)."""
        total = self.total_nonzeros
        if total == 0:
            return 0.0
        return self.bumped_elements / total

    @property
    def stats(self) -> Optional[OccupancyStats]:
        """Distribution statistics of the tile occupancies (None when empty)."""
        occ = self.occupancies
        if occ.size == 0:
            return None
        return OccupancyStats(occ)

    @classmethod
    def from_tiler(cls, matrix: SparseMatrix, tiler, *, operand: str, level: str,
                   capacity: int, fifo_words: int) -> "TileOccupancyModel":
        """Apply ``tiler`` to ``matrix`` and wrap the result."""
        result = tiler.tile(matrix, capacity)
        return cls(operand=operand, level=level, capacity=capacity,
                   fifo_words=fifo_words, tiler_result=result)
