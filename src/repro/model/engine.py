"""The end-to-end analytical evaluation engine.

:class:`AnalyticalEngine` reproduces the role Sparseloop plays in the paper's
methodology: given a workload, an architecture, and an accelerator variant
(a tiling strategy plus an overflow-handling policy), it computes the traffic
at every level of the memory hierarchy, converts it into a cycle count
(bandwidth- or compute-bound), and charges every action to the Accelergy-like
energy model.

Model structure (see DESIGN.md §5 for the derivation):

* **DRAM → GLB.**  The stationary operand A is tiled into row blocks; tile
  ``i`` is fetched according to the variant's overflow policy and re-scanned
  once per streaming-operand GLB tile (``T_B`` passes).  The streaming operand
  B is fetched once per stationary GLB tile; if a B tile overbooks its GLB
  partition, its bumped portion is re-fetched once per PE round of the paired
  stationary tile.
* **GLB → PE.**  The same structure one level down: stationary PE subtiles are
  re-read from the GLB once per streaming GLB tile and, when they overbook the
  PE buffer, their bumped portion is re-read once per streaming PE subtile.
* **Cycles.**  ``max(DRAM words / DRAM bandwidth, GLB words / GLB bandwidth,
  effectual multiplies / PE array throughput)``.
* **Energy.**  Per-action energies applied to the per-component action counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

import numpy as np

from repro.accelerator.config import ArchitectureConfig
from repro.accelerator.dataflow import DataflowSpec, extensor_dataflow
from repro.accelerator.pe import PEArray
from repro.energy.accelergy import EnergyModel
from repro.model.sparsity import TileOccupancyModel
from repro.model.stats import PerformanceReport, TrafficBreakdown
from repro.model.traffic import FetchPolicy, LevelTraffic, operand_fetches
from repro.model.workload import WorkloadDescriptor

if TYPE_CHECKING:
    from repro.core.overbooking import TilerResult
    from repro.tensor.sparse import SparseMatrix

#: Words written per output nonzero (coordinate + value).
_OUTPUT_WORDS_PER_NONZERO = 2.0


@runtime_checkable
class Tiler(Protocol):
    """Structural type of a tiling strategy.

    Anything with a ``tile(matrix, capacity) -> TilerResult`` method — the
    concrete strategies live in :mod:`repro.core.overbooking` and
    :mod:`repro.tiling.position`.
    """

    def tile(self, matrix: "SparseMatrix", capacity: int) -> "TilerResult":
        ...


@runtime_checkable
class TilerFactory(Protocol):
    """Zero-argument callable producing a fresh :class:`Tiler`.

    Implementations must be picklable (a class, or an instance of a
    module-level class — not a closure) so that :class:`VariantSpec` can cross
    the process boundary of the evaluation scheduler.
    """

    def __call__(self) -> Tiler:
        ...


@dataclass(frozen=True)
class VariantSpec:
    """What the engine needs to know about an accelerator variant.

    Attributes
    ----------
    name:
        Variant name used in reports (e.g. ``"ExTensor-OB"``).
    tiler_factory:
        A :class:`TilerFactory`: zero-argument callable returning a fresh
        tiler.  A fresh tiler per evaluation keeps random sampling streams
        independent across workloads.
    policy:
        Overflow-handling policy of the variant's buffers.
    """

    name: str
    tiler_factory: TilerFactory
    policy: FetchPolicy

    def make_tiler(self) -> Tiler:
        return self.tiler_factory()


class AnalyticalEngine:
    """Evaluate workloads on an architecture under different variants."""

    def __init__(self, architecture: ArchitectureConfig, *,
                 dataflow: Optional[DataflowSpec] = None,
                 energy_model: Optional[EnergyModel] = None):
        self.architecture = architecture
        self.dataflow = dataflow or extensor_dataflow()
        self.energy_model = energy_model or EnergyModel.for_architecture(
            glb_capacity_words=architecture.glb_capacity_words,
            pe_buffer_capacity_words=architecture.pe_buffer_capacity_words,
            word_bits=architecture.word_bits,
        )
        self._pe_array = PEArray(num_pes=architecture.num_pes)

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def evaluate(self, workload: WorkloadDescriptor, variant: VariantSpec) -> PerformanceReport:
        """Evaluate one workload under one accelerator variant.

        The equations are kernel-agnostic: ``workload.a`` is whatever the
        kernel declares stationary (tiled in row blocks, possibly overbooked)
        and ``workload.b`` is its streaming operand — ``Aᵀ`` for the paper's
        Gram kernel, a distinct sparse matrix for general SpMSpM, or a
        fully-dense factor for SpMM/SpMV/SDDMM.  Shapes, densities and the
        per-tile occupancy statistics all come from the actual operands, so
        nothing below assumes a square ``A × Aᵀ``.
        """
        arch = self.architecture
        a = workload.a
        b = workload.b
        b_by_columns = b.transpose()  # column blocks of B == row blocks of Bᵀ
        wpn = arch.traffic_words_per_nonzero

        tiler = variant.make_tiler()

        # ---------------- GLB-level tilings ---------------- #
        glb_a = TileOccupancyModel.from_tiler(
            a, tiler, operand="A", level="global_buffer",
            capacity=arch.glb_capacity_words, fifo_words=arch.glb_fifo_words)
        glb_b = TileOccupancyModel.from_tiler(
            b_by_columns, tiler, operand="B", level="global_buffer",
            capacity=arch.glb_capacity_words, fifo_words=arch.glb_fifo_words)

        # ---------------- PE-level tilings ---------------- #
        pe_a = TileOccupancyModel.from_tiler(
            a, tiler, operand="A", level="pe_buffer",
            capacity=arch.pe_buffer_capacity_words, fifo_words=arch.pe_fifo_words)
        pe_b = TileOccupancyModel.from_tiler(
            b_by_columns, tiler, operand="B", level="pe_buffer",
            capacity=arch.pe_buffer_capacity_words, fifo_words=arch.pe_fifo_words)

        num_a_glb = max(1, glb_a.num_tiles)
        num_b_glb = max(1, glb_b.num_tiles)
        num_a_pe = max(1, pe_a.num_tiles)
        num_b_pe = max(1, pe_b.num_tiles)

        # A PE subtiles per A GLB tile, and the number of PE "rounds" each
        # pair requires (the PE array rotates through the subtiles).
        subtiles_per_a_glb = max(1, math.ceil(num_a_pe / num_a_glb))
        rounds_per_pair = max(1, math.ceil(subtiles_per_a_glb / arch.num_pes))
        subtiles_per_b_glb = max(1, math.ceil(num_b_pe / num_b_glb))

        # The stationary tile is re-scanned once per *buffer-sized chunk* of
        # the streaming operand, not once per nominal streaming tile: a
        # streaming tile that overbooks its partition is consumed in
        # capacity-sized chunks, each of which requires another scan of the
        # stationary tile (and hence another re-fetch of its bumped portion).
        # For non-overbooked tilings this reduces to the streaming tile count.
        b_glb_chunks = int(np.ceil(glb_b.occupancies / arch.glb_capacity_words).sum())
        passes_a_glb = max(1, num_b_glb, b_glb_chunks)
        b_pe_chunks = int(np.ceil(pe_b.occupancies / arch.pe_buffer_capacity_words).sum())
        passes_a_pe = max(1, subtiles_per_b_glb,
                          math.ceil(b_pe_chunks / num_b_glb))

        # ---------------- DRAM traffic ---------------- #
        a_fetches = operand_fetches(
            glb_a.occupancies, arch.glb_capacity_words,
            fifo_words=arch.glb_fifo_words, passes=passes_a_glb, policy=variant.policy)
        b_fetches = operand_fetches(
            glb_b.occupancies, arch.glb_capacity_words,
            fifo_words=arch.glb_fifo_words, passes=rounds_per_pair, policy=variant.policy)

        dram = LevelTraffic(
            level="dram",
            stationary_reads=float(a_fetches.sum()) * wpn,
            stationary_baseline=float(glb_a.occupancies.sum()) * wpn,
            streaming_reads=float(num_a_glb) * float(b_fetches.sum()) * wpn,
            output_writes=float(workload.output_nonzeros) * _OUTPUT_WORDS_PER_NONZERO,
        )

        # ---------------- GLB traffic ---------------- #
        a_pe_fetches = operand_fetches(
            pe_a.occupancies, arch.pe_buffer_capacity_words,
            fifo_words=arch.pe_fifo_words, passes=passes_a_pe, policy=variant.policy)
        glb_stationary_reads = float(num_b_glb) * float(a_pe_fetches.sum()) * wpn
        glb_stationary_baseline = float(num_b_glb) * float(a.nnz) * wpn
        glb_streaming_reads = float(num_a_glb * rounds_per_pair) * float(b.nnz) * wpn

        glb = LevelTraffic(
            level="global_buffer",
            stationary_reads=glb_stationary_reads,
            stationary_baseline=glb_stationary_baseline,
            streaming_reads=glb_streaming_reads,
            output_writes=float(workload.output_nonzeros) * _OUTPUT_WORDS_PER_NONZERO,
        )

        traffic = TrafficBreakdown(dram=dram, global_buffer=glb)

        # ---------------- Cycles ---------------- #
        effectual = workload.effectual_multiplies
        dram_cycles = dram.total_words / arch.dram_bandwidth_words_per_cycle
        glb_cycles = glb.total_words / arch.glb_bandwidth_words_per_cycle
        compute_cycles = self._pe_array.compute_cycles(effectual)
        cycles = max(dram_cycles, glb_cycles, compute_cycles)
        # Deterministic tie-break (dram > glb > compute): a float-keyed dict
        # silently collapses tied cycle counts and reports whichever bottleneck
        # happened to be inserted last.
        if dram_cycles >= glb_cycles and dram_cycles >= compute_cycles:
            bound = "dram"
        elif glb_cycles >= compute_cycles:
            bound = "glb"
        else:
            bound = "compute"

        # ---------------- Energy ---------------- #
        intersection_steps = 2.0 * effectual + (a.nnz + b.nnz)
        action_counts = {
            "dram": {"reads": dram.total_reads, "writes": dram.output_writes},
            "global_buffer": {
                "reads": glb.total_reads,
                "writes": dram.total_reads + glb.output_writes,
            },
            "pe_buffer": {"reads": 2.0 * effectual, "writes": glb.total_reads},
            "mac": {"reads": float(effectual)},
            "intersection": {"reads": intersection_steps},
        }
        energy = self.energy_model.report(action_counts)

        # ---------------- Reuse / utilization statistics ---------------- #
        accesses = float(a.nnz) * passes_a_glb
        ideal_fetches = float(a.nnz)
        actual_fetches = dram.stationary_reads / wpn
        reusable = max(accesses - ideal_fetches, 1.0)
        data_reuse = max(0.0, 1.0 - (actual_fetches - ideal_fetches) / reusable)

        tax = (glb_a.tiler_result.tax.total_elements
               + glb_b.tiler_result.tax.total_elements
               + pe_a.tiler_result.tax.total_elements
               + pe_b.tiler_result.tax.total_elements)

        details = {
            "num_a_glb_tiles": float(num_a_glb),
            "num_b_glb_tiles": float(num_b_glb),
            "num_a_pe_tiles": float(num_a_pe),
            "num_b_pe_tiles": float(num_b_pe),
            "rounds_per_pair": float(rounds_per_pair),
            "dram_cycles": dram_cycles,
            "glb_cycles": glb_cycles,
            "compute_cycles": compute_cycles,
            "pe_overbooking_rate": pe_a.overbooking_rate,
            "pe_utilization": pe_a.buffer_utilization,
        }

        return PerformanceReport(
            workload=workload.name,
            variant=variant.name,
            cycles=cycles,
            energy=energy,
            traffic=traffic,
            effectual_multiplies=effectual,
            output_nonzeros=workload.output_nonzeros,
            glb_block_rows=glb_a.tiler_result.block_rows,
            glb_overbooking_rate=glb_a.overbooking_rate,
            glb_utilization=glb_a.buffer_utilization,
            bumped_fraction=glb_a.bumped_fraction,
            data_reuse_fraction=data_reuse,
            tiling_tax_elements=tax,
            bound=bound,
            details=details,
            kernel=workload.kernel,
        )
