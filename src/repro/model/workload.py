"""Workload descriptors with cached derived quantities.

The analytical engine evaluates the same workload under several accelerator
variants and parameter sweeps (Figs. 7–12 all reuse the same 22 workloads), so
the expensive derived quantities — the exact effectual-multiply count and the
output occupancy — are computed once per workload and cached here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.tensor.einsum import MatmulWorkload, OperationCounts
from repro.tensor.sparse import SparseMatrix


@dataclass
class WorkloadDescriptor:
    """A SpMSpM workload plus lazily-computed operation counts."""

    name: str
    matmul: MatmulWorkload
    _counts: Optional[OperationCounts] = field(default=None, repr=False)

    @classmethod
    def gram(cls, matrix: SparseMatrix, name: str | None = None) -> "WorkloadDescriptor":
        """Build the ``A × Aᵀ`` workload the paper evaluates for ``matrix``."""
        workload_name = name or matrix.name
        return cls(name=workload_name, matmul=MatmulWorkload.gram(matrix, name=workload_name))

    @property
    def a(self) -> SparseMatrix:
        return self.matmul.a

    @property
    def b(self) -> SparseMatrix:
        return self.matmul.b

    @property
    def operation_counts(self) -> OperationCounts:
        """Exact effectual multiplies / output nonzeros (computed once)."""
        if self._counts is None:
            self._counts = self.matmul.operation_counts()
        return self._counts

    @property
    def effectual_multiplies(self) -> int:
        return self.operation_counts.effectual_multiplies

    @property
    def output_nonzeros(self) -> int:
        return self.operation_counts.output_nonzeros

    @property
    def footprint_nonzeros(self) -> int:
        """Total operand nonzeros (A and B) that must come from DRAM at least once."""
        return self.a.nnz + self.b.nnz

    def summary(self) -> dict:
        """Headline numbers for reports (Table 2 style)."""
        return {
            "name": self.name,
            "rows": self.a.num_rows,
            "cols": self.a.num_cols,
            "nnz": self.a.nnz,
            "sparsity": self.a.sparsity,
            "effectual_multiplies": self.effectual_multiplies,
            "output_nonzeros": self.output_nonzeros,
        }
