"""Workload descriptors with cached derived quantities.

The analytical engine evaluates the same workload under several accelerator
variants and parameter sweeps (Figs. 7–12 all reuse the same 22 workloads), so
the expensive derived quantities — the exact effectual-multiply count and the
output occupancy — are computed once per workload and cached here.

A descriptor wraps one member of the kernel family
(:mod:`repro.tensor.kernels`): the paper's Gram SpMSpM by default, or any of
the generalized kernels (SpMSpM with distinct operands, SpMM, SpMV, SDDMM).
The engine consumes only the uniform surface — stationary/streaming operands
plus operation counts — so every kernel flows through the same traffic and
energy equations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.tensor.einsum import EinsumSpec, MatmulWorkload, OperationCounts
from repro.tensor.kernels import (
    DEFAULT_FEATURE_DIM,
    KernelWorkload,
    build_kernel_workload,
    kernel_spec,
)
from repro.tensor.sparse import SparseMatrix
from repro.tensor.suite import WorkloadSuite


@dataclass
class WorkloadDescriptor:
    """A kernel workload plus lazily-computed operation counts."""

    name: str
    workload: KernelWorkload
    kernel: str = "gram"
    _counts: Optional[OperationCounts] = field(default=None, repr=False)

    @classmethod
    def gram(cls, matrix: SparseMatrix, name: str | None = None) -> "WorkloadDescriptor":
        """Build the ``A × Aᵀ`` workload the paper evaluates for ``matrix``."""
        workload_name = name or matrix.name
        return cls(name=workload_name, kernel="gram",
                   workload=MatmulWorkload.gram(matrix, name=workload_name))

    @classmethod
    def for_kernel(cls, kernel: str, matrix: SparseMatrix, *,
                   name: str | None = None,
                   paired_matrix: SparseMatrix | None = None,
                   rng: np.random.Generator | None = None,
                   feature_dim: int = DEFAULT_FEATURE_DIM) -> "WorkloadDescriptor":
        """Build the ``kernel`` workload for ``matrix``.

        ``paired_matrix`` supplies the ``B`` of a general SpMSpM; ``rng``
        drives the deterministic dense factors of SpMM/SpMV/SDDMM (see
        :func:`repro.tensor.kernels.build_kernel_workload`).
        """
        workload_name = name or matrix.name
        if kernel == "gram":
            return cls.gram(matrix, name=workload_name)
        workload = build_kernel_workload(
            kernel, matrix, name=workload_name, paired_matrix=paired_matrix,
            rng=rng, feature_dim=feature_dim)
        return cls(name=workload_name, workload=workload, kernel=kernel)

    @classmethod
    def from_suite(cls, suite: WorkloadSuite, name: str, *,
                   kernel: str = "gram",
                   feature_dim: int = DEFAULT_FEATURE_DIM) -> "WorkloadDescriptor":
        """Build the ``kernel`` workload for suite workload ``name``.

        Resolves the kernel's extra operands from the suite: the paired ``B``
        matrix for general SpMSpM and the deterministic per-(workload, kernel)
        random stream for dense factors — both pure functions of the suite
        token, so descriptors built here match the ones scheduler workers
        rebuild.
        """
        spec = kernel_spec(kernel)
        matrix = suite.matrix(name)
        paired = suite.paired_matrix(name) if spec.needs_paired_operand else None
        rng = (suite.kernel_rng(name, spec.stream_salt)
               if spec.needs_dense_operand else None)
        return cls.for_kernel(kernel, matrix, name=name, paired_matrix=paired,
                              rng=rng, feature_dim=feature_dim)

    # ------------------------------------------------------------------ #
    # Uniform kernel surface consumed by the engine
    # ------------------------------------------------------------------ #
    @property
    def matmul(self) -> KernelWorkload:
        """Backwards-compatible alias for :attr:`workload`."""
        return self.workload

    @property
    def einsum(self) -> EinsumSpec:
        return self.workload.einsum

    @property
    def a(self) -> SparseMatrix:
        """The stationary operand (tiled in row blocks by the dataflow)."""
        return self.workload.stationary_operand

    @property
    def b(self) -> SparseMatrix:
        """The streaming operand (scanned once per stationary tile)."""
        return self.workload.streaming_operand

    @property
    def operation_counts(self) -> OperationCounts:
        """Exact effectual multiplies / output nonzeros (computed once)."""
        if self._counts is None:
            self._counts = self.workload.operation_counts()
        return self._counts

    @property
    def effectual_multiplies(self) -> int:
        return self.operation_counts.effectual_multiplies

    @property
    def output_nonzeros(self) -> int:
        return self.operation_counts.output_nonzeros

    @property
    def footprint_nonzeros(self) -> int:
        """Total operand nonzeros (A and B) that must come from DRAM at least once."""
        return self.a.nnz + self.b.nnz

    def summary(self) -> dict:
        """Headline numbers for reports (Table 2 style)."""
        return {
            "name": self.name,
            "kernel": self.kernel,
            "rows": self.a.num_rows,
            "cols": self.a.num_cols,
            "nnz": self.a.nnz,
            "sparsity": self.a.sparsity,
            "effectual_multiplies": self.effectual_multiplies,
            "output_nonzeros": self.output_nonzeros,
        }
