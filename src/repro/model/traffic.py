"""Per-level traffic equations for the stationary/streaming dataflow.

The quantities that determine the evaluation results are the data volumes
moved between memory levels:

* **Parent → level fetches of the stationary operand.**  A stationary tile is
  scanned once per streaming-operand tile it is matched against.  If it fits
  in the level's buffer it is fetched once; if it overbooks the buffer the
  bumped portion is re-fetched on every scan (Tailors) or the entire tile is
  re-fetched on every scan (a buffet, which can only shrink from the head —
  Fig. 3).
* **Parent → level fetches of the streaming operand.**  The whole streaming
  operand is fetched once per stationary tile — this is the term that larger
  stationary tiles (and hence overbooking) shrink.

:func:`operand_fetches` implements the per-tile fetch counts for the three
policies (never-overbooked, buffet, Tailors); :class:`LevelTraffic` assembles
them into the traffic of one memory level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, check_positive_int


class FetchPolicy(enum.Enum):
    """How a level's buffer handles a tile that exceeds its capacity."""

    #: Tiles never exceed the capacity by construction (uniform-shape /
    #: prescient tiling); any tile that nevertheless does is treated like
    #: ``BUFFET`` (drop everything, refill per scan).
    FIT = "fit"
    #: Buffet management: an overbooked tile is re-fetched in full on every scan.
    BUFFET = "buffet"
    #: Tailors management: the resident head stays, the bumped tail streams.
    TAILORS = "tailors"


def operand_fetches(occupancies: np.ndarray, capacity: int, *, fifo_words: int,
                    passes: int, policy: FetchPolicy) -> np.ndarray:
    """Parent fetches (in nonzeros) for each tile of the stationary operand.

    Parameters
    ----------
    occupancies:
        Per-tile occupancy array.
    capacity:
        Buffer capacity at this level (words per operand).
    fifo_words:
        Tailors FIFO-region size (ignored for the other policies).
    passes:
        Number of scans of each resident tile (= number of streaming-operand
        tiles it is matched against).
    policy:
        Overflow-handling policy.

    Returns
    -------
    numpy.ndarray
        Fetches per tile, same shape as ``occupancies``.
    """
    check_positive_int(capacity, "capacity")
    check_positive_int(fifo_words, "fifo_words")
    check_positive_int(passes, "passes")
    occ = np.asarray(occupancies, dtype=np.float64)
    fits = occ <= capacity

    if policy in (FetchPolicy.FIT, FetchPolicy.BUFFET):
        # Fetched once when the tile fits, once per scan otherwise.
        return np.where(fits, occ, occ * passes)

    if policy is FetchPolicy.TAILORS:
        resident = max(1, capacity - fifo_words)
        bumped = np.maximum(occ - resident, 0.0)
        return np.where(fits, occ, resident + bumped * passes)

    raise ValueError(f"unknown policy {policy!r}")


@dataclass(frozen=True)
class LevelTraffic:
    """Traffic of one memory level for one workload (units: words).

    Attributes
    ----------
    level:
        Level name ("dram" or "global_buffer").
    stationary_reads:
        Words of the stationary operand fetched from the parent, including any
        overbooking streaming overhead.
    stationary_baseline:
        Words of the stationary operand that would be fetched with an
        infinitely large buffer and the same tiling (i.e. each tile fetched
        exactly once) — the Fig. 9a baseline.
    streaming_reads:
        Words of the streaming operand fetched from the parent.
    output_writes:
        Words of output written back to the parent.
    """

    level: str
    stationary_reads: float
    stationary_baseline: float
    streaming_reads: float
    output_writes: float

    def __post_init__(self) -> None:
        for field_name in ("stationary_reads", "stationary_baseline",
                           "streaming_reads", "output_writes"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be non-negative, got {value}")

    @property
    def streaming_overhead(self) -> float:
        """Extra stationary-operand traffic caused by overbooking (words)."""
        return max(0.0, self.stationary_reads - self.stationary_baseline)

    @property
    def total_reads(self) -> float:
        return self.stationary_reads + self.streaming_reads

    @property
    def total_words(self) -> float:
        return self.total_reads + self.output_writes

    @property
    def overhead_fraction(self) -> float:
        """Streaming overhead as a fraction of the baseline traffic (Fig. 9a)."""
        baseline = self.stationary_baseline + self.streaming_reads + self.output_writes
        if baseline <= 0:
            return 0.0
        return self.streaming_overhead / baseline


def stationary_level_traffic(*, level: str, occupancies: np.ndarray, capacity: int,
                             fifo_words: int, streaming_tiles: int,
                             streaming_nonzeros: int, output_nonzeros: float,
                             words_per_nonzero: float, output_words_per_nonzero: float,
                             policy: FetchPolicy) -> LevelTraffic:
    """Assemble the traffic of one level of the stationary/streaming dataflow.

    ``streaming_tiles`` is the number of streaming-operand tiles each
    stationary tile is matched against (the number of scans); the streaming
    operand itself is fetched once per stationary tile, i.e.
    ``num_stationary_tiles × streaming_nonzeros`` words.
    """
    check_positive(words_per_nonzero, "words_per_nonzero")
    check_positive(output_words_per_nonzero, "output_words_per_nonzero")
    occ = np.asarray(occupancies, dtype=np.float64)
    num_stationary_tiles = max(1, int(occ.size))
    passes = max(1, int(streaming_tiles))

    fetches = operand_fetches(occ, capacity, fifo_words=fifo_words,
                              passes=passes, policy=policy)
    stationary_reads = float(fetches.sum()) * words_per_nonzero
    stationary_baseline = float(occ.sum()) * words_per_nonzero
    streaming_reads = float(num_stationary_tiles * streaming_nonzeros) * words_per_nonzero
    output_writes = float(output_nonzeros) * output_words_per_nonzero
    return LevelTraffic(
        level=level,
        stationary_reads=stationary_reads,
        stationary_baseline=stationary_baseline,
        streaming_reads=streaming_reads,
        output_writes=output_writes,
    )
