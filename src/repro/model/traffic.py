"""Per-level traffic equations for the stationary/streaming dataflow.

The quantities that determine the evaluation results are the data volumes
moved between memory levels:

* **Parent → level fetches of the stationary operand.**  A stationary tile is
  scanned once per streaming-operand tile it is matched against.  If it fits
  in the level's buffer it is fetched once; if it overbooks the buffer the
  bumped portion is re-fetched on every scan (Tailors) or the entire tile is
  re-fetched on every scan (a buffet, which can only shrink from the head —
  Fig. 3).
* **Parent → level fetches of the streaming operand.**  The whole streaming
  operand is fetched once per stationary tile — this is the term that larger
  stationary tiles (and hence overbooking) shrink.

:func:`operand_fetches` implements the per-tile fetch counts for the three
policies (never-overbooked, buffet, Tailors); :class:`LevelTraffic` assembles
them into the traffic of one memory level.

Both helpers accept an optional trailing *config axis*: passing ``capacity``
/ ``fifo_words`` / ``passes`` as 1-D vectors of length ``C`` (instead of
scalars) evaluates all ``C`` configurations against the same occupancy array
in one broadcast call — the primitive the batched grid evaluator
(:mod:`repro.model.batch`) is built on.  The scalar path is unchanged, so
per-point callers see the exact same arithmetic as before.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import check_positive, check_positive_int


def _config_axis(value, name: str) -> np.ndarray:
    """Validate a per-config parameter vector (1-D positive integers)."""
    array = np.asarray(value)
    if array.ndim != 1:
        raise ValueError(f"{name} must be a scalar or a 1-D config vector, "
                         f"got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} config vector must not be empty")
    if not np.issubdtype(array.dtype, np.integer):
        raise ValueError(f"{name} config vector must be integer, got {array.dtype}")
    if (array <= 0).any():
        raise ValueError(f"{name} entries must be positive, got {array.min()}")
    return array.astype(np.int64, copy=False)


class FetchPolicy(enum.Enum):
    """How a level's buffer handles a tile that exceeds its capacity."""

    #: Tiles never exceed the capacity by construction (uniform-shape /
    #: prescient tiling); any tile that nevertheless does is treated like
    #: ``BUFFET`` (drop everything, refill per scan).
    FIT = "fit"
    #: Buffet management: an overbooked tile is re-fetched in full on every scan.
    BUFFET = "buffet"
    #: Tailors management: the resident head stays, the bumped tail streams.
    TAILORS = "tailors"


def operand_fetches(occupancies: np.ndarray, capacity: int, *, fifo_words: int,
                    passes: int, policy: FetchPolicy) -> np.ndarray:
    """Parent fetches (in nonzeros) for each tile of the stationary operand.

    Parameters
    ----------
    occupancies:
        Per-tile occupancy array.
    capacity:
        Buffer capacity at this level (words per operand).
    fifo_words:
        Tailors FIFO-region size (ignored for the other policies).
    passes:
        Number of scans of each resident tile (= number of streaming-operand
        tiles it is matched against).
    policy:
        Overflow-handling policy.

    Any of ``capacity`` / ``fifo_words`` / ``passes`` may instead be a 1-D
    vector of length ``C`` (a *config axis*): the occupancies are then lifted
    to shape ``(T, 1)`` and the result has shape ``(T, C)``, column ``j``
    holding the per-tile fetches under configuration ``j``.  Scalars broadcast
    across the config axis.

    Returns
    -------
    numpy.ndarray
        Fetches per tile: shape ``(T,)`` for all-scalar parameters, shape
        ``(T, C)`` when a config axis is present.
    """
    batched = any(np.ndim(value) > 0 for value in (capacity, fifo_words, passes))
    if batched:
        return _batched_operand_fetches(occupancies, capacity,
                                        fifo_words=fifo_words, passes=passes,
                                        policy=policy)

    check_positive_int(capacity, "capacity")
    check_positive_int(fifo_words, "fifo_words")
    check_positive_int(passes, "passes")
    occ = np.asarray(occupancies, dtype=np.float64)
    fits = occ <= capacity

    if policy in (FetchPolicy.FIT, FetchPolicy.BUFFET):
        # Fetched once when the tile fits, once per scan otherwise.
        return np.where(fits, occ, occ * passes)

    if policy is FetchPolicy.TAILORS:
        resident = max(1, capacity - fifo_words)
        bumped = np.maximum(occ - resident, 0.0)
        return np.where(fits, occ, resident + bumped * passes)

    raise ValueError(f"unknown policy {policy!r}")


def _batched_operand_fetches(occupancies, capacity, *, fifo_words, passes,
                             policy: FetchPolicy) -> np.ndarray:
    """The config-axis form of :func:`operand_fetches` (shape ``(T, C)``).

    All per-tile/per-config values are exact integers far below 2**53, so the
    broadcast arithmetic here is *bit-identical* per column to the scalar path
    evaluated one config at a time.
    """
    params = {"capacity": capacity, "fifo_words": fifo_words, "passes": passes}
    length = None
    for name, value in params.items():
        if np.ndim(value) > 0:
            params[name] = _config_axis(value, name)
            if length is not None and params[name].size != length:
                raise ValueError(
                    f"config vectors must align: {name} has {params[name].size} "
                    f"entries, expected {length}")
            length = params[name].size
        else:
            check_positive_int(value, name)
    cap = np.broadcast_to(np.asarray(params["capacity"], dtype=np.int64), (length,))
    fifo = np.broadcast_to(np.asarray(params["fifo_words"], dtype=np.int64), (length,))
    scans = np.broadcast_to(np.asarray(params["passes"], dtype=np.int64), (length,))

    occ = np.asarray(occupancies, dtype=np.float64)
    if occ.ndim != 1:
        raise ValueError(f"occupancies must be 1-D with a config axis, "
                         f"got shape {occ.shape}")
    occ = occ[:, None]
    fits = occ <= cap

    if policy in (FetchPolicy.FIT, FetchPolicy.BUFFET):
        return np.where(fits, occ, occ * scans)

    if policy is FetchPolicy.TAILORS:
        resident = np.maximum(1, cap - fifo)
        bumped = np.maximum(occ - resident, 0.0)
        return np.where(fits, occ, resident + bumped * scans)

    raise ValueError(f"unknown policy {policy!r}")


@dataclass(frozen=True)
class LevelTraffic:
    """Traffic of one memory level for one workload (units: words).

    Attributes
    ----------
    level:
        Level name ("dram" or "global_buffer").
    stationary_reads:
        Words of the stationary operand fetched from the parent, including any
        overbooking streaming overhead.
    stationary_baseline:
        Words of the stationary operand that would be fetched with an
        infinitely large buffer and the same tiling (i.e. each tile fetched
        exactly once) — the Fig. 9a baseline.
    streaming_reads:
        Words of the streaming operand fetched from the parent.
    output_writes:
        Words of output written back to the parent.
    """

    level: str
    stationary_reads: float
    stationary_baseline: float
    streaming_reads: float
    output_writes: float

    def __post_init__(self) -> None:
        for field_name in ("stationary_reads", "stationary_baseline",
                           "streaming_reads", "output_writes"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be non-negative, got {value}")

    @property
    def streaming_overhead(self) -> float:
        """Extra stationary-operand traffic caused by overbooking (words)."""
        return max(0.0, self.stationary_reads - self.stationary_baseline)

    @property
    def total_reads(self) -> float:
        return self.stationary_reads + self.streaming_reads

    @property
    def total_words(self) -> float:
        return self.total_reads + self.output_writes

    @property
    def overhead_fraction(self) -> float:
        """Streaming overhead as a fraction of the baseline traffic (Fig. 9a)."""
        baseline = self.stationary_baseline + self.streaming_reads + self.output_writes
        if baseline <= 0:
            return 0.0
        return self.streaming_overhead / baseline


def stationary_level_traffic(*, level: str, occupancies: np.ndarray, capacity: int,
                             fifo_words: int, streaming_tiles: int,
                             streaming_nonzeros: int, output_nonzeros: float,
                             words_per_nonzero: float, output_words_per_nonzero: float,
                             policy: FetchPolicy) -> LevelTraffic:
    """Assemble the traffic of one level of the stationary/streaming dataflow.

    ``streaming_tiles`` is the number of streaming-operand tiles each
    stationary tile is matched against (the number of scans); the streaming
    operand itself is fetched once per stationary tile, i.e.
    ``num_stationary_tiles × streaming_nonzeros`` words.

    ``capacity`` / ``fifo_words`` / ``streaming_tiles`` may be 1-D config
    vectors of length ``C`` (see :func:`operand_fetches`), in which case a
    tuple of ``C`` :class:`LevelTraffic` objects is returned, one per
    configuration — each bit-identical to the scalar call with that
    configuration's parameters.
    """
    if any(np.ndim(value) > 0 for value in (capacity, fifo_words, streaming_tiles)):
        return _batched_stationary_level_traffic(
            level=level, occupancies=occupancies, capacity=capacity,
            fifo_words=fifo_words, streaming_tiles=streaming_tiles,
            streaming_nonzeros=streaming_nonzeros,
            output_nonzeros=output_nonzeros,
            words_per_nonzero=words_per_nonzero,
            output_words_per_nonzero=output_words_per_nonzero, policy=policy)

    check_positive(words_per_nonzero, "words_per_nonzero")
    check_positive(output_words_per_nonzero, "output_words_per_nonzero")
    occ = np.asarray(occupancies, dtype=np.float64)
    num_stationary_tiles = max(1, int(occ.size))
    passes = max(1, int(streaming_tiles))

    fetches = operand_fetches(occ, capacity, fifo_words=fifo_words,
                              passes=passes, policy=policy)
    stationary_reads = float(fetches.sum()) * words_per_nonzero
    stationary_baseline = float(occ.sum()) * words_per_nonzero
    streaming_reads = float(num_stationary_tiles * streaming_nonzeros) * words_per_nonzero
    output_writes = float(output_nonzeros) * output_words_per_nonzero
    return LevelTraffic(
        level=level,
        stationary_reads=stationary_reads,
        stationary_baseline=stationary_baseline,
        streaming_reads=streaming_reads,
        output_writes=output_writes,
    )


def _batched_stationary_level_traffic(*, level, occupancies, capacity, fifo_words,
                                      streaming_tiles, streaming_nonzeros,
                                      output_nonzeros, words_per_nonzero,
                                      output_words_per_nonzero,
                                      policy) -> Tuple[LevelTraffic, ...]:
    """The config-axis form of :func:`stationary_level_traffic`."""
    check_positive(words_per_nonzero, "words_per_nonzero")
    check_positive(output_words_per_nonzero, "output_words_per_nonzero")
    occ = np.asarray(occupancies, dtype=np.float64)
    num_stationary_tiles = max(1, int(occ.size))
    passes = np.maximum(1, np.asarray(streaming_tiles, dtype=np.int64)) \
        if np.ndim(streaming_tiles) > 0 else max(1, int(streaming_tiles))

    fetches = operand_fetches(occ, capacity, fifo_words=fifo_words,
                              passes=passes, policy=policy)
    per_config_fetches = fetches.sum(axis=0)
    stationary_baseline = float(occ.sum()) * words_per_nonzero
    streaming_reads = float(num_stationary_tiles * streaming_nonzeros) * words_per_nonzero
    output_writes = float(output_nonzeros) * output_words_per_nonzero
    return tuple(
        LevelTraffic(
            level=level,
            stationary_reads=float(total) * words_per_nonzero,
            stationary_baseline=stationary_baseline,
            streaming_reads=streaming_reads,
            output_writes=output_writes,
        )
        for total in per_config_fetches
    )
