"""Result containers for the analytical model and ratio helpers for reports."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.energy.accelergy import EnergyReport
from repro.model.traffic import LevelTraffic


@dataclass(frozen=True)
class TrafficBreakdown:
    """DRAM- and GLB-level traffic of one evaluation (units: words)."""

    dram: LevelTraffic
    global_buffer: LevelTraffic

    @property
    def dram_words(self) -> float:
        return self.dram.total_words

    @property
    def glb_words(self) -> float:
        return self.global_buffer.total_words

    @property
    def dram_overhead_fraction(self) -> float:
        """Fraction of baseline DRAM traffic spent streaming bumped data (Fig. 9a)."""
        return self.dram.overhead_fraction


@dataclass(frozen=True)
class PerformanceReport:
    """Outcome of evaluating one workload on one accelerator variant.

    The fields marked "(Fig. N)" are the quantities the corresponding paper
    figure plots; the experiment harness simply selects and formats them.
    """

    workload: str
    variant: str
    cycles: float
    energy: EnergyReport
    traffic: TrafficBreakdown
    effectual_multiplies: int
    output_nonzeros: int
    #: Rows per stationary-operand tile chosen by the variant's tiler (GLB level).
    glb_block_rows: int
    #: Fraction of GLB-level stationary tiles that overbook the buffer (Fig. 11).
    glb_overbooking_rate: float
    #: Average GLB utilization while tiles are resident (Table 1).
    glb_utilization: float
    #: Fraction of the stationary operand's nonzeros that are bumped (Fig. 9b).
    bumped_fraction: float
    #: Fraction of stationary-operand accesses served without a re-fetch (Fig. 9b).
    data_reuse_fraction: float
    #: Preprocessing + matching cost of the tiling strategy (Table 1).
    tiling_tax_elements: float
    #: Bound that limited the cycle count ("dram", "glb" or "compute").
    bound: str
    #: Free-form extras (per-level details, Swiftiles estimate, ...).
    details: Dict[str, float] = field(default_factory=dict)
    #: Kernel the workload instantiates ("gram", "spmspm", "spmm", ...).
    kernel: str = "gram"

    @property
    def runtime_cycles(self) -> float:
        return self.cycles

    @property
    def total_energy_pj(self) -> float:
        return self.energy.total_pj

    @property
    def dram_words(self) -> float:
        return self.traffic.dram_words

    def speedup_over(self, baseline: "PerformanceReport") -> float:
        """How much faster this variant is than ``baseline`` (>1 = faster)."""
        if self.cycles <= 0:
            return math.inf
        return baseline.cycles / self.cycles

    def energy_ratio_over(self, baseline: "PerformanceReport") -> float:
        """How much less energy this variant uses than ``baseline`` (>1 = less)."""
        if self.total_energy_pj <= 0:
            return math.inf
        return baseline.total_energy_pj / self.total_energy_pj


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the aggregation used by Figs. 7/8)."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("geometric_mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain mean, provided alongside :func:`geometric_mean` for reports."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("arithmetic_mean of an empty sequence")
    return sum(values) / len(values)


@dataclass(frozen=True)
class ComparisonRow:
    """One row of a Fig. 7 / Fig. 8 style comparison table."""

    workload: str
    prescient_vs_naive: float
    overbooking_vs_naive: float

    @property
    def overbooking_vs_prescient(self) -> float:
        if self.prescient_vs_naive == 0:
            return math.inf
        return self.overbooking_vs_naive / self.prescient_vs_naive


def comparison_summary(rows: Iterable[ComparisonRow]) -> Optional[ComparisonRow]:
    """Geometric-mean row over a set of comparison rows (None when empty)."""
    rows = list(rows)
    if not rows:
        return None
    return ComparisonRow(
        workload="geomean",
        prescient_vs_naive=geometric_mean(r.prescient_vs_naive for r in rows),
        overbooking_vs_naive=geometric_mean(r.overbooking_vs_naive for r in rows),
    )
