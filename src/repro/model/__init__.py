"""Sparseloop-like analytical performance/energy model.

The paper evaluates its designs with Sparseloop + Accelergy: an analytical
model that counts component actions for a given (workload, mapping, sparsity
model) and converts them into cycles and energy.  This subpackage plays that
role for the reproduction:

* :mod:`repro.model.workload` — cached workload descriptors (operands,
  operation counts).
* :mod:`repro.model.sparsity` — the per-tile occupancy "sparsity model"
  feeding the traffic equations (the paper adds an equivalent model to
  Sparseloop, Section 5.1).
* :mod:`repro.model.traffic` — per-level traffic equations for the
  stationary/streaming dataflow, including the overbooking streaming
  overhead.
* :mod:`repro.model.engine` — the end-to-end evaluation: traffic → cycles →
  energy for one (workload, architecture, accelerator variant).
* :mod:`repro.model.stats` — result containers and ratio helpers.
"""

from repro.model.workload import WorkloadDescriptor
from repro.model.sparsity import TileOccupancyModel
from repro.model.traffic import FetchPolicy, LevelTraffic, operand_fetches
from repro.model.stats import PerformanceReport, TrafficBreakdown, geometric_mean
from repro.model.engine import AnalyticalEngine

__all__ = [
    "WorkloadDescriptor",
    "TileOccupancyModel",
    "FetchPolicy",
    "LevelTraffic",
    "operand_fetches",
    "PerformanceReport",
    "TrafficBreakdown",
    "geometric_mean",
    "AnalyticalEngine",
]
