"""Vectorized batched grid evaluation (the array-program engine).

The paper's headline artifacts are *grids* — overbooking benefit swept over
``y × GLB capacity × PE capacity`` per kernel and workload — yet
:class:`~repro.model.engine.AnalyticalEngine` evaluates one
``(architecture, y)`` point at a time, paying per-cell Python overhead
(context/engine/energy-table construction, four tiling wrappers, ~20 NumPy
reduction calls, dataclass churn) thousands of times per sweep.

:class:`BatchWorkloadEvaluator` evaluates the same grid from one workload's
precomputed per-tile occupancy arrays (the SoA
:class:`~repro.tiling.base.Tiling` objects, shared with the per-point path
through ``matrix.memo``) as an array program over the *config axis*:

* **Effective-config dedup.**  Naive and prescient tilings — and therefore
  their whole reports — do not depend on ``y``; one evaluation is shared
  across the entire ``y`` axis of a grid.  ExTensor-OB cells dedup on
  ``(architecture, y)``.
* **Cached occupancy reductions.**  All engine scalars derived from an
  occupancy array are affine in a handful of exact integer sums
  (:class:`~repro.tiling.base.OccupancyReductions`); the O(num_tiles) array
  passes run once per ``(tiling, capacity)`` and are shared across every grid
  cell that reuses the tiling — e.g. the PE-level reductions across the whole
  GLB-scale axis, and vice versa (the broadcast form of the same math lives
  in :func:`repro.model.traffic.operand_fetches` via its trailing config
  axis).
* **Columnar evaluation.**  :meth:`BatchWorkloadEvaluator.prime` gathers the
  reduction scalars of every pending config into ``int64`` columns and runs
  the engine's whole scaffolding — tile counts, pass counts, fetch totals,
  per-level traffic words — as ~30 broadcast NumPy calls over the config
  axis.  The per-config Python that remains is report *construction* (two
  :class:`~repro.model.traffic.LevelTraffic` rows, the energy report, the
  stats dataclass), which the sweep needs per cell anyway.

The per-point engine is kept untouched as the golden reference: every value
produced here is **bit-identical** to ``AnalyticalEngine.evaluate`` (not just
within 1e-9) because all occupancy sums are exact integers below 2**53 —
float64 sums over them are exact regardless of summation order, the int64
column arithmetic equals the engine's Python-int arithmetic, and every
remaining float operation replicates the engine's expression order verbatim.
``tests/model/test_batch.py`` pins this differentially across kernels,
suites, and random grids.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerator.config import ArchitectureConfig
from repro.accelerator.extensor import AcceleratorVariant
from repro.accelerator.pe import PEArray
from repro.energy.accelergy import EnergyModel, EnergyReport
from repro.model.engine import _OUTPUT_WORDS_PER_NONZERO, VariantSpec
from repro.model.stats import PerformanceReport, TrafficBreakdown
from repro.model.traffic import FetchPolicy, LevelTraffic
from repro.model.workload import WorkloadDescriptor
from repro.tiling.base import OccupancyReductions

#: A grid cell: the architecture to evaluate and the ExTensor-OB target ``y``.
GridConfig = Tuple[ArchitectureConfig, float]


@lru_cache(maxsize=None)
def _energy_model(glb_capacity_words: int, pe_buffer_capacity_words: int,
                  word_bits: int) -> EnergyModel:
    """The engine's default energy table, shared across grid cells."""
    return EnergyModel.for_architecture(
        glb_capacity_words=glb_capacity_words,
        pe_buffer_capacity_words=pe_buffer_capacity_words,
        word_bits=word_bits,
    )


@lru_cache(maxsize=None)
def _pe_array(num_pes: int) -> PEArray:
    return PEArray(num_pes=num_pes)


@lru_cache(maxsize=None)
def _energy_table(glb_capacity_words: int, pe_buffer_capacity_words: int,
                  word_bits: int) -> tuple:
    """Per-action energies of the engine's five components, as flat floats.

    The batched path inlines ``EnergyModel.report`` (same multiplies and
    adds, same component order, minus the per-cell validation): these are the
    exact ``read_pj`` / ``write_pj`` values the per-point engine multiplies
    with.
    """
    components = _energy_model(glb_capacity_words, pe_buffer_capacity_words,
                               word_bits).components
    return tuple(
        pj
        for name in ("dram", "global_buffer", "pe_buffer", "mac",
                     "intersection")
        for pj in (components[name].read_pj, components[name].write_pj)
    )


def _overbooking_rate(reductions: OccupancyReductions) -> float:
    """``float((occ > capacity).mean())`` from the exact counts."""
    if reductions.num_tiles == 0:
        return 0.0
    return reductions.over_count / reductions.num_tiles


def _buffer_utilization(reductions: OccupancyReductions) -> float:
    """``float(np.minimum(occ, capacity).mean() / capacity)`` exactly.

    ``min(occ, capacity)`` is ``occ`` on fitting tiles and ``capacity`` on
    overbooked ones, so its sum is ``fit_sum + capacity * over_count``.
    """
    if reductions.num_tiles == 0:
        return 0.0
    min_sum = reductions.fit_sum + reductions.capacity * reductions.over_count
    return (min_sum / reductions.num_tiles) / reductions.capacity


def _bumped_fraction(reductions: OccupancyReductions) -> float:
    """``bumped_elements / total_nonzeros`` with the per-point guards."""
    if reductions.total == 0 or reductions.over_count == 0:
        return 0.0
    return reductions.bumped_sum / reductions.total


def _ceil_div(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """``math.ceil(n / d)`` per config, via the same float64 division.

    The engine divides Python ints (exact float64 values below 2**53) and
    ceils the float quotient; ``int64 / int64`` broadcasts to the identical
    IEEE division, so the cast back to ``int64`` is exact.
    """
    return np.ceil(numerator / denominator).astype(np.int64)


def _fetch_totals(fit_sum: np.ndarray, over_sum: np.ndarray,
                  over_count: np.ndarray, resident: np.ndarray,
                  passes: np.ndarray, policy: FetchPolicy) -> np.ndarray:
    """:meth:`OccupancyReductions.fetch_total` over the config axis (int64)."""
    if policy in (FetchPolicy.FIT, FetchPolicy.BUFFET):
        return fit_sum + passes * over_sum
    if policy is FetchPolicy.TAILORS:
        bumped_sum = over_sum - over_count * resident
        return fit_sum + over_count * resident + passes * bumped_sum
    raise ValueError(f"unknown policy {policy!r}")


class BatchWorkloadEvaluator:
    """Evaluate one workload across a grid of ``(architecture, y)`` configs.

    Instances accumulate caches (tilings via ``matrix.memo``, occupancy
    reductions on the tilings, per-effective-config reports), so evaluating a
    ``y × GLB × PE`` grid costs the per-point engine's array work only once
    per *distinct tiling*, plus one broadcast pass over the config axis.

    Hand the whole grid to :meth:`prime` (or :meth:`evaluate_grid`) first —
    per-cell :meth:`reports` calls then only assemble cached reports.  A
    :meth:`reports` call for an unprimed cell still works (it primes a
    single-config batch), just without the cross-config amortization.
    """

    def __init__(self, workload: WorkloadDescriptor):
        self.workload = workload
        self._a = workload.a
        self._b = workload.b
        self._b_by_columns = self._b.transpose()
        self._naive = AcceleratorVariant.naive()
        self._prescient = AcceleratorVariant.prescient()
        self._ob_variants: Dict[float, AcceleratorVariant] = {}
        self._reports: Dict[tuple, PerformanceReport] = {}
        #: (variant key, operand, capacity, fifo) -> (TilerResult, reductions).
        self._levels: Dict[tuple, tuple] = {}
        #: (variant key, glb cap, pe cap, fifo fractions) -> everything about a
        #: config that depends only on capacities: the 19 reduction ints of
        #: the four levels plus the capacity-only report scalars.  One dict
        #: hit covers the whole ``num_pes × bandwidth`` axis of a grid.
        self._quads: Dict[tuple, tuple] = {}
        self._tilers: Dict[object, object] = {}
        self._compute_cycles: Dict[int, float] = {}
        # Workload constants, resolved once (the scipy nnz property chain and
        # the float conversions are measurable per-cell costs at grid scale).
        self._a_nnz = int(self._a.nnz)
        self._b_nnz = int(self._b.nnz)
        self._a_nnz_f = float(self._a_nnz)
        self._b_nnz_f = float(self._b_nnz)
        self._effectual = workload.effectual_multiplies
        self._output_writes = (float(workload.output_nonzeros)
                               * _OUTPUT_WORDS_PER_NONZERO)
        self._pe_buffer_reads = 2.0 * self._effectual
        self._mac_reads = float(self._effectual)
        self._intersection_steps = (2.0 * self._effectual
                                    + (self._a_nnz + self._b_nnz))

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #
    def reports(self, architecture: ArchitectureConfig,
                overbooking_target: float) -> Dict[str, PerformanceReport]:
        """The three variant reports of one grid cell, in report order.

        Matches ``ExTensorModel.evaluate_workload`` key-for-key (naive,
        prescient, overbooking — the overbooking key carries the ``y`` suffix
        for non-default targets) and value-for-value bitwise.
        """
        ob = self._ob_variant(overbooking_target)
        reports = self._reports
        naive = reports.get(("N", architecture))
        prescient = reports.get(("P", architecture))
        ob_report = reports.get(("OB", architecture, overbooking_target))
        if naive is None or prescient is None or ob_report is None:
            self.prime(((architecture, overbooking_target),))
            naive = reports[("N", architecture)]
            prescient = reports[("P", architecture)]
            ob_report = reports[("OB", architecture, overbooking_target)]
        return {
            self._naive.name: naive,
            self._prescient.name: prescient,
            ob.name: ob_report,
        }

    def prime(self, configs: Sequence[GridConfig]) -> None:
        """Evaluate every not-yet-cached effective config of ``configs``.

        This is the batched entry point: all pending configs are evaluated
        columnarly in one broadcast pass per fetch policy, after which
        :meth:`reports` is a cache lookup for every cell in ``configs``.
        """
        pending: Dict[tuple, tuple] = {}
        reports = self._reports
        for architecture, overbooking_target in configs:
            ob = self._ob_variant(overbooking_target)
            for key, spec, variant_key in (
                    (("N", architecture), self._naive.spec, "N"),
                    (("P", architecture), self._prescient.spec, "P"),
                    (("OB", architecture, overbooking_target), ob.spec,
                     ("OB", overbooking_target))):
                if key not in reports and key not in pending:
                    pending[key] = (architecture, spec, variant_key)
        if not pending:
            return
        by_policy: Dict[FetchPolicy, list] = {}
        for key, (architecture, spec, variant_key) in pending.items():
            by_policy.setdefault(spec.policy, []).append(
                (key, architecture, spec, variant_key))
        for policy, rows in by_policy.items():
            self._evaluate_rows(policy, rows)

    def evaluate_grid(self, configs: Sequence[GridConfig]
                      ) -> List[Dict[str, PerformanceReport]]:
        """Evaluate every ``(architecture, y)`` cell, aligned with ``configs``."""
        self.prime(configs)
        return [self.reports(architecture, target)
                for architecture, target in configs]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _ob_variant(self, overbooking_target: float) -> AcceleratorVariant:
        variant = self._ob_variants.get(overbooking_target)
        if variant is None:
            variant = AcceleratorVariant.overbooking(
                overbooking_target=overbooking_target)
            self._ob_variants[overbooking_target] = variant
        return variant

    def _tiled(self, variant_key, spec: VariantSpec, operand: str, matrix,
               capacity: int, fifo_words: int) -> tuple:
        """One level's ``(TilerResult, OccupancyReductions)``, cached.

        Tiler results are memoized on the operand matrices, so these are the
        *same objects* the per-point engine uses; the evaluator-local cache
        just skips re-hashing the tiler parameters per cell.
        """
        key = (variant_key, operand, capacity, fifo_words)
        entry = self._levels.get(key)
        if entry is None:
            tiler = self._tilers.get(variant_key)
            if tiler is None:
                tiler = spec.make_tiler()
                self._tilers[variant_key] = tiler
            result = tiler.tile(matrix, capacity)
            entry = (result,
                     result.tiling.occupancy_reductions(capacity, fifo_words))
            self._levels[key] = entry
        return entry

    def _quad(self, variant_key, spec: VariantSpec,
              arch: ArchitectureConfig) -> tuple:
        """Everything about a config that only its capacities determine.

        Returns ``(reduction ints, block_rows, tax, glb rate/util/bumped,
        pe rate/util)`` — the per-row inputs of :meth:`_evaluate_rows` that
        are invariant along the ``num_pes`` / bandwidth / frequency axes, so
        the gather loop pays one dict lookup instead of four level lookups
        and ~25 attribute reads per row.
        """
        glb_cap = arch.glb_capacity_words
        pe_cap = arch.pe_buffer_capacity_words
        glb_a = self._tiled(variant_key, spec, "A", self._a, glb_cap,
                            arch.glb_fifo_words)
        glb_b = self._tiled(variant_key, spec, "B", self._b_by_columns,
                            glb_cap, arch.glb_fifo_words)
        pe_a = self._tiled(variant_key, spec, "A", self._a, pe_cap,
                           arch.pe_fifo_words)
        pe_b = self._tiled(variant_key, spec, "B", self._b_by_columns,
                           pe_cap, arch.pe_fifo_words)
        r_ga, r_gb, r_pa, r_pb = glb_a[1], glb_b[1], pe_a[1], pe_b[1]
        ints = (
            r_ga.num_tiles, r_gb.num_tiles, r_pa.num_tiles, r_pb.num_tiles,
            r_gb.chunks, r_pb.chunks,
            r_ga.fit_sum, r_ga.over_sum, r_ga.over_count, r_ga.resident,
            r_ga.total,
            r_gb.fit_sum, r_gb.over_sum, r_gb.over_count, r_gb.resident,
            r_pa.fit_sum, r_pa.over_sum, r_pa.over_count, r_pa.resident,
        )
        tax = (glb_a[0].tax.total_elements
               + glb_b[0].tax.total_elements
               + pe_a[0].tax.total_elements
               + pe_b[0].tax.total_elements)
        return (ints, glb_a[0].block_rows, tax,
                _overbooking_rate(r_ga), _buffer_utilization(r_ga),
                _bumped_fraction(r_ga),
                _overbooking_rate(r_pa), _buffer_utilization(r_pa))

    def _cycles_of(self, num_pes: int) -> float:
        cycles = self._compute_cycles.get(num_pes)
        if cycles is None:
            cycles = _pe_array(num_pes).compute_cycles(self._effectual)
            self._compute_cycles[num_pes] = cycles
        return cycles

    def _evaluate_rows(self, policy: FetchPolicy, rows: Sequence[tuple]) -> None:
        """Evaluate one fetch policy's pending configs as an array program.

        ``AnalyticalEngine.evaluate`` replicated over the config axis: the
        integer scaffolding (tile counts, pass counts, affine fetch totals)
        runs as broadcast ``int64`` math — exact as long as the intermediate
        products stay below 2**63, orders of magnitude above any real
        workload — and the traffic words as broadcast ``float64`` products in
        the engine's exact expression order.
        """
        workload = self.workload
        n = len(rows)

        quads: List[tuple] = []
        ints: List[int] = []
        floats: List[tuple] = []
        quad_cache = self._quads
        for key, arch, spec, variant_key in rows:
            quad_key = (variant_key, arch.glb_capacity_words,
                        arch.pe_buffer_capacity_words,
                        arch.glb_fifo_fraction, arch.pe_fifo_fraction)
            quad = quad_cache.get(quad_key)
            if quad is None:
                quad = self._quad(variant_key, spec, arch)
                quad_cache[quad_key] = quad
            quads.append(quad)
            ints.extend(quad[0])
            ints.append(arch.num_pes)
            floats.append(
                (arch.traffic_words_per_nonzero,
                 arch.dram_bandwidth_words_per_cycle,
                 arch.glb_bandwidth_words_per_cycle)
                + _energy_table(arch.glb_capacity_words,
                                arch.pe_buffer_capacity_words,
                                arch.word_bits))

        columns = np.array(ints, dtype=np.int64).reshape(n, 20).T
        (nt_ga, nt_gb, nt_pa, nt_pb, chunks_gb, chunks_pb,
         ga_fit, ga_over, ga_count, ga_resident, ga_total,
         gb_fit, gb_over, gb_count, gb_resident,
         pa_fit, pa_over, pa_count, pa_resident, num_pes) = columns
        fcolumns = np.array(floats, dtype=np.float64).T
        wpn_column = fcolumns[0]
        dram_bandwidth = fcolumns[1]
        glb_bandwidth = fcolumns[2]
        (dram_r, dram_w, glb_r, glb_w, pe_r, pe_w,
         mac_r, mac_w, isect_r, isect_w) = fcolumns[3:]

        num_a_glb = np.maximum(1, nt_ga)
        num_b_glb = np.maximum(1, nt_gb)
        num_a_pe = np.maximum(1, nt_pa)
        num_b_pe = np.maximum(1, nt_pb)

        subtiles_per_a_glb = np.maximum(1, _ceil_div(num_a_pe, num_a_glb))
        rounds_per_pair = np.maximum(1, _ceil_div(subtiles_per_a_glb, num_pes))
        subtiles_per_b_glb = np.maximum(1, _ceil_div(num_b_pe, num_b_glb))

        passes_a_glb = np.maximum(num_b_glb, chunks_gb)
        passes_a_pe = np.maximum(subtiles_per_b_glb,
                                 _ceil_div(chunks_pb, num_b_glb))

        a_fetch = _fetch_totals(ga_fit, ga_over, ga_count, ga_resident,
                                passes_a_glb, policy)
        b_fetch = _fetch_totals(gb_fit, gb_over, gb_count, gb_resident,
                                rounds_per_pair, policy)
        a_pe_fetch = _fetch_totals(pa_fit, pa_over, pa_count, pa_resident,
                                   passes_a_pe, policy)

        # Traffic words: each product sequence mirrors the engine verbatim
        # (left-associated ``float(int) * float(int) * wpn``).
        dram_sr = a_fetch.astype(np.float64) * wpn_column
        dram_sb = ga_total.astype(np.float64) * wpn_column
        dram_st = (num_a_glb.astype(np.float64)
                   * b_fetch.astype(np.float64)) * wpn_column
        glb_sr = (num_b_glb.astype(np.float64)
                  * a_pe_fetch.astype(np.float64)) * wpn_column
        glb_sb = (num_b_glb.astype(np.float64)
                  * self._a_nnz_f) * wpn_column
        glb_st = ((num_a_glb * rounds_per_pair).astype(np.float64)
                  * self._b_nnz_f) * wpn_column

        # Cycles, energy and data reuse, still on the config axis — each
        # column is the engine's scalar expression broadcast elementwise (the
        # ``LevelTraffic`` property sums and ``EnergyModel.report`` products,
        # in the same association order, on the same float64 values).
        output_writes = self._output_writes
        compute_cycles = np.array([self._cycles_of(pes)
                                   for pes in num_pes.tolist()])
        dram_total_reads = dram_sr + dram_st
        glb_total_reads = glb_sr + glb_st
        dram_cycles = (dram_total_reads + output_writes) / dram_bandwidth
        glb_cycles = (glb_total_reads + output_writes) / glb_bandwidth
        cycles = np.maximum(np.maximum(dram_cycles, glb_cycles),
                            compute_cycles)
        dram_bound = ((dram_cycles >= glb_cycles)
                      & (dram_cycles >= compute_cycles)).tolist()
        glb_bound = (glb_cycles >= compute_cycles).tolist()

        e_dram = dram_total_reads * dram_r + output_writes * dram_w
        e_glb = (glb_total_reads * glb_r
                 + (dram_total_reads + output_writes) * glb_w)
        e_pe = self._pe_buffer_reads * pe_r + glb_total_reads * pe_w
        e_mac = self._mac_reads * mac_r + 0.0 * mac_w
        e_isect = self._intersection_steps * isect_r + 0.0 * isect_w

        accesses = self._a_nnz_f * passes_a_glb.astype(np.float64)
        actual_fetches = dram_sr / wpn_column
        reusable = np.maximum(accesses - self._a_nnz_f, 1.0)
        data_reuse = np.maximum(
            0.0, 1.0 - (actual_fetches - self._a_nnz_f) / reusable)

        dram_sr = dram_sr.tolist()
        dram_sb = dram_sb.tolist()
        dram_st = dram_st.tolist()
        glb_sr = glb_sr.tolist()
        glb_sb = glb_sb.tolist()
        glb_st = glb_st.tolist()
        dram_cycles = dram_cycles.tolist()
        glb_cycles = glb_cycles.tolist()
        compute_cycles = compute_cycles.tolist()
        cycles = cycles.tolist()
        e_dram = e_dram.tolist()
        e_glb = e_glb.tolist()
        e_pe = e_pe.tolist()
        e_mac = e_mac.tolist()
        e_isect = e_isect.tolist()
        data_reuse = data_reuse.tolist()
        num_a_glb = num_a_glb.tolist()
        num_b_glb = num_b_glb.tolist()
        num_a_pe = num_a_pe.tolist()
        num_b_pe = num_b_pe.tolist()
        rounds_per_pair = rounds_per_pair.tolist()

        # Report construction seeds each frozen dataclass's ``__dict__``
        # directly instead of calling ``__init__``: every field value is
        # already computed (and non-negative by construction, which is all
        # ``LevelTraffic.__post_init__`` would check), so the instances are
        # indistinguishable from engine-built ones — same fields, same
        # equality/hash/pickle behaviour — at a fraction of the per-cell
        # cost.  ``tests/model/test_batch.py`` pins the bitwise identity.
        new = object.__new__
        workload_name = workload.name
        output_nonzeros = workload.output_nonzeros
        kernel = workload.kernel
        effectual = self._effectual
        reports = self._reports
        for i, (key, arch, spec, variant_key) in enumerate(rows):
            (_, block_rows, tax, glb_rate, glb_util, bumped,
             pe_rate, pe_util) = quads[i]

            dram = new(LevelTraffic)
            dram.__dict__.update(
                level="dram", stationary_reads=dram_sr[i],
                stationary_baseline=dram_sb[i], streaming_reads=dram_st[i],
                output_writes=output_writes)
            glb = new(LevelTraffic)
            glb.__dict__.update(
                level="global_buffer", stationary_reads=glb_sr[i],
                stationary_baseline=glb_sb[i], streaming_reads=glb_st[i],
                output_writes=output_writes)
            traffic = new(TrafficBreakdown)
            traffic.__dict__.update(dram=dram, global_buffer=glb)
            energy = new(EnergyReport)
            energy.__dict__["per_component_pj"] = {
                "dram": e_dram[i],
                "global_buffer": e_glb[i],
                "pe_buffer": e_pe[i],
                "mac": e_mac[i],
                "intersection": e_isect[i],
            }

            report = new(PerformanceReport)
            report.__dict__.update(
                workload=workload_name,
                variant=spec.name,
                cycles=cycles[i],
                energy=energy,
                traffic=traffic,
                effectual_multiplies=effectual,
                output_nonzeros=output_nonzeros,
                glb_block_rows=block_rows,
                glb_overbooking_rate=glb_rate,
                glb_utilization=glb_util,
                bumped_fraction=bumped,
                data_reuse_fraction=data_reuse[i],
                tiling_tax_elements=tax,
                bound=("dram" if dram_bound[i]
                       else "glb" if glb_bound[i] else "compute"),
                details={
                    "num_a_glb_tiles": float(num_a_glb[i]),
                    "num_b_glb_tiles": float(num_b_glb[i]),
                    "num_a_pe_tiles": float(num_a_pe[i]),
                    "num_b_pe_tiles": float(num_b_pe[i]),
                    "rounds_per_pair": float(rounds_per_pair[i]),
                    "dram_cycles": dram_cycles[i],
                    "glb_cycles": glb_cycles[i],
                    "compute_cycles": compute_cycles[i],
                    "pe_overbooking_rate": pe_rate,
                    "pe_utilization": pe_util,
                },
                kernel=kernel)
            reports[key] = report


def config_grid(base: ArchitectureConfig, *, y_values: Iterable[float],
                glb_capacities: Optional[Iterable[int]] = None,
                pe_buffer_capacities: Optional[Iterable[int]] = None,
                num_pes: Optional[Iterable[int]] = None) -> List[GridConfig]:
    """The full cross product of the given axes as ``(architecture, y)`` cells.

    Axis order (GLB outermost, then PE buffer, then PE count, then ``y``)
    matches the sweep planner's loop nesting.  ``None`` axes stay at the base
    architecture's value.
    """
    glb_axis = list(glb_capacities) if glb_capacities is not None \
        else [base.glb_capacity_words]
    pe_axis = list(pe_buffer_capacities) if pe_buffer_capacities is not None \
        else [base.pe_buffer_capacity_words]
    pes_axis = list(num_pes) if num_pes is not None else [base.num_pes]
    configs: List[GridConfig] = []
    for glb in glb_axis:
        for pe in pe_axis:
            for pes in pes_axis:
                overrides = {}
                if glb != base.glb_capacity_words:
                    overrides["glb_capacity_words"] = int(glb)
                if pe != base.pe_buffer_capacity_words:
                    overrides["pe_buffer_capacity_words"] = int(pe)
                if pes != base.num_pes:
                    overrides["num_pes"] = int(pes)
                arch = base.with_overrides(**overrides) if overrides else base
                for y in y_values:
                    configs.append((arch, float(y)))
    return configs


def evaluate_workload_grid(workload: WorkloadDescriptor,
                           configs: Sequence[GridConfig]
                           ) -> List[Dict[str, PerformanceReport]]:
    """Batched grid evaluation of one workload (see the module docstring).

    Returns one ``{variant name: PerformanceReport}`` dict per config, in
    config order — bit-identical to calling the per-point engine through
    ``ExTensorModel.evaluate_workload`` at each cell.
    """
    return BatchWorkloadEvaluator(workload).evaluate_grid(configs)
