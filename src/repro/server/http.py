"""HTTP front end of the evaluation service (stdlib ``http.server`` only).

``python -m repro serve`` binds a :class:`ReproServer` —
:class:`http.server.ThreadingHTTPServer` over one shared
:class:`~repro.server.service.EvaluationService` — exposing the pipeline's
three drivers as JSON endpoints:

``POST /sweep``
    Body: the ``sweep`` subcommand's grid arguments as JSON (see
    ``docs/SERVER.md``).  Streams newline-delimited JSON (chunked):
    a ``plan`` event, one ``cell`` event per grid cell as it completes
    (tagged ``memo``/``store``/``computed``), then a terminal ``result``
    event whose ``artifact`` field is *exactly* the payload of the CLI's
    ``sweep.json`` — ``json.dumps(artifact, indent=2) + "\\n"`` on the
    client reproduces the CLI file byte for byte.

``POST /run``
    Body: ``{"experiments": [...], ...}``.  Streams ``cell`` events for the
    prefetched evaluations, one ``artifact`` event per experiment, then
    ``result``.

``POST /search``
    Body: the ``search`` subcommand's arguments.  The generational loop
    cannot be coalesced (each generation depends on the last), so it runs
    in the handler thread against the *shared* store and memo — concurrent
    searches and sweeps still dedup through both.  Streams ``result``.

``GET /stats``
    Service counters (passes, coalesced cells, memo/store hits, warm hit
    rate) plus the shared store's session counters.

``GET /health``
    Liveness probe.

``POST /shutdown``
    Graceful stop: responds immediately, then the server stops accepting
    connections, finishes every in-flight request (handler threads are
    non-daemon and ``server_close`` joins them), and drains the service
    queue.  No orphaned leases, tickets, or shared-memory segments.

Requests are deliberately *identity-only* (suite names, grid axes, synth
specs) — never server-local paths — so any client's request means the same
thing on any server sharing a store.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.experiments import registry
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheduler import ScheduleStats, requests_for_context
from repro.experiments.search import search_frontier
from repro.experiments.store import ReportStore
from repro.experiments.surrogate import parse_constraint
from repro.experiments.sweep import collect_result, plan_grid
from repro.server.service import (
    DEFAULT_BATCH_WINDOW,
    EvaluationService,
    ServiceClosed,
)
from repro.tensor.suite import default_suite, small_suite, synth_suite
from repro.tensor.synth import parse_synth_spec


class RequestError(ValueError):
    """A client request that cannot be served (HTTP 400)."""


def _suite_from_body(body: dict):
    """Resolve the request's suite: synth specs or a named built-in.

    Corpus matrices (``--matrix``) are CLI-only: they name *server-local*
    files, which a multi-tenant endpoint must not dereference.
    """
    synth = body.get("synth")
    if synth:
        try:
            return synth_suite([parse_synth_spec(spec) for spec in synth])
        except (ValueError, KeyError) as error:
            raise RequestError(f"bad synth spec: {error}") from error
    name = body.get("suite", "quick")
    suites = {"full": default_suite, "quick": small_suite}
    if name not in suites:
        raise RequestError(f"unknown suite {name!r} (known: full, quick)")
    return suites[name]()


def _grid_kwargs_from_body(body: dict) -> dict:
    """The ``plan_grid`` axes of a ``/sweep`` body (CLI-flag defaults)."""
    return {
        "y_values": [float(y) for y in body.get("y", [0.05, 0.10, 0.22])],
        "glb_scales": [float(s) for s in body.get("glb_scales", [1.0])],
        "pe_scales": [float(s) for s in body.get("pe_scales", [1.0])],
        "kernels": [str(k) for k in body.get("kernels", ["gram"])],
        "workloads": body.get("workloads"),
    }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-server/1"

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    @property
    def service(self) -> EvaluationService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        data = (json.dumps(payload) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError as error:
            raise RequestError(f"request body is not JSON: {error}") from error
        if not isinstance(body, dict):
            raise RequestError("request body must be a JSON object")
        return body

    # Chunked NDJSON streaming (HTTP/1.1 framing written by hand: the
    # stdlib server offers no helper, and each event must reach the client
    # as soon as it happens).
    def _begin_stream(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

    def _stream_event(self, payload: dict) -> None:
        data = (json.dumps(payload) + "\n").encode()
        self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
        self.wfile.flush()

    def _end_stream(self) -> None:
        self.wfile.write(b"0\r\n\r\n")

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/health":
            self._send_json({"status": "ok"})
        elif self.path == "/stats":
            self._send_json(self.service.stats())
        else:
            self._send_json({"error": f"unknown path {self.path}"}, 404)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/shutdown":
            self._send_json({"status": "draining"})
            # shutdown() blocks until serve_forever returns — hand it to a
            # helper thread so this response can complete first.
            threading.Thread(target=self.server.shutdown,
                             daemon=True).start()
            return
        handlers = {"/sweep": self._handle_sweep, "/run": self._handle_run,
                    "/search": self._handle_search}
        handler = handlers.get(self.path)
        if handler is None:
            self._send_json({"error": f"unknown path {self.path}"}, 404)
            return
        try:
            body = self._read_body()
        except RequestError as error:
            self._send_json({"error": str(error)}, 400)
            return
        try:
            handler(body)
        except RequestError as error:
            self._send_json({"error": str(error)}, 400)
        except ServiceClosed:
            self._send_json({"error": "server is shutting down"}, 503)

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _handle_sweep(self, body: dict) -> None:
        suite = _suite_from_body(body)
        try:
            plan = plan_grid(suite, **_grid_kwargs_from_body(body))
        except ValueError as error:
            raise RequestError(str(error)) from error

        store = self.service.store
        if store is not None:
            store.write_manifest(plan.signature,
                                 plan.manifest_payload("in-progress"))

        ticket = self.service.submit(list(plan.requests))
        self._begin_stream()
        self._stream_event({
            "event": "plan",
            "signature": plan.signature,
            "points": len(plan.points),
            "cells": len(plan.requests),
        })
        schedule: Optional[dict] = None
        for event in ticket.events():
            if event["event"] == "done":
                schedule = event["schedule"]
            else:
                self._stream_event(event)
                if event["event"] == "error":
                    self._end_stream()
                    return
        result = collect_result(plan, ScheduleStats(**schedule))
        if store is not None:
            store.write_manifest(plan.signature, plan.manifest_payload(
                "complete", computed=schedule["computed"],
                store_hits=schedule["store_hits"]))
        self._stream_event({"event": "result",
                            "artifact": result.to_jsonable(),
                            "schedule": schedule})
        self._end_stream()

    def _handle_run(self, body: dict) -> None:
        names = body.get("experiments") or []
        if not names:
            raise RequestError("name at least one experiment "
                               "(\"experiments\": [...])")
        try:
            selected = [registry.get(name) for name in names]
        except KeyError as error:
            raise RequestError(str(error.args[0])) from error

        suite_name = body.get("suite", "quick")
        if suite_name not in ("full", "quick"):
            raise RequestError(f"unknown suite {suite_name!r} "
                               "(known: full, quick)")
        kernel = str(body.get("kernel", "gram"))
        y = float(body.get("overbooking_target", 0.10))
        quick = suite_name == "quick"
        params = {
            experiment.name: dict(experiment.quick_params) if quick else {}
            for experiment in selected
        }
        store = self.service.store
        for experiment in selected:
            if experiment.accepts_max_workers:
                params[experiment.name].setdefault(
                    "max_workers", self.service.scheduler.max_workers)
            if (store is not None and experiment.accepts_store
                    and experiment.store_scope == "reports"):
                params[experiment.name].setdefault("store", store)

        context = None
        if any(experiment.needs_context for experiment in selected):
            context = ExperimentContext.for_suite(
                suite_name, overbooking_target=y, kernel=kernel)

        ticket = None
        if context is not None:
            targets = []
            for experiment in selected:
                targets.extend(experiment.evaluation_targets(
                    context, **params[experiment.name]))
            ticket = self.service.submit(
                requests_for_context(context, targets))
        self._begin_stream()
        if ticket is not None:
            for event in ticket.events():
                if event["event"] == "done":
                    continue
                self._stream_event(event)
                if event["event"] == "error":
                    self._end_stream()
                    return
        manifest = []
        for experiment in selected:
            result = experiment.run(
                context if experiment.needs_context else None,
                **params[experiment.name])
            payload = {
                "experiment": experiment.name,
                "artifact": experiment.artifact,
                "title": experiment.title,
                "suite": suite_name if experiment.needs_context else None,
                "kernel": kernel if experiment.needs_context else None,
                "overbooking_target": y if experiment.needs_context else None,
                "params": {key: (str(value.root)
                                 if isinstance(value, ReportStore) else value)
                           for key, value in params[experiment.name].items()},
                "result": experiment.to_json(result),
            }
            self._stream_event({"event": "artifact", "payload": payload})
            manifest.append({"experiment": experiment.name,
                             "artifact": experiment.artifact})
        self._stream_event({"event": "result", "experiments": manifest})
        self._end_stream()

    def _handle_search(self, body: dict) -> None:
        suite = _suite_from_body(body)
        constraints = body.get("constraints")
        if constraints is not None:
            try:
                constraints = [parse_constraint(text) for text in constraints]
            except ValueError as error:
                raise RequestError(str(error)) from error
        try:
            # Runs in this handler thread: generations cannot be coalesced,
            # but sharing the service's store (and the process memo) still
            # dedups against everything the fleet has evaluated.
            result = search_frontier(
                suite,
                kernels=[str(k) for k in body.get("kernels", ["gram"])],
                y_values=[float(v) for v in body.get("y", [0.05, 0.10, 0.22])],
                glb_scales=[float(s) for s in
                            body.get("glb_scales", [0.5, 1.0, 2.0])],
                pe_scales=[float(s) for s in
                           body.get("pe_scales", [0.5, 1.0, 2.0])],
                max_generations=int(body.get("generations", 3)),
                workloads=body.get("workloads"),
                max_workers=self.service.scheduler.max_workers,
                store=self.service.store,
                use_batch=self.service.scheduler.use_batch,
                use_surrogate=bool(body.get("surrogate", True)),
                constraints=constraints,
            )
        except ValueError as error:
            raise RequestError(str(error)) from error
        self._begin_stream()
        self._stream_event({"event": "result",
                            "artifact": result.to_jsonable()})
        self._end_stream()


class ReproServer(ThreadingHTTPServer):
    """Threading HTTP server wired to one shared evaluation service.

    ``daemon_threads = False`` + ``block_on_close = True`` make
    :meth:`server_close` wait for every in-flight handler — the first half
    of graceful shutdown (the second is ``service.close(drain=True)``).
    """

    daemon_threads = False
    block_on_close = True

    def __init__(self, address, service: EvaluationService, *,
                 verbose: bool = False):
        self.service = service
        self.verbose = verbose
        super().__init__(address, _Handler)


def create_server(*, host: str = "127.0.0.1", port: int = 0, store=None,
                  max_workers: Optional[int] = None, use_batch: bool = True,
                  batch_window: float = DEFAULT_BATCH_WINDOW,
                  verbose: bool = False) -> ReproServer:
    """Bind a :class:`ReproServer` (``port=0`` picks a free port).

    The caller owns the loop: call ``serve_forever()``, and on the way out
    ``server_close()`` then ``service.close(drain=True)`` — or use
    :func:`serve`, which does all three.
    """
    service = EvaluationService(store=store, max_workers=max_workers,
                                use_batch=use_batch,
                                batch_window=batch_window)
    return ReproServer((host, port), service, verbose=verbose)


def serve(server: ReproServer) -> None:
    """Run ``server`` until ``/shutdown`` or KeyboardInterrupt, then drain.

    Shutdown order matters: stop accepting (serve_forever returns), join
    in-flight handlers (``server_close`` — they may still be submitting),
    then drain the service queue (``service.close``).
    """
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.service.close(drain=True)
