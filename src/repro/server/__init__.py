"""Evaluation-as-a-service: a resident daemon over the scheduler/store stack.

Three layers, importable separately:

* :mod:`repro.server.service` — :class:`EvaluationService`, the coalescing
  loop that turns many clients' requests into shared scheduler passes.
* :mod:`repro.server.http` — the stdlib HTTP front end
  (:func:`create_server` / :func:`serve`) streaming chunked JSON lines.
* :mod:`repro.server.client` — the stdlib client (:class:`ServerClient`)
  used by tests, CI, and the load generator.
"""

from repro.server.client import ServerClient, StreamOutcome, artifact_bytes
from repro.server.http import ReproServer, create_server, serve
from repro.server.service import (
    DEFAULT_BATCH_WINDOW,
    EvaluationService,
    ServiceClosed,
    ServiceError,
    Ticket,
)

__all__ = [
    "DEFAULT_BATCH_WINDOW",
    "EvaluationService",
    "ReproServer",
    "ServerClient",
    "ServiceClosed",
    "ServiceError",
    "StreamOutcome",
    "Ticket",
    "artifact_bytes",
    "create_server",
    "serve",
]
