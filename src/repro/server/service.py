"""Coalescing evaluation service: the scheduler as a shared resident loop.

The CLI pipeline treats :class:`~repro.experiments.scheduler.
EvaluationScheduler` as a per-process helper — one caller, one batch, one
fan-out.  A daemon serving many concurrent clients wants the opposite shape:
*every* client's evaluation requests funneled into **one** scheduler pass per
batch window, so overlapping grids are deduplicated across clients exactly
as they are within one (the fleet-wide dedup of the ROADMAP's
millions-of-users north star).

:class:`EvaluationService` is that funnel:

* Clients :meth:`~EvaluationService.submit` lists of
  :class:`~repro.experiments.scheduler.EvaluationRequest`\\ s and get back a
  :class:`Ticket` — a private event stream for *their* cells.
* A single **service loop thread** takes the first queued ticket, waits
  ``batch_window`` seconds collecting whatever else arrives (the coalescing
  window), unions all tickets' requests, and runs one
  ``scheduler.prefetch`` over the union.  Requests two tickets share are
  evaluated once and both tickets hear about it.
* Per-cell completion events stream to subscribed tickets *as cells finish*
  (via the scheduler's ``on_result`` hook), tagged with where the cell came
  from: ``"memo"`` (already warm in-process), ``"store"`` (on-disk report
  store), or ``"computed"`` (evaluated this pass).
* Every computed cell lands in the shared
  :class:`~repro.experiments.store.ReportStore` the moment it completes
  (the scheduler persists per-request), so the fleet-wide hit rate only
  climbs.

Serializing passes through one loop thread is a feature, not a limitation:
the scheduler's fan-out machinery (process pools, shared-memory suite
export) was built for one driving thread, and a resident service gets its
concurrency from coalescing — many clients, one pass — not from racing
passes against each other.

:meth:`EvaluationService.close` with ``drain=True`` (the default) finishes
every queued ticket before returning, which is what makes the HTTP layer's
graceful shutdown graceful.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.experiments.runner import memoized_reports
from repro.experiments.scheduler import EvaluationRequest, EvaluationScheduler

#: Default coalescing window in seconds: long enough that a burst of
#: concurrent clients lands in one scheduler pass, short enough to be
#: invisible next to any cold evaluation.
DEFAULT_BATCH_WINDOW = 0.05


class ServiceError(RuntimeError):
    """An evaluation pass failed; the ticket's ``error`` event carries why."""


class ServiceClosed(RuntimeError):
    """submit() after close(): the service no longer accepts work."""


#: Queue sentinel that tells the service loop to exit.
_SHUTDOWN = object()


class Ticket:
    """One client's view of a submitted batch: a private event stream.

    Events are plain JSON-ready dicts:

    ``{"event": "cell", "workload": ..., "kernel": ..., "y": ...,
    "source": "memo" | "store" | "computed"}``
        One of this ticket's cells is ready (duplicates across coalesced
        tickets fire once *per subscribed ticket*).

    ``{"event": "done", "schedule": {...ScheduleStats fields...}}``
        The pass covering this ticket finished; every cell is warm in the
        process memo.  Terminal.

    ``{"event": "error", "detail": traceback}``
        The pass died; nothing about this ticket's cells is guaranteed.
        Terminal.
    """

    def __init__(self, requests: Sequence[EvaluationRequest]):
        self.requests: List[EvaluationRequest] = list(requests)
        self._events: "queue.SimpleQueue[dict]" = queue.SimpleQueue()

    def _emit(self, event: dict) -> None:
        self._events.put(event)

    def events(self) -> Iterator[dict]:
        """Yield events as they arrive, ending after ``done``/``error``."""
        while True:
            event = self._events.get()
            yield event
            if event["event"] in ("done", "error"):
                return

    def wait(self) -> dict:
        """Block until the pass finishes; return the ``done`` event.

        Raises :class:`ServiceError` if the pass failed.  Cell events are
        consumed and discarded — use :meth:`events` to observe them.
        """
        last = {}
        for event in self.events():
            last = event
        if last.get("event") == "error":
            raise ServiceError(last.get("detail", "evaluation pass failed"))
        return last


@dataclass
class ServiceCounters:
    """Lifetime totals of one service (the ``/stats`` endpoint's payload).

    ``coalesced`` counts duplicate cells merged away *across tickets of one
    pass*; ``memo_hits``/``store_hits``/``computed`` partition each pass's
    unique cells by where they were served from.
    """

    passes: int = 0
    tickets: int = 0
    requests: int = 0
    coalesced: int = 0
    memo_hits: int = 0
    store_hits: int = 0
    computed: int = 0

    @property
    def unique_cells(self) -> int:
        return self.requests - self.coalesced

    @property
    def warm_hit_rate(self) -> float:
        """Fraction of unique cells served without evaluating anything."""
        if self.unique_cells == 0:
            return 0.0
        return (self.memo_hits + self.store_hits) / self.unique_cells

    def to_jsonable(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["unique_cells"] = self.unique_cells
        payload["warm_hit_rate"] = self.warm_hit_rate
        return payload


def _cell_event(request: EvaluationRequest, source: str) -> dict:
    return {
        "event": "cell",
        "workload": request.workload,
        "kernel": request.kernel,
        "y": request.overbooking_target,
        "source": source,
    }


class EvaluationService:
    """The coalescing funnel in front of one shared scheduler (see module
    docstring).

    Parameters
    ----------
    store:
        Optional shared :class:`~repro.experiments.store.ReportStore`; when
        given, every pass consults it before evaluating and persists what it
        computes (the scheduler's usual durable tier, now fleet-shared).
    max_workers / use_batch:
        Forwarded to the underlying scheduler.
    batch_window:
        Seconds the loop waits after the first ticket of a pass for more
        tickets to coalesce with it.  ``0`` disables waiting (each pass
        takes whatever is queued at that instant).
    auto_start:
        ``False`` leaves the loop unstarted; tests then drive passes
        deterministically with :meth:`step`.
    """

    def __init__(self, *, store=None, max_workers: Optional[int] = None,
                 use_batch: bool = True,
                 batch_window: float = DEFAULT_BATCH_WINDOW,
                 auto_start: bool = True):
        self.store = store
        self.scheduler = EvaluationScheduler(
            max_workers=max_workers, store=store, use_batch=use_batch)
        self.batch_window = max(0.0, float(batch_window))
        self.counters = ServiceCounters()
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self._drain = True
        self._thread: Optional[threading.Thread] = None
        if auto_start:
            self.start()

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def submit(self, requests: Sequence[EvaluationRequest]) -> Ticket:
        """Queue a batch for the next coalesced pass; returns its ticket."""
        with self._lock:
            if self._closed:
                raise ServiceClosed("evaluation service is shut down")
            ticket = Ticket(requests)
            self._queue.put(ticket)
        return ticket

    def stats(self) -> dict:
        """Counters for the ``/stats`` endpoint (service + store session)."""
        with self._lock:
            payload = self.counters.to_jsonable()
        if self.store is not None:
            session = self.store.session
            payload["store_session"] = {
                "hits": session.hits,
                "misses": session.misses,
                "writes": session.writes,
                "quarantined": session.quarantined,
            }
        return payload

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="evaluation-service", daemon=True)
            self._thread.start()

    def close(self, *, drain: bool = True) -> None:
        """Stop the service.  ``drain=True`` finishes every queued ticket
        first; ``False`` fails them fast with an ``error`` event.  New
        :meth:`submit` calls raise :class:`ServiceClosed` either way.
        Idempotent."""
        with self._lock:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
                self._drain = drain
        if already:
            return
        self._queue.put(_SHUTDOWN)
        if self._thread is not None:
            self._thread.join()
        else:
            # Never started (auto_start=False): settle the queue in-line so
            # close() keeps its drain contract without a loop thread.
            self._settle_queue(drain)

    # ------------------------------------------------------------------ #
    # The service loop
    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._settle_queue(self._drain)
                return
            batch = [item]
            stop_after = False
            deadline = time.monotonic() + self.batch_window
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    extra = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if extra is _SHUTDOWN:
                    stop_after = True
                    break
                batch.append(extra)
            self._run_pass(batch)
            if stop_after:
                self._settle_queue(self._drain)
                return

    def _settle_queue(self, drain: bool) -> None:
        """Process (or fail) every ticket still queued at shutdown."""
        leftover: List[Ticket] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                leftover.append(item)
        if not leftover:
            return
        if drain:
            self._run_pass(leftover)
        else:
            for ticket in leftover:
                ticket._emit({"event": "error",
                              "detail": "service shut down before this "
                                        "batch ran"})

    def step(self) -> int:
        """Run everything currently queued as one pass (test/manual mode).

        Returns the number of tickets processed.  Only meaningful with
        ``auto_start=False`` — with the loop running, it would race it.
        """
        pending: List[Ticket] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                pending.append(item)
        if pending:
            self._run_pass(pending)
        return len(pending)

    def _run_pass(self, tickets: List[Ticket]) -> None:
        subscribers: Dict[tuple, List[Ticket]] = {}
        unique: Dict[tuple, EvaluationRequest] = {}
        total = 0
        for ticket in tickets:
            for request in ticket.requests:
                total += 1
                unique.setdefault(request.memo_key, request)
                bucket = subscribers.setdefault(request.memo_key, [])
                if not bucket or bucket[-1] is not ticket:
                    bucket.append(ticket)

        def emit_cell(request: EvaluationRequest, _reports, source: str,
                      ) -> None:
            event = _cell_event(request, source)
            for ticket in subscribers.get(request.memo_key, ()):
                ticket._emit(event)

        # Cells already warm in the process memo are announced immediately —
        # the scheduler never schedules them, so its hook never fires.
        for key, request in unique.items():
            if memoized_reports(key) is not None:
                emit_cell(request, None, "memo")

        try:
            stats = self.scheduler.prefetch(
                list(unique.values()),
                on_result=lambda request, reports, source:
                    emit_cell(request, reports, source))
        except Exception:  # noqa: BLE001 - fail every coalesced ticket
            detail = traceback.format_exc()
            for ticket in tickets:
                ticket._emit({"event": "error", "detail": detail})
            return

        with self._lock:
            self.counters.passes += 1
            self.counters.tickets += len(tickets)
            self.counters.requests += total
            self.counters.coalesced += total - len(unique)
            self.counters.memo_hits += stats.warm
            self.counters.store_hits += stats.store_hits
            self.counters.computed += stats.computed

        schedule = dataclasses.asdict(stats)
        for ticket in tickets:
            ticket._emit({"event": "done", "schedule": schedule})
