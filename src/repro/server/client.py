"""Stdlib client for the evaluation daemon (``http.client``, no deps).

One :class:`ServerClient` per server; each call opens its own connection
(requests are long-lived streams, not chatty RPCs, so keep-alive buys
nothing and per-call connections keep the client thread-safe — the load
generator drives one instance from many threads).

Streamed endpoints return a :class:`StreamOutcome`: the ordered event list,
the terminal artifact, and the pass's schedule stats.  To materialize a
server-side sweep exactly as the CLI would have written it, use
:func:`artifact_bytes` — the artifact dict round-trips through JSON with
key order and float reprs intact, so the bytes match ``sweep.json`` from
``python -m repro sweep`` exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from http.client import HTTPConnection
from typing import List, Optional, Sequence


class ServerProtocolError(RuntimeError):
    """The server answered with an error status or a failed stream."""


def artifact_bytes(artifact: dict) -> bytes:
    """Encode a streamed artifact exactly as the CLI writes it to disk."""
    return (json.dumps(artifact, indent=2) + "\n").encode()


@dataclass
class StreamOutcome:
    """Everything one streamed request produced."""

    events: List[dict] = field(default_factory=list)
    artifact: Optional[dict] = None
    schedule: Optional[dict] = None

    @property
    def cells(self) -> List[dict]:
        return [event for event in self.events if event["event"] == "cell"]

    def cell_sources(self) -> dict:
        """Histogram of where this request's cells were served from."""
        counts: dict = {}
        for cell in self.cells:
            counts[cell["source"]] = counts.get(cell["source"], 0) + 1
        return counts


class ServerClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 8000, *,
                 timeout: float = 300.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> HTTPConnection:
        connection = HTTPConnection(self.host, self.port,
                                    timeout=self.timeout)
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Connection": "close"}
        if payload is not None:
            headers["Content-Type"] = "application/json"
        connection.request(method, path, body=payload, headers=headers)
        return connection

    def _json(self, method: str, path: str,
              body: Optional[dict] = None) -> dict:
        connection = self._request(method, path, body)
        try:
            response = connection.getresponse()
            payload = json.loads(response.read() or b"{}")
            if response.status >= 400:
                raise ServerProtocolError(
                    f"{method} {path} -> {response.status}: "
                    f"{payload.get('error', payload)}")
            return payload
        finally:
            connection.close()

    def _stream(self, path: str, body: dict) -> StreamOutcome:
        connection = self._request("POST", path, body)
        try:
            response = connection.getresponse()
            if response.status >= 400:
                payload = json.loads(response.read() or b"{}")
                raise ServerProtocolError(
                    f"POST {path} -> {response.status}: "
                    f"{payload.get('error', payload)}")
            outcome = StreamOutcome()
            # http.client undoes the chunked framing; each line is one event.
            for line in response:
                if not line.strip():
                    continue
                event = json.loads(line)
                outcome.events.append(event)
                if event["event"] == "error":
                    raise ServerProtocolError(
                        f"POST {path} failed server-side:\n"
                        f"{event.get('detail', '')}")
                if event["event"] == "result":
                    outcome.artifact = event.get("artifact")
                    outcome.schedule = event.get("schedule")
            if not any(event["event"] == "result"
                       for event in outcome.events):
                raise ServerProtocolError(
                    f"POST {path}: stream ended without a result event")
            return outcome
        finally:
            connection.close()

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        return self._json("GET", "/health")

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def shutdown(self) -> dict:
        return self._json("POST", "/shutdown")

    def sweep(self, *, suite: str = "quick",
              y: Sequence[float] = (0.05, 0.10, 0.22),
              glb_scales: Sequence[float] = (1.0,),
              pe_scales: Sequence[float] = (1.0,),
              kernels: Sequence[str] = ("gram",),
              workloads: Optional[Sequence[str]] = None,
              synth: Optional[Sequence[str]] = None) -> StreamOutcome:
        return self._stream("/sweep", {
            "suite": suite, "y": list(y),
            "glb_scales": list(glb_scales), "pe_scales": list(pe_scales),
            "kernels": list(kernels),
            "workloads": list(workloads) if workloads else None,
            "synth": list(synth) if synth else None,
        })

    def run(self, experiments: Sequence[str], *, suite: str = "quick",
            kernel: str = "gram",
            overbooking_target: float = 0.10) -> StreamOutcome:
        return self._stream("/run", {
            "experiments": list(experiments), "suite": suite,
            "kernel": kernel, "overbooking_target": overbooking_target,
        })

    def search(self, *, suite: str = "quick",
               kernels: Sequence[str] = ("gram",),
               y: Sequence[float] = (0.05, 0.10, 0.22),
               glb_scales: Sequence[float] = (0.5, 1.0, 2.0),
               pe_scales: Sequence[float] = (0.5, 1.0, 2.0),
               generations: int = 2,
               workloads: Optional[Sequence[str]] = None,
               constraints: Optional[Sequence[str]] = None,
               surrogate: bool = True) -> StreamOutcome:
        return self._stream("/search", {
            "suite": suite, "kernels": list(kernels), "y": list(y),
            "glb_scales": list(glb_scales), "pe_scales": list(pe_scales),
            "generations": generations,
            "workloads": list(workloads) if workloads else None,
            "constraints": list(constraints) if constraints else None,
            "surrogate": surrogate,
        })
