"""Position-space tiling (PST): uniform-occupancy tiles.

PST partitions the *positions* of the nonzeros (their order in the compressed
representation) into consecutive runs of exactly the buffer capacity, so every
tile fills the buffer perfectly — the "uniform occupancy" strategy of Table 1.
The price is operand matching: because a tile's coordinate footprint is now an
arbitrary, data-dependent rectangle, finding the matching coordinates in the
other operand requires traversing that operand at runtime for every tile
(Section 2.2.2 and Fig. 2b).

The implementation records both the tiles (with their bounding rectangles,
which is what the operand-matching traversal has to cover) and the runtime
matching cost in the returned :class:`~repro.tiling.base.TilingTax`.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.sparse import SparseMatrix
from repro.tiling.base import Tiling, TilingTax
from repro.utils.validation import check_positive_int


def position_space_tiling(matrix: SparseMatrix, capacity: int, *,
                          other_operand_nnz: int | None = None) -> Tiling:
    """Partition ``matrix`` into uniform-occupancy tiles of ``capacity`` nonzeros.

    Nonzeros are taken in row-major (CSR) order; each tile is a consecutive run
    of ``capacity`` of them (the final tile may be smaller).  Each tile records
    the bounding coordinate rectangle of its nonzeros.

    Parameters
    ----------
    matrix:
        The operand being tiled.
    capacity:
        Buffer capacity in nonzero elements; every tile except possibly the
        last has exactly this occupancy.
    other_operand_nnz:
        Occupancy of the other operand of the kernel.  When provided, the
        runtime operand-matching cost is modeled as one full traversal of the
        other operand per tile (the paper: "PST always incurs the cost of full
        B traversal for each tile of A"), and recorded in the tiling tax.
    """
    check_positive_int(capacity, "capacity")
    rows, cols = matrix.coordinates()
    # CSR order: already sorted by row, then column.
    order = np.lexsort((cols, rows))
    rows = rows[order]
    cols = cols[order]

    nnz = len(rows)
    starts = np.arange(0, nnz, capacity, dtype=np.int64)
    stops = np.minimum(starts + capacity, nnz)
    num_tiles = len(starts)
    if num_tiles:
        # Per-run bounding rectangles in one pass (no per-tile Python objects).
        row_starts = np.minimum.reduceat(rows, starts)
        row_stops = np.maximum.reduceat(rows, starts) + 1
        col_starts = np.minimum.reduceat(cols, starts)
        col_stops = np.maximum.reduceat(cols, starts) + 1
    else:
        row_starts = row_stops = col_starts = col_stops = np.empty(0, dtype=np.int64)
    occupancies = stops - starts

    matching = 0
    if other_operand_nnz is not None and num_tiles:
        matching = int(other_operand_nnz) * num_tiles
    tax = TilingTax(runtime_matching_elements=matching)
    return Tiling.from_bounds(matrix, occupancies, row_starts, row_stops,
                              col_starts, col_stops, strategy="position-space",
                              tax=tax)
