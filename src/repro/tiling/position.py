"""Position-space tiling (PST): uniform-occupancy tiles.

PST partitions the *positions* of the nonzeros (their order in the compressed
representation) into consecutive runs of exactly the buffer capacity, so every
tile fills the buffer perfectly — the "uniform occupancy" strategy of Table 1.
The price is operand matching: because a tile's coordinate footprint is now an
arbitrary, data-dependent rectangle, finding the matching coordinates in the
other operand requires traversing that operand at runtime for every tile
(Section 2.2.2 and Fig. 2b).

The implementation records both the tiles (with their bounding rectangles,
which is what the operand-matching traversal has to cover) and the runtime
matching cost in the returned :class:`~repro.tiling.base.TilingTax`.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.coords import Range
from repro.tensor.sparse import SparseMatrix
from repro.tiling.base import Tile, Tiling, TilingTax
from repro.utils.validation import check_positive_int


def position_space_tiling(matrix: SparseMatrix, capacity: int, *,
                          other_operand_nnz: int | None = None) -> Tiling:
    """Partition ``matrix`` into uniform-occupancy tiles of ``capacity`` nonzeros.

    Nonzeros are taken in row-major (CSR) order; each tile is a consecutive run
    of ``capacity`` of them (the final tile may be smaller).  Each tile records
    the bounding coordinate rectangle of its nonzeros.

    Parameters
    ----------
    matrix:
        The operand being tiled.
    capacity:
        Buffer capacity in nonzero elements; every tile except possibly the
        last has exactly this occupancy.
    other_operand_nnz:
        Occupancy of the other operand of the kernel.  When provided, the
        runtime operand-matching cost is modeled as one full traversal of the
        other operand per tile (the paper: "PST always incurs the cost of full
        B traversal for each tile of A"), and recorded in the tiling tax.
    """
    check_positive_int(capacity, "capacity")
    rows, cols = matrix.coordinates()
    # CSR order: already sorted by row, then column.
    order = np.lexsort((cols, rows))
    rows = rows[order]
    cols = cols[order]

    tiles = []
    nnz = len(rows)
    for index, start in enumerate(range(0, nnz, capacity)):
        stop = min(start + capacity, nnz)
        tile_rows = rows[start:stop]
        tile_cols = cols[start:stop]
        row_range = Range(int(tile_rows.min()), int(tile_rows.max()) + 1)
        col_range = Range(int(tile_cols.min()), int(tile_cols.max()) + 1)
        tiles.append(Tile(index=index, row_range=row_range, col_range=col_range,
                          occupancy=stop - start))

    matching = 0
    if other_operand_nnz is not None and tiles:
        matching = int(other_operand_nnz) * len(tiles)
    tax = TilingTax(runtime_matching_elements=matching)
    return Tiling(matrix=matrix, tiles=tiles, strategy="position-space", tax=tax)
