"""Tile and tiling abstractions shared by every strategy.

The :class:`Tiling` container is *array-backed* (structure-of-arrays): the
per-tile occupancies live in one ``int64`` NumPy array and the tile geometry
is a compact descriptor (a regular grid, or explicit bound arrays for
position-space tiles).  Constructing a tiling therefore costs O(1) Python
objects regardless of the number of tiles, and every bulk statistic
(overbooking rate, bumped elements, buffer utilization) is a vectorized
reduction over the occupancy array.

:class:`Tile` still exists as the per-tile *view* type: ``tiling[i]`` and
iteration materialize ``Tile`` objects lazily, so code that wants to reason
about a single tile (tests, traces, examples) keeps the exact seed API while
the evaluation pipeline never touches per-tile Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.tensor.coords import Range
from repro.tensor.sparse import SparseMatrix
from repro.utils.validation import (
    check_non_negative,
    check_non_negative_int,
    check_non_negative_int_array,
    check_positive_int,
    check_range_arrays,
)


@dataclass(frozen=True)
class Tile:
    """A single tile of a two-dimensional tensor.

    A tile is a hyper-rectangle in coordinate space (for CST) or a run of
    nonzeros with a bounding rectangle (for PST).  Either way it records:

    * ``row_range`` / ``col_range`` — the coordinate ranges the tile covers;
    * ``occupancy`` — the number of nonzeros inside it (the paper's tile
      occupancy);
    * ``size`` — the number of coordinate points covered, zeros included.
    """

    index: int
    row_range: Range
    col_range: Range
    occupancy: int

    def __post_init__(self) -> None:
        check_non_negative_int(self.index, "index")
        check_non_negative_int(self.occupancy, "occupancy")

    @property
    def num_rows(self) -> int:
        return len(self.row_range)

    @property
    def num_cols(self) -> int:
        return len(self.col_range)

    @property
    def size(self) -> int:
        """Number of coordinate points (zeros and nonzeros) in the tile."""
        return self.num_rows * self.num_cols

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_cols)

    def overbooks(self, capacity: int) -> bool:
        """Whether this tile's occupancy exceeds a buffer of ``capacity`` words."""
        return self.occupancy > capacity

    def bumped(self, capacity: int) -> int:
        """Number of nonzeros that do not fit in a buffer of ``capacity`` words."""
        return max(0, self.occupancy - capacity)


@dataclass(frozen=True)
class TilingTax:
    """The cost of constructing and using a tiling (Table 1's "tiling tax").

    Attributes
    ----------
    preprocessing_elements:
        Number of nonzero elements traversed while *choosing* the tile size
        (e.g. the prescient strategy traverses the whole tensor once per
        candidate size; Swiftiles touches only its samples).
    candidate_sizes:
        Number of candidate tile sizes whose occupancy had to be measured.
    runtime_matching_elements:
        Number of elements traversed at runtime for operand matching (zero for
        uniform-shape CST, a full traversal of the other operand per tile for
        PST).
    """

    preprocessing_elements: int = 0
    candidate_sizes: int = 0
    runtime_matching_elements: int = 0

    def __post_init__(self) -> None:
        check_non_negative(self.preprocessing_elements, "preprocessing_elements")
        check_non_negative(self.candidate_sizes, "candidate_sizes")
        check_non_negative(self.runtime_matching_elements, "runtime_matching_elements")

    @property
    def total_elements(self) -> float:
        """Total elements touched by the tiling strategy itself."""
        return float(self.preprocessing_elements + self.runtime_matching_elements)

    def combined(self, other: "TilingTax") -> "TilingTax":
        """Sum two taxes (e.g. per-level tilings of the same workload)."""
        return TilingTax(
            preprocessing_elements=self.preprocessing_elements + other.preprocessing_elements,
            candidate_sizes=self.candidate_sizes + other.candidate_sizes,
            runtime_matching_elements=(
                self.runtime_matching_elements + other.runtime_matching_elements
            ),
        )


class GridGeometry:
    """Tile geometry of a regular grid clipped to the matrix extent.

    Covers both uniform-shape 2-D tilings and row-block tilings (the latter is
    a grid whose tile width equals the full matrix width).  Only four integers
    are stored; per-tile ranges are derived on demand.
    """

    __slots__ = ("num_rows", "num_cols", "tile_rows", "tile_cols",
                 "grid_rows", "grid_cols")

    def __init__(self, num_rows: int, num_cols: int, tile_rows: int, tile_cols: int):
        check_non_negative_int(num_rows, "num_rows")
        check_non_negative_int(num_cols, "num_cols")
        check_positive_int(tile_rows, "tile_rows")
        check_positive_int(tile_cols, "tile_cols")
        self.num_rows = int(num_rows)
        self.num_cols = int(num_cols)
        self.tile_rows = int(tile_rows)
        self.tile_cols = int(tile_cols)
        self.grid_rows = -(-self.num_rows // self.tile_rows)
        self.grid_cols = -(-self.num_cols // self.tile_cols)

    def __len__(self) -> int:
        return self.grid_rows * self.grid_cols

    def ranges(self, index: int) -> tuple[Range, Range]:
        """The (row_range, col_range) of tile ``index`` (row-major order)."""
        grid_row, grid_col = divmod(index, self.grid_cols)
        row_range = Range(grid_row * self.tile_rows,
                          min((grid_row + 1) * self.tile_rows, self.num_rows))
        col_range = Range(grid_col * self.tile_cols,
                          min((grid_col + 1) * self.tile_cols, self.num_cols))
        return row_range, col_range

    def bound_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized (row_starts, row_stops, col_starts, col_stops)."""
        ids = np.arange(len(self), dtype=np.int64)
        grid_row, grid_col = np.divmod(ids, self.grid_cols)
        row_starts = grid_row * self.tile_rows
        row_stops = np.minimum(row_starts + self.tile_rows, self.num_rows)
        col_starts = grid_col * self.tile_cols
        col_stops = np.minimum(col_starts + self.tile_cols, self.num_cols)
        return row_starts, row_stops, col_starts, col_stops


class ExplicitGeometry:
    """Tile geometry given by explicit per-tile bound arrays (e.g. PST)."""

    __slots__ = ("row_starts", "row_stops", "col_starts", "col_stops")

    def __init__(self, row_starts, row_stops, col_starts, col_stops):
        self.row_starts, self.row_stops = check_range_arrays(
            row_starts, row_stops, "row")
        self.col_starts, self.col_stops = check_range_arrays(
            col_starts, col_stops, "col")
        if len(self.row_starts) != len(self.col_starts):
            raise ValueError("row and col bound arrays must align")

    def __len__(self) -> int:
        return len(self.row_starts)

    def ranges(self, index: int) -> tuple[Range, Range]:
        return (Range(int(self.row_starts[index]), int(self.row_stops[index])),
                Range(int(self.col_starts[index]), int(self.col_stops[index])))

    def bound_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return self.row_starts, self.row_stops, self.col_starts, self.col_stops


@dataclass(frozen=True)
class OccupancyReductions:
    """Exact integer reductions of one occupancy array at one buffer config.

    Every scalar the analytical engine derives from an occupancy array at a
    given ``(capacity, fifo_words)`` — fetch sums under each
    :class:`~repro.model.traffic.FetchPolicy`, chunk counts, overbooking and
    utilization statistics — is an affine function of the sums below.  All
    occupancies are exact ``int64`` values far below 2**53, so float64 array
    sums over them are exact integers and the Python-int arithmetic here is
    *bit-identical* to the engine's NumPy expressions; the batched grid
    evaluator (:mod:`repro.model.batch`) leans on that to reproduce the
    per-point path byte for byte.  Instances are cached per tiling (see
    :meth:`Tiling.occupancy_reductions`), so the O(num_tiles) array passes run
    once per ``(tiling, capacity, fifo)`` no matter how many grid
    configurations share them.
    """

    capacity: int
    fifo_words: int
    num_tiles: int
    #: Σ occ over all tiles (== matrix nnz for a valid tiling).
    total: int
    #: Σ occ over tiles with ``occ <= capacity``.
    fit_sum: int
    #: Σ occ over tiles with ``occ > capacity``.
    over_sum: int
    #: Number of tiles with ``occ > capacity``.
    over_count: int
    #: ``int(np.ceil(occ / capacity).sum())`` — per-tile chunk count.
    chunks: int

    @property
    def resident(self) -> int:
        """Tailors resident-region size: ``max(1, capacity - fifo_words)``."""
        return max(1, self.capacity - self.fifo_words)

    @property
    def bumped_sum(self) -> int:
        """Σ (occ - resident) over overbooked tiles (the re-streamed tails)."""
        return self.over_sum - self.over_count * self.resident

    def fetch_total(self, passes: int, policy) -> int:
        """``operand_fetches(occ, capacity, ...).sum()`` as an exact integer.

        Mirrors :func:`repro.model.traffic.operand_fetches` per policy:
        FIT/BUFFET re-fetch an overbooked tile in full on each of ``passes``
        scans; TAILORS keeps the resident head and re-streams only the bumped
        tail.
        """
        from repro.model.traffic import FetchPolicy

        if policy in (FetchPolicy.FIT, FetchPolicy.BUFFET):
            return self.fit_sum + passes * self.over_sum
        if policy is FetchPolicy.TAILORS:
            return (self.fit_sum + self.over_count * self.resident
                    + passes * self.bumped_sum)
        raise ValueError(f"unknown policy {policy!r}")


class Tiling:
    """A complete partitioning of a matrix into tiles (array-backed).

    Invariant (checked by :meth:`validate`): the tile occupancies sum to the
    matrix occupancy, i.e. every nonzero belongs to exactly one tile.

    The per-tile occupancies are stored as one read-only ``int64`` array (see
    :meth:`occupancies`); ``Tile`` objects are derived views created only on
    ``__getitem__``/iteration.  Treat instances as immutable — cached tiler
    results share them across accelerator variants.
    """

    __slots__ = ("matrix", "strategy", "tax", "_occupancies", "_geometry",
                 "_reductions")

    def __init__(self, matrix: SparseMatrix, strategy: str, occupancies,
                 geometry, tax: TilingTax | None = None):
        occ = check_non_negative_int_array(occupancies, "occupancies")
        if len(occ) != len(geometry):
            raise ValueError(
                f"occupancies ({len(occ)}) and geometry ({len(geometry)}) must align"
            )
        if occ.flags.writeable:
            occ = occ.copy() if occ is occupancies else occ
            occ.setflags(write=False)
        self.matrix = matrix
        self.strategy = str(strategy)
        self.tax = tax or TilingTax()
        self._occupancies = occ
        self._geometry = geometry
        self._reductions: dict = {}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_grid(cls, matrix: SparseMatrix, tile_rows: int, tile_cols: int,
                  occupancies, strategy: str, tax: TilingTax | None = None) -> "Tiling":
        """A regular-grid tiling (uniform shape; boundary tiles clipped)."""
        geometry = GridGeometry(matrix.num_rows, matrix.num_cols, tile_rows, tile_cols)
        return cls(matrix, strategy, occupancies, geometry, tax)

    @classmethod
    def from_row_blocks(cls, matrix: SparseMatrix, block_rows: int,
                        occupancies, strategy: str,
                        tax: TilingTax | None = None) -> "Tiling":
        """A row-band tiling: ``block_rows`` rows × full matrix width."""
        geometry = GridGeometry(matrix.num_rows, matrix.num_cols,
                                block_rows, max(1, matrix.num_cols))
        return cls(matrix, strategy, occupancies, geometry, tax)

    @classmethod
    def from_bounds(cls, matrix: SparseMatrix, occupancies, row_starts, row_stops,
                    col_starts, col_stops, strategy: str,
                    tax: TilingTax | None = None) -> "Tiling":
        """A tiling with explicit per-tile bounding rectangles (PST)."""
        geometry = ExplicitGeometry(row_starts, row_stops, col_starts, col_stops)
        return cls(matrix, strategy, occupancies, geometry, tax)

    # ------------------------------------------------------------------ #
    # Per-tile views (lazy)
    # ------------------------------------------------------------------ #
    def _tile(self, index: int) -> Tile:
        row_range, col_range = self._geometry.ranges(index)
        return Tile(index=index, row_range=row_range, col_range=col_range,
                    occupancy=int(self._occupancies[index]))

    def __len__(self) -> int:
        return int(self._occupancies.size)

    def __iter__(self) -> Iterator[Tile]:
        return (self._tile(i) for i in range(len(self)))

    def __getitem__(self, index: int) -> Tile:
        num = len(self)
        if index < 0:
            index += num
        if not 0 <= index < num:
            raise IndexError(f"tile index {index} out of range for {num} tiles")
        return self._tile(index)

    @property
    def tiles(self) -> List[Tile]:
        """All tiles as materialized ``Tile`` views (compatibility accessor).

        This builds O(num_tiles) Python objects — bulk consumers should use
        :meth:`occupancies` and the vectorized statistics instead.
        """
        return list(self)

    @property
    def num_tiles(self) -> int:
        return len(self)

    # ------------------------------------------------------------------ #
    # Bulk (vectorized) statistics
    # ------------------------------------------------------------------ #
    def occupancies(self) -> np.ndarray:
        """Per-tile occupancies as a read-only integer array (in tile order)."""
        return self._occupancies

    def bound_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-tile ``(row_starts, row_stops, col_starts, col_stops)`` arrays."""
        return self._geometry.bound_arrays()

    @property
    def total_occupancy(self) -> int:
        """Sum of tile occupancies (must equal the matrix nnz)."""
        return int(self._occupancies.sum()) if self._occupancies.size else 0

    @property
    def max_occupancy(self) -> int:
        return int(self._occupancies.max()) if self._occupancies.size else 0

    def overbooked_tiles(self, capacity: int) -> List[Tile]:
        """Tiles whose occupancy exceeds ``capacity`` (views built on demand)."""
        indices = np.nonzero(self._occupancies > capacity)[0]
        return [self._tile(int(i)) for i in indices]

    def overbooking_rate(self, capacity: int) -> float:
        """Fraction of tiles that overbook a buffer of ``capacity`` words."""
        if not self._occupancies.size:
            return 0.0
        return float((self._occupancies > capacity).mean())

    def bumped_elements(self, capacity: int) -> int:
        """Total nonzeros that do not fit across all overbooked tiles."""
        if not self._occupancies.size:
            return 0
        return int(np.maximum(self._occupancies - capacity, 0).sum())

    def occupancy_reductions(self, capacity: int,
                             fifo_words: int = 1) -> OccupancyReductions:
        """Cached exact reductions of the occupancies at one buffer config.

        The cache lives on the tiling instance, so everything that shares a
        (memoized) tiling — both memory levels, every grid configuration of a
        batched sweep — shares the reductions too.
        """
        check_positive_int(capacity, "capacity")
        check_positive_int(fifo_words, "fifo_words")
        key = (int(capacity), int(fifo_words))
        cached = self._reductions.get(key)
        if cached is None:
            occ = self._occupancies
            fits = occ <= capacity
            num_tiles = int(occ.size)
            total = int(occ.sum()) if num_tiles else 0
            fit_sum = int(occ[fits].sum()) if num_tiles else 0
            over_count = num_tiles - int(fits.sum()) if num_tiles else 0
            chunks = int(np.ceil(occ / capacity).sum()) if num_tiles else 0
            cached = OccupancyReductions(
                capacity=int(capacity),
                fifo_words=int(fifo_words),
                num_tiles=num_tiles,
                total=total,
                fit_sum=fit_sum,
                over_sum=total - fit_sum,
                over_count=over_count,
                chunks=chunks,
            )
            self._reductions[key] = cached
        return cached

    def buffer_utilization(self, capacity: int) -> float:
        """Average fraction of the buffer occupied while each tile is resident.

        A tile with occupancy above the capacity pins the buffer at 100%; a
        tile with lower occupancy utilizes ``occupancy / capacity``.  This is
        the adaptability metric of Table 1.
        """
        if not self._occupancies.size or capacity <= 0:
            return 0.0
        occupancies = np.minimum(self._occupancies, capacity)
        return float(occupancies.mean() / capacity)

    def validate(self) -> None:
        """Check the partition invariant; raise ``ValueError`` on violation."""
        if self.total_occupancy != self.matrix.nnz:
            raise ValueError(
                f"tiling of {self.matrix.name!r} covers {self.total_occupancy} nonzeros "
                f"but the matrix has {self.matrix.nnz}"
            )

    def summary(self) -> dict:
        """Small dict of headline statistics (used by reports and examples)."""
        occ = self._occupancies
        return {
            "strategy": self.strategy,
            "num_tiles": self.num_tiles,
            "max_occupancy": int(occ.max()) if occ.size else 0,
            "mean_occupancy": float(occ.mean()) if occ.size else 0.0,
            "total_occupancy": int(occ.sum()) if occ.size else 0,
        }


def tiles_from_occupancies(matrix: SparseMatrix, occupancies: Sequence[int],
                           row_ranges: Sequence[Range], col_ranges: Sequence[Range],
                           strategy: str, tax: TilingTax | None = None) -> Tiling:
    """Assemble a :class:`Tiling` from parallel per-tile sequences.

    Accepts per-tile ``Range`` sequences for compatibility; the ranges are
    packed into bound arrays so the resulting tiling is array-backed like any
    other.
    """
    if not (len(occupancies) == len(row_ranges) == len(col_ranges)):
        raise ValueError("occupancies, row_ranges and col_ranges must align")
    row_starts = np.fromiter((r.start for r in row_ranges), dtype=np.int64,
                             count=len(row_ranges))
    row_stops = np.fromiter((r.stop for r in row_ranges), dtype=np.int64,
                            count=len(row_ranges))
    col_starts = np.fromiter((c.start for c in col_ranges), dtype=np.int64,
                             count=len(col_ranges))
    col_stops = np.fromiter((c.stop for c in col_ranges), dtype=np.int64,
                            count=len(col_ranges))
    return Tiling.from_bounds(matrix, occupancies, row_starts, row_stops,
                              col_starts, col_stops, strategy, tax)
