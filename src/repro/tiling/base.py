"""Tile and tiling abstractions shared by every strategy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

import numpy as np

from repro.tensor.coords import Range
from repro.tensor.sparse import SparseMatrix
from repro.utils.validation import check_non_negative, check_non_negative_int


@dataclass(frozen=True)
class Tile:
    """A single tile of a two-dimensional tensor.

    A tile is a hyper-rectangle in coordinate space (for CST) or a run of
    nonzeros with a bounding rectangle (for PST).  Either way it records:

    * ``row_range`` / ``col_range`` — the coordinate ranges the tile covers;
    * ``occupancy`` — the number of nonzeros inside it (the paper's tile
      occupancy);
    * ``size`` — the number of coordinate points covered, zeros included.
    """

    index: int
    row_range: Range
    col_range: Range
    occupancy: int

    def __post_init__(self) -> None:
        check_non_negative_int(self.index, "index")
        check_non_negative_int(self.occupancy, "occupancy")

    @property
    def num_rows(self) -> int:
        return len(self.row_range)

    @property
    def num_cols(self) -> int:
        return len(self.col_range)

    @property
    def size(self) -> int:
        """Number of coordinate points (zeros and nonzeros) in the tile."""
        return self.num_rows * self.num_cols

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_cols)

    def overbooks(self, capacity: int) -> bool:
        """Whether this tile's occupancy exceeds a buffer of ``capacity`` words."""
        return self.occupancy > capacity

    def bumped(self, capacity: int) -> int:
        """Number of nonzeros that do not fit in a buffer of ``capacity`` words."""
        return max(0, self.occupancy - capacity)


@dataclass(frozen=True)
class TilingTax:
    """The cost of constructing and using a tiling (Table 1's "tiling tax").

    Attributes
    ----------
    preprocessing_elements:
        Number of nonzero elements traversed while *choosing* the tile size
        (e.g. the prescient strategy traverses the whole tensor once per
        candidate size; Swiftiles touches only its samples).
    candidate_sizes:
        Number of candidate tile sizes whose occupancy had to be measured.
    runtime_matching_elements:
        Number of elements traversed at runtime for operand matching (zero for
        uniform-shape CST, a full traversal of the other operand per tile for
        PST).
    """

    preprocessing_elements: int = 0
    candidate_sizes: int = 0
    runtime_matching_elements: int = 0

    def __post_init__(self) -> None:
        check_non_negative(self.preprocessing_elements, "preprocessing_elements")
        check_non_negative(self.candidate_sizes, "candidate_sizes")
        check_non_negative(self.runtime_matching_elements, "runtime_matching_elements")

    @property
    def total_elements(self) -> float:
        """Total elements touched by the tiling strategy itself."""
        return float(self.preprocessing_elements + self.runtime_matching_elements)

    def combined(self, other: "TilingTax") -> "TilingTax":
        """Sum two taxes (e.g. per-level tilings of the same workload)."""
        return TilingTax(
            preprocessing_elements=self.preprocessing_elements + other.preprocessing_elements,
            candidate_sizes=self.candidate_sizes + other.candidate_sizes,
            runtime_matching_elements=(
                self.runtime_matching_elements + other.runtime_matching_elements
            ),
        )


@dataclass
class Tiling:
    """A complete partitioning of a matrix into tiles.

    Invariant (checked by :meth:`validate`): the tile occupancies sum to the
    matrix occupancy, i.e. every nonzero belongs to exactly one tile.
    """

    matrix: SparseMatrix
    tiles: List[Tile]
    strategy: str
    tax: TilingTax = field(default_factory=TilingTax)

    def __len__(self) -> int:
        return len(self.tiles)

    def __iter__(self) -> Iterator[Tile]:
        return iter(self.tiles)

    def __getitem__(self, index: int) -> Tile:
        return self.tiles[index]

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    def occupancies(self) -> np.ndarray:
        """Per-tile occupancies as an integer array (in tile order)."""
        return np.array([tile.occupancy for tile in self.tiles], dtype=np.int64)

    @property
    def total_occupancy(self) -> int:
        """Sum of tile occupancies (must equal the matrix nnz)."""
        return int(self.occupancies().sum()) if self.tiles else 0

    @property
    def max_occupancy(self) -> int:
        return int(self.occupancies().max()) if self.tiles else 0

    def overbooked_tiles(self, capacity: int) -> List[Tile]:
        """Tiles whose occupancy exceeds ``capacity``."""
        return [tile for tile in self.tiles if tile.overbooks(capacity)]

    def overbooking_rate(self, capacity: int) -> float:
        """Fraction of tiles that overbook a buffer of ``capacity`` words."""
        if not self.tiles:
            return 0.0
        return len(self.overbooked_tiles(capacity)) / len(self.tiles)

    def bumped_elements(self, capacity: int) -> int:
        """Total nonzeros that do not fit across all overbooked tiles."""
        return sum(tile.bumped(capacity) for tile in self.tiles)

    def buffer_utilization(self, capacity: int) -> float:
        """Average fraction of the buffer occupied while each tile is resident.

        A tile with occupancy above the capacity pins the buffer at 100%; a
        tile with lower occupancy utilizes ``occupancy / capacity``.  This is
        the adaptability metric of Table 1.
        """
        if not self.tiles or capacity <= 0:
            return 0.0
        occupancies = np.minimum(self.occupancies(), capacity)
        return float(occupancies.mean() / capacity)

    def validate(self) -> None:
        """Check the partition invariant; raise ``ValueError`` on violation."""
        if self.total_occupancy != self.matrix.nnz:
            raise ValueError(
                f"tiling of {self.matrix.name!r} covers {self.total_occupancy} nonzeros "
                f"but the matrix has {self.matrix.nnz}"
            )

    def summary(self) -> dict:
        """Small dict of headline statistics (used by reports and examples)."""
        occ = self.occupancies()
        return {
            "strategy": self.strategy,
            "num_tiles": self.num_tiles,
            "max_occupancy": int(occ.max()) if occ.size else 0,
            "mean_occupancy": float(occ.mean()) if occ.size else 0.0,
            "total_occupancy": int(occ.sum()) if occ.size else 0,
        }


def tiles_from_occupancies(matrix: SparseMatrix, occupancies: Sequence[int],
                           row_ranges: Sequence[Range], col_ranges: Sequence[Range],
                           strategy: str, tax: TilingTax | None = None) -> Tiling:
    """Assemble a :class:`Tiling` from parallel per-tile sequences."""
    if not (len(occupancies) == len(row_ranges) == len(col_ranges)):
        raise ValueError("occupancies, row_ranges and col_ranges must align")
    tiles = [
        Tile(index=i, row_range=row_ranges[i], col_range=col_ranges[i],
             occupancy=int(occupancies[i]))
        for i in range(len(occupancies))
    ]
    return Tiling(matrix=matrix, tiles=tiles, strategy=strategy, tax=tax or TilingTax())
