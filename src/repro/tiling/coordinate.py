"""Coordinate-space tiling (CST) strategies.

Two families are provided, matching the paper's baselines:

* :func:`uniform_shape_tiling` / :func:`row_block_tiling` construct tiles of a
  fixed shape.  The shape can come from the *dense worst case*
  (:func:`dense_row_block_rows` — ExTensor-N's policy: assume every point is a
  nonzero, so a buffer of ``b`` words affords ``b / K`` rows), or from the
  *prescient* search below.
* :func:`prescient_row_block_rows` / :func:`prescient_uniform_tile_dims`
  implement the "prescient uniform shape" baseline (ExTensor-P): find the
  largest uniform tile whose maximum observed occupancy still fits the buffer.
  The search must measure the occupancy of every tile for every candidate
  size; the returned :class:`~repro.tiling.base.TilingTax` records that cost,
  which is the "very high tiling tax" row of Table 1.

The ExTensor dataflow the paper evaluates builds tiles by expanding along the
shared K dimension to its full extent first, then along M (stationary operand)
or N (streaming operand) — that is precisely a *row-block* tiling of A and a
*column-block* tiling of B = Aᵀ (equivalently a row-block tiling of A again),
which is why the row-block helpers are the ones the accelerator model uses.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.tensor.sparse import SparseMatrix
from repro.tiling.base import Tiling, TilingTax
from repro.utils.validation import check_positive_int


def uniform_shape_tiling(matrix: SparseMatrix, tile_rows: int, tile_cols: int,
                         *, strategy: str = "uniform-shape",
                         tax: TilingTax | None = None) -> Tiling:
    """Partition ``matrix`` into a grid of fixed-shape tiles.

    Boundary tiles are clipped to the matrix extent.  The per-tile occupancies
    are computed in a single ``O(nnz)`` pass and the tiling is assembled
    without materializing per-tile objects.
    """
    check_positive_int(tile_rows, "tile_rows")
    check_positive_int(tile_cols, "tile_cols")
    occupancies = matrix.tile_occupancies(tile_rows, tile_cols, include_empty=True)
    return Tiling.from_grid(matrix, tile_rows, tile_cols, occupancies,
                            strategy=strategy, tax=tax)


def row_block_tiling(matrix: SparseMatrix, block_rows: int, *,
                     strategy: str = "row-block",
                     tax: TilingTax | None = None) -> Tiling:
    """Partition ``matrix`` into row bands of ``block_rows`` rows × full width."""
    check_positive_int(block_rows, "block_rows")
    occupancies = matrix.row_block_occupancies(block_rows)
    return Tiling.from_row_blocks(matrix, block_rows, occupancies,
                                  strategy=strategy, tax=tax)


def dense_row_block_rows(capacity: int, num_cols: int) -> int:
    """Rows per tile under the dense (worst-case) assumption.

    With no sparsity knowledge, a buffer of ``capacity`` words can only be
    guaranteed to hold ``capacity`` coordinate points, i.e.
    ``capacity // num_cols`` full rows (at least one).
    """
    check_positive_int(capacity, "capacity")
    check_positive_int(num_cols, "num_cols")
    return max(1, capacity // num_cols)


def prescient_row_block_rows(matrix: SparseMatrix, capacity: int,
                             *, max_rows: int | None = None) -> Tuple[int, TilingTax]:
    """Largest row-block height whose maximum block occupancy fits ``capacity``.

    This is the prescient uniform-shape baseline for the row-block dataflow.
    The search doubles the candidate height until the worst block no longer
    fits, then binary-searches the boundary.  Every candidate examined costs a
    full traversal of the tensor (``nnz`` elements), which is accumulated into
    the returned :class:`TilingTax` — the preprocessing cost the paper notes
    "can easily dominate the cost of the actual sparse tensor operation".
    """
    check_positive_int(capacity, "capacity")
    limit = max_rows or matrix.num_rows
    limit = min(limit, matrix.num_rows)

    candidates_examined = 0

    def max_occupancy(block_rows: int) -> int:
        nonlocal candidates_examined
        candidates_examined += 1
        return int(matrix.row_block_occupancies(block_rows).max())

    if matrix.nnz == 0 or max_occupancy(limit) <= capacity:
        tax = TilingTax(preprocessing_elements=candidates_examined * matrix.nnz,
                        candidate_sizes=candidates_examined)
        return limit, tax

    if max_occupancy(1) > capacity:
        # Even a single row can exceed the buffer; the prescient strategy has
        # no choice but to use one-row tiles (a single row is the smallest
        # uniform shape that still spans the full shared dimension).
        tax = TilingTax(preprocessing_elements=candidates_examined * matrix.nnz,
                        candidate_sizes=candidates_examined)
        return 1, tax

    # Exponential growth to bracket the boundary.
    low, high = 1, 2
    while high < limit and max_occupancy(high) <= capacity:
        low, high = high, min(high * 2, limit)
    # Binary search in (low, high].
    while low + 1 < high:
        mid = (low + high) // 2
        if max_occupancy(mid) <= capacity:
            low = mid
        else:
            high = mid
    tax = TilingTax(preprocessing_elements=candidates_examined * matrix.nnz,
                    candidate_sizes=candidates_examined)
    return low, tax


def prescient_uniform_tile_dims(matrix: SparseMatrix, capacity: int,
                                *, aspect: float = 1.0,
                                max_candidates: int = 64) -> Tuple[Tuple[int, int], TilingTax]:
    """Largest square-ish 2-D tile whose maximum occupancy fits ``capacity``.

    Tiles are constrained to ``rows = aspect * cols`` (rounded); the search
    sweeps geometrically-spaced candidate sizes and keeps the largest one whose
    worst tile still fits.  Used by the Fig. 1 / Table 1 experiments, where the
    tiling is two-dimensional rather than the dataflow's row blocks.
    """
    check_positive_int(capacity, "capacity")
    if aspect <= 0:
        raise ValueError(f"aspect must be positive, got {aspect}")

    candidates_examined = 0
    best = (1, 1)
    best_size = 0
    # Geometric sweep over tile "area" from a single point to the whole matrix.
    max_area = matrix.num_rows * matrix.num_cols
    areas = np.unique(np.geomspace(1, max_area, num=max_candidates).astype(np.int64))
    for area in areas:
        cols = max(1, int(round(np.sqrt(area / aspect))))
        rows = max(1, int(round(aspect * cols)))
        rows = min(rows, matrix.num_rows)
        cols = min(cols, matrix.num_cols)
        candidates_examined += 1
        worst = matrix.max_tile_occupancy(rows, cols)
        if worst <= capacity and rows * cols > best_size:
            best = (rows, cols)
            best_size = rows * cols
    tax = TilingTax(preprocessing_elements=candidates_examined * matrix.nnz,
                    candidate_sizes=candidates_examined)
    return best, tax
