"""Tiling substrate: coordinate-space and position-space tiling strategies.

The paper (Sections 1–2) contrasts three pre-existing strategies with its
overbooking proposal:

* **uniform shape** coordinate-space tiling (CST) — fixed tile shape sized for
  the worst case (dense tile), zero tiling tax, very low buffer utilization;
* **prescient uniform shape** CST — the largest uniform shape whose *maximum
  observed* occupancy fits the buffer; high preprocessing (tiling tax), still
  low utilization for most tiles;
* **uniform occupancy** position-space tiling (PST) — tiles built to hold
  exactly the buffer capacity worth of nonzeros; high utilization but
  expensive runtime operand matching.

This subpackage implements all three (the overbooking strategy itself lives in
:mod:`repro.core.overbooking`), plus the occupancy-distribution statistics
used throughout the evaluation.
"""

from repro.tiling.base import Tile, Tiling, TilingTax
from repro.tiling.stats import OccupancyStats, utilization_timeline
from repro.tiling.coordinate import (
    dense_row_block_rows,
    prescient_row_block_rows,
    prescient_uniform_tile_dims,
    row_block_tiling,
    uniform_shape_tiling,
)
from repro.tiling.position import position_space_tiling

__all__ = [
    "Tile",
    "Tiling",
    "TilingTax",
    "OccupancyStats",
    "utilization_timeline",
    "dense_row_block_rows",
    "prescient_row_block_rows",
    "prescient_uniform_tile_dims",
    "row_block_tiling",
    "uniform_shape_tiling",
    "position_space_tiling",
]
