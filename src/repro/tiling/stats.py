"""Occupancy-distribution statistics.

Fig. 1, Fig. 6, Fig. 11 and Fig. 13 of the paper all reason about the
*distribution of tile occupancies* produced by a tiling: its maximum, its
percentiles, the fraction of tiles above a buffer capacity, and how the
distribution shifts when the tile size is rescaled.  :class:`OccupancyStats`
captures those statistics from a sample (or complete population) of
occupancies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class OccupancyStats:
    """Summary statistics over a set of tile occupancies."""

    occupancies: np.ndarray

    def __init__(self, occupancies: Sequence[int] | np.ndarray):
        array = np.asarray(occupancies, dtype=np.float64)
        if array.ndim != 1:
            raise ValueError("occupancies must be one-dimensional")
        if array.size == 0:
            raise ValueError("occupancies must not be empty")
        if (array < 0).any():
            raise ValueError("occupancies must be non-negative")
        object.__setattr__(self, "occupancies", array)

    @property
    def count(self) -> int:
        """Number of tiles in the sample."""
        return int(self.occupancies.size)

    @property
    def max(self) -> float:
        """The worst-case tile occupancy (what prescient tiling plans for)."""
        return float(self.occupancies.max())

    @property
    def mean(self) -> float:
        return float(self.occupancies.mean())

    @property
    def total(self) -> float:
        return float(self.occupancies.sum())

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of tile occupancy (q in [0, 100])."""
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in [0, 100], got {q}")
        return float(np.percentile(self.occupancies, q))

    def quantile_for_overbooking(self, y: float) -> float:
        """The occupancy ``Q_y`` that exactly ``y`` (fraction) of tiles exceed.

        This is the quantile Swiftiles scales against (Section 4.2.3): with a
        buffer of capacity ``Q_y``, a fraction ``y`` of the tiles overbook.
        """
        check_fraction(y, "y")
        return float(np.quantile(self.occupancies, 1.0 - y))

    def overbooking_rate(self, capacity: float) -> float:
        """Fraction of tiles whose occupancy strictly exceeds ``capacity``."""
        check_positive(capacity, "capacity")
        return float((self.occupancies > capacity).mean())

    def buffer_utilization(self, capacity: float) -> float:
        """Mean of ``min(occupancy, capacity) / capacity`` over the tiles."""
        check_positive(capacity, "capacity")
        return float(np.minimum(self.occupancies, capacity).mean() / capacity)

    def bumped_fraction(self, capacity: float) -> float:
        """Fraction of all nonzeros that spill past ``capacity`` in their tile."""
        check_positive(capacity, "capacity")
        total = self.occupancies.sum()
        if total == 0:
            return 0.0
        bumped = np.maximum(self.occupancies - capacity, 0.0).sum()
        return float(bumped / total)

    def histogram(self, bins: int = 32) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram ``(counts, bin_edges)`` of the occupancy distribution."""
        counts, edges = np.histogram(self.occupancies, bins=bins)
        return counts.astype(np.int64), edges

    def cdf(self, points: Sequence[float] | None = None) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF evaluated at ``points`` (default: the sorted sample).

        Returns ``(x, fraction_of_tiles_with_occupancy_<=_x)``, the curve
        plotted in Fig. 13b/c.
        """
        sorted_occ = np.sort(self.occupancies)
        if points is None:
            x = sorted_occ
        else:
            x = np.asarray(points, dtype=np.float64)
        fractions = np.searchsorted(sorted_occ, x, side="right") / self.count
        return x, fractions

    def scaled(self, factor: float) -> "OccupancyStats":
        """Occupancies scaled by ``factor``.

        Swiftiles' linear-scaling assumption (Section 4.2.3) says the
        occupancy distribution at tile size ``factor * T`` is approximately the
        distribution at ``T`` with every occupancy multiplied by ``factor``.
        """
        check_positive(factor, "factor")
        return OccupancyStats(self.occupancies * factor)

    def summary(self) -> dict:
        """Headline numbers used in the Fig. 1 style report."""
        return {
            "count": self.count,
            "max": self.max,
            "mean": self.mean,
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


def utilization_timeline(occupancies: Sequence[int], capacity: int) -> np.ndarray:
    """Per-tile buffer utilization over the execution, in tile order.

    Each entry is ``min(occupancy, capacity) / capacity`` — the utilization of
    the buffer during the period the corresponding tile is resident.  Used by
    the Table 1 experiment to show *how often* the buffer sits underutilized
    (the "less than 10% for 90% of the time" observation in the introduction).
    """
    check_positive(capacity, "capacity")
    array = np.asarray(occupancies, dtype=np.float64)
    return np.minimum(array, capacity) / capacity
