"""Architecture configuration for the ExTensor-like accelerator model."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_fraction, check_positive, check_positive_int


@dataclass(frozen=True)
class ArchitectureConfig:
    """Geometry and technology parameters of the modeled accelerator.

    Capacities are expressed in *data words* per operand partition: the global
    buffer is assumed to be statically partitioned between the stationary
    operand (A), the streaming operand (B) and the output, as in ExTensor, and
    the capacities below refer to the A / B partitions individually.

    Attributes
    ----------
    name:
        Configuration name used in reports.
    num_pes:
        Number of processing elements, each performing one effectual multiply
        per cycle.
    glb_capacity_words:
        Global-buffer capacity (words) available to one operand's tiles.
    pe_buffer_capacity_words:
        Per-PE buffer capacity (words) available to one operand's subtiles.
    dram_bandwidth_words_per_cycle:
        Sustained DRAM bandwidth in words per accelerator cycle.
    glb_bandwidth_words_per_cycle:
        Aggregate global-buffer read bandwidth toward the PE array.
    frequency_hz:
        Clock frequency (used only to convert cycles into seconds).
    word_bits:
        Width of a data word.
    metadata_words_per_nonzero:
        Compressed-format metadata moved alongside each nonzero value
        (CSF with one coordinate per nonzero ⇒ 1.0).
    glb_fifo_fraction / pe_fifo_fraction:
        Fraction of the respective buffer reserved as the Tailors FIFO-managed
        streaming region when a tile overbooks it (Section 3.3: sized
        statically to hide the parent round-trip latency).
    """

    name: str = "extensor-like"
    num_pes: int = 16
    glb_capacity_words: int = 8192
    pe_buffer_capacity_words: int = 256
    dram_bandwidth_words_per_cycle: float = 4.0
    glb_bandwidth_words_per_cycle: float = 64.0
    frequency_hz: float = 1.0e9
    word_bits: int = 32
    metadata_words_per_nonzero: float = 1.0
    glb_fifo_fraction: float = 0.125
    pe_fifo_fraction: float = 0.125

    def __hash__(self) -> int:
        # Cached: grid evaluation hashes the same configuration thousands of
        # times (report memo keys, batch dedup keys, tiler memo keys).  The
        # field tuple matches the dataclass-generated __eq__, preserving the
        # hash/eq contract.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.name, self.num_pes, self.glb_capacity_words,
                           self.pe_buffer_capacity_words,
                           self.dram_bandwidth_words_per_cycle,
                           self.glb_bandwidth_words_per_cycle,
                           self.frequency_hz, self.word_bits,
                           self.metadata_words_per_nonzero,
                           self.glb_fifo_fraction, self.pe_fifo_fraction))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        # String hashes are salted per process: never ship a cached hash
        # across the scheduler's process boundary.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __post_init__(self) -> None:
        check_positive_int(self.num_pes, "num_pes")
        check_positive_int(self.glb_capacity_words, "glb_capacity_words")
        check_positive_int(self.pe_buffer_capacity_words, "pe_buffer_capacity_words")
        check_positive(self.dram_bandwidth_words_per_cycle, "dram_bandwidth_words_per_cycle")
        check_positive(self.glb_bandwidth_words_per_cycle, "glb_bandwidth_words_per_cycle")
        check_positive(self.frequency_hz, "frequency_hz")
        check_positive_int(self.word_bits, "word_bits")
        check_positive(self.metadata_words_per_nonzero + 1.0, "metadata_words_per_nonzero")
        check_fraction(self.glb_fifo_fraction, "glb_fifo_fraction", inclusive_low=False,
                       inclusive_high=False)
        check_fraction(self.pe_fifo_fraction, "pe_fifo_fraction", inclusive_low=False,
                       inclusive_high=False)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def glb_fifo_words(self) -> int:
        """Tailors FIFO-region size of the global buffer (at least one word)."""
        return max(1, int(self.glb_capacity_words * self.glb_fifo_fraction))

    @property
    def pe_fifo_words(self) -> int:
        """Tailors FIFO-region size of a PE buffer (at least one word)."""
        return max(1, int(self.pe_buffer_capacity_words * self.pe_fifo_fraction))

    @property
    def traffic_words_per_nonzero(self) -> float:
        """Words moved per nonzero transferred (value + metadata)."""
        return 1.0 + self.metadata_words_per_nonzero

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count into wall-clock seconds at the configured clock."""
        return cycles / self.frequency_hz

    def with_overrides(self, **overrides) -> "ArchitectureConfig":
        """A copy of this configuration with the given fields replaced."""
        return replace(self, **overrides)


def paper_extensor_config() -> ArchitectureConfig:
    """The configuration of the original ExTensor paper, as used in Section 5.

    30 MB global buffer, 128 PEs, 68.25 GB/s of DRAM bandwidth at 1 GHz.  With
    32-bit words the global buffer holds ~7.9 M words; assuming an even split
    between the two operands and the output, each operand partition gets
    ~2.6 M words.  68.25 GB/s at 1 GHz is ~17 words per cycle.
    """
    glb_words_total = 30 * (1 << 20) * 8 // 32
    per_operand = glb_words_total // 3
    return ArchitectureConfig(
        name="extensor-paper",
        num_pes=128,
        glb_capacity_words=per_operand,
        pe_buffer_capacity_words=64 * 1024 * 8 // 32 // 3,
        dram_bandwidth_words_per_cycle=68.25e9 / 4.0 / 1.0e9,
        glb_bandwidth_words_per_cycle=256.0,
        frequency_hz=1.0e9,
        word_bits=32,
    )


def scaled_default_config() -> ArchitectureConfig:
    """The configuration used with the scaled synthetic workload suite.

    The synthetic workloads are ~1/16–1/64 of the original matrices, so the
    buffer capacities are scaled down by a comparable factor to preserve the
    footprint-to-capacity ratios that determine tiling behaviour (how many
    passes over the streaming operand are needed, how often tiles overbook).
    """
    return ArchitectureConfig(
        name="extensor-scaled",
        num_pes=16,
        glb_capacity_words=8192,
        pe_buffer_capacity_words=256,
        dram_bandwidth_words_per_cycle=4.0,
        glb_bandwidth_words_per_cycle=64.0,
        frequency_hz=1.0e9,
        word_bits=32,
    )
