"""Processing-element datapath model.

Each ExTensor PE holds a subtile of the stationary operand in its local
buffer, intersects coordinate streams, and performs one effectual
multiply-accumulate per cycle.  The analytical model only needs aggregate
throughput and per-action energies, so the PE model is a thin description
object plus helpers for the compute-bound cycle estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class ProcessingElement:
    """A single PE's throughput characteristics.

    Attributes
    ----------
    macs_per_cycle:
        Effectual multiply-accumulates retired per cycle (1 for ExTensor).
    intersections_per_cycle:
        Coordinate comparisons per cycle performed by the intersection unit.
    """

    macs_per_cycle: float = 1.0
    intersections_per_cycle: float = 2.0

    def __post_init__(self) -> None:
        check_positive(self.macs_per_cycle, "macs_per_cycle")
        check_positive(self.intersections_per_cycle, "intersections_per_cycle")

    def compute_cycles(self, effectual_multiplies: float) -> float:
        """Cycles this PE needs for the given number of effectual multiplies."""
        if effectual_multiplies < 0:
            raise ValueError("effectual_multiplies must be non-negative")
        return effectual_multiplies / self.macs_per_cycle


@dataclass(frozen=True)
class PEArray:
    """An array of identical PEs with an ideal work distribution.

    Load imbalance between PEs is modeled with a single derating factor: the
    paper's evaluation (like Sparseloop's) assumes the dataflow distributes
    nonzeros evenly enough that the array is compute-limited only on very
    dense workloads, which the derating keeps approximately true.
    """

    num_pes: int
    pe: ProcessingElement = ProcessingElement()
    utilization: float = 0.85

    def __post_init__(self) -> None:
        check_positive_int(self.num_pes, "num_pes")
        if not 0 < self.utilization <= 1:
            raise ValueError(f"utilization must be in (0, 1], got {self.utilization}")

    def compute_cycles(self, effectual_multiplies: float) -> float:
        """Cycles the array needs for the workload's effectual multiplies."""
        per_pe = effectual_multiplies / self.num_pes
        return self.pe.compute_cycles(per_pe) / self.utilization
