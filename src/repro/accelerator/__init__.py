"""ExTensor-like sparse tensor algebra accelerator model.

The paper integrates overbooking into ExTensor, a coordinate-space-tiled,
intersection-based SpMSpM accelerator with a DRAM / global buffer / PE-buffer
memory hierarchy (Fig. 4).  This subpackage models that accelerator:

* :mod:`repro.accelerator.config` — architectural geometry (buffer sizes,
  PE count, bandwidths, clock), including the paper's absolute configuration
  and the scaled configuration used with the synthetic workload suite.
* :mod:`repro.accelerator.dataflow` — the loop nest / stationarity of the
  evaluated dataflow and the tile-pass bookkeeping it implies.
* :mod:`repro.accelerator.agen` — the sparse address generator (AGEN) that
  walks CSF tiles and produces fill/read traces.
* :mod:`repro.accelerator.intersection` — the coordinate-intersection unit.
* :mod:`repro.accelerator.pe` — the processing-element datapath model.
* :mod:`repro.accelerator.extensor` — the three evaluated variants
  (ExTensor-N, ExTensor-P, ExTensor-OB) wired to the analytical engine.
"""

from repro.accelerator.config import ArchitectureConfig, paper_extensor_config, scaled_default_config
from repro.accelerator.dataflow import DataflowSpec, extensor_dataflow
from repro.accelerator.extensor import (
    AcceleratorVariant,
    ExTensorModel,
    VARIANT_NAIVE,
    VARIANT_OVERBOOKING,
    VARIANT_PRESCIENT,
    default_variants,
)

__all__ = [
    "ArchitectureConfig",
    "paper_extensor_config",
    "scaled_default_config",
    "DataflowSpec",
    "extensor_dataflow",
    "AcceleratorVariant",
    "ExTensorModel",
    "VARIANT_NAIVE",
    "VARIANT_PRESCIENT",
    "VARIANT_OVERBOOKING",
    "default_variants",
]
