"""Coordinate-intersection unit model.

ExTensor skips ineffectual work by intersecting streams of nonzero coordinates
from the two operands along the shared K dimension: only coordinates present
in both streams produce multiplications.  The analytical model charges the
intersection unit for the comparator steps this takes; the exact per-pair step
count is the two-finger merge length computed in
:func:`repro.tensor.formats.intersection_steps`.

For full workloads the exact count over all (row of A, column of B) pairs is
``O(nnz(A) · avg_col_occupancy(B))``-ish to compute exactly, so
:func:`estimate_workload_intersections` samples rows and scales — the
intersection count only feeds the (small) intersection-energy term, not the
cycle count, so a sampled estimate is sufficient and is validated against the
exact count on small workloads in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.einsum import MatmulWorkload
from repro.tensor.formats import CompressedSparseFiber, intersection_steps
from repro.utils.rng import RandomState, resolve_rng
from repro.utils.validation import check_positive_int


def exact_pair_intersections(workload: MatmulWorkload) -> int:
    """Exact comparator steps over all (A-row, B-column) pairs.

    Only intended for small workloads (tests, examples): cost grows with
    ``rows(A) × cols(B)`` fiber pairs that share at least one populated
    coordinate.
    """
    a_csf = CompressedSparseFiber(workload.a)
    bt_csf = CompressedSparseFiber(workload.b.transpose())  # columns of B as fibers
    steps = 0
    for a_row in a_csf.populated_rows:
        a_fiber = a_csf.row_fiber(int(a_row))
        for b_col in bt_csf.populated_rows:
            b_fiber = bt_csf.row_fiber(int(b_col))
            steps += intersection_steps(a_fiber, b_fiber)
    return steps


def estimate_workload_intersections(workload: MatmulWorkload, *,
                                    sample_rows: int = 64,
                                    rng: RandomState = None) -> float:
    """Estimate total comparator steps by sampling rows of A.

    For each sampled row of A the exact steps against every populated column
    of B are computed, then scaled by the ratio of total to sampled rows.
    """
    check_positive_int(sample_rows, "sample_rows")
    generator = resolve_rng(rng)

    a_csf = CompressedSparseFiber(workload.a)
    bt = workload.b.transpose()
    bt_csf = CompressedSparseFiber(bt)
    populated_a = a_csf.populated_rows
    populated_b = bt_csf.populated_rows
    if populated_a.size == 0 or populated_b.size == 0:
        return 0.0

    if populated_a.size <= sample_rows:
        chosen = populated_a
        scale = 1.0
    else:
        chosen = generator.choice(populated_a, size=sample_rows, replace=False)
        scale = populated_a.size / sample_rows

    # Cap the number of B columns compared per sampled row to keep the
    # estimate cheap; scale accordingly.
    max_cols = 256
    if populated_b.size <= max_cols:
        cols = populated_b
        col_scale = 1.0
    else:
        cols = generator.choice(populated_b, size=max_cols, replace=False)
        col_scale = populated_b.size / max_cols

    b_fibers = {int(c): bt_csf.row_fiber(int(c)) for c in cols}
    steps = 0
    for a_row in chosen:
        a_fiber = a_csf.row_fiber(int(a_row))
        for fiber in b_fibers.values():
            steps += intersection_steps(a_fiber, fiber)
    return float(steps) * scale * col_scale


def effectual_multiplies(workload: MatmulWorkload) -> int:
    """Exact number of effectual multiplications of the workload."""
    return workload.operation_counts().effectual_multiplies
