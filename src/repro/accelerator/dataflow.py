"""The evaluated ExTensor dataflow and its tile-pass bookkeeping.

The performance model only needs a handful of facts about the dataflow:

* A is the *stationary* operand at the global buffer: a tile of A stays
  resident while every tile of B is streamed past it;
* tiles are coordinate-space row blocks of A (expand along the shared K
  dimension to its full extent first, then along M) and, symmetrically,
  column blocks of B — for ``B = Aᵀ`` these have the same occupancy
  distribution as row blocks of A;
* the same structure repeats one level down: an A subtile is stationary in a
  PE buffer while B subtiles stream from the global buffer.

:class:`DataflowSpec` carries those facts plus the loop-nest description so
reports can print the dataflow being modeled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class DataflowSpec:
    """Description of a two-operand, two-level tiled dataflow.

    Attributes
    ----------
    name:
        Dataflow name for reports.
    stationary_operand:
        Which operand stays resident at the global buffer (``"A"`` or ``"B"``).
    loop_order:
        Loop indices from outermost to innermost (informational).
    tile_expansion_order:
        Per-operand order in which tile dimensions are grown (the paper:
        K first to its full extent, then N for B, then M for A).
    """

    name: str
    stationary_operand: str = "A"
    loop_order: Tuple[str, ...] = ("m1", "n1", "k1", "m0", "n0", "k0")
    tile_expansion_order: Tuple[str, ...] = ("K", "N", "M")

    def __post_init__(self) -> None:
        if self.stationary_operand not in ("A", "B"):
            raise ValueError(
                f"stationary_operand must be 'A' or 'B', got {self.stationary_operand!r}"
            )

    def stationary_passes(self, num_streaming_tiles: int) -> int:
        """Number of scans of a resident stationary tile.

        The stationary tile is re-scanned once per streaming-operand tile that
        is matched against it, which is what determines how often the bumped
        portion of an overbooked stationary tile must be re-streamed.
        """
        if num_streaming_tiles < 0:
            raise ValueError("num_streaming_tiles must be non-negative")
        return max(1, num_streaming_tiles)

    def streaming_fetch_rounds(self, num_stationary_tiles: int) -> int:
        """Number of times the full streaming operand is fetched from the parent.

        With the stationary operand resident, the entire streaming operand is
        re-fetched once per stationary tile — the quantity that larger
        stationary tiles (and hence overbooking) reduce.
        """
        if num_stationary_tiles < 0:
            raise ValueError("num_stationary_tiles must be non-negative")
        return max(1, num_stationary_tiles)


def extensor_dataflow() -> DataflowSpec:
    """The dataflow of the evaluated ExTensor configuration."""
    return DataflowSpec(
        name="extensor-output-stationary",
        stationary_operand="A",
        loop_order=("m1", "n1", "k1", "m0", "n0", "k0"),
        tile_expansion_order=("K", "N", "M"),
    )
