"""The three evaluated accelerator variants and a convenience top-level model.

Section 5.2 of the paper evaluates three variants of ExTensor that differ only
in their tiling strategy (and, for the overbooked variant, in the storage
idiom that makes overbooking safe):

* **ExTensor-N** — the original design: uniform-shape tiles sized for the
  dense worst case, no preprocessing.
* **ExTensor-P** — prescient uniform-shape tiles: the largest size whose
  maximum observed occupancy fits each buffer (an idealized baseline whose
  preprocessing cost is not charged, as in the paper).
* **ExTensor-OB** — overbooked tiles sized by Swiftiles (y = 10% by default),
  executed with Tailors buffers.

:class:`ExTensorModel` bundles an architecture, the analytical engine, and the
variant definitions, and is the object the experiment harness drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.accelerator.config import ArchitectureConfig, scaled_default_config
from repro.core.overbooking import NaiveTiler, OverbookingTiler, PrescientTiler
from repro.core.swiftiles import SwiftilesConfig
from repro.model.engine import AnalyticalEngine, VariantSpec
from repro.model.stats import PerformanceReport
from repro.model.traffic import FetchPolicy
from repro.model.workload import WorkloadDescriptor
from repro.tensor.sparse import SparseMatrix

#: Canonical variant names used across experiments and reports.
VARIANT_NAIVE = "ExTensor-N"
VARIANT_PRESCIENT = "ExTensor-P"
VARIANT_OVERBOOKING = "ExTensor-OB"


@dataclass(frozen=True)
class OverbookingTilerFactory:
    """Picklable :class:`~repro.model.engine.TilerFactory` for ExTensor-OB.

    A module-level dataclass rather than a closure so that variant specs can
    cross the process boundary of the evaluation scheduler.
    """

    config: SwiftilesConfig
    rng_seed: int = 7

    def __call__(self) -> OverbookingTiler:
        return OverbookingTiler(self.config, rng=self.rng_seed)


@dataclass(frozen=True)
class AcceleratorVariant:
    """A named accelerator variant: a tiling strategy plus an overflow policy."""

    name: str
    spec: VariantSpec

    @classmethod
    def naive(cls) -> "AcceleratorVariant":
        """ExTensor-N: dense worst-case uniform-shape tiling, buffet buffers."""
        return cls(VARIANT_NAIVE, VariantSpec(
            name=VARIANT_NAIVE,
            tiler_factory=NaiveTiler,
            policy=FetchPolicy.FIT,
        ))

    @classmethod
    def prescient(cls) -> "AcceleratorVariant":
        """ExTensor-P: prescient uniform-shape tiling, buffet buffers."""
        return cls(VARIANT_PRESCIENT, VariantSpec(
            name=VARIANT_PRESCIENT,
            tiler_factory=PrescientTiler,
            policy=FetchPolicy.BUFFET,
        ))

    @classmethod
    def overbooking(cls, *, overbooking_target: float = 0.10,
                    samples_in_tail: int = 10,
                    sample_all_tiles: bool = False,
                    rng_seed: int = 7) -> "AcceleratorVariant":
        """ExTensor-OB: Swiftiles tiling at the given ``y``, Tailors buffers."""
        config = SwiftilesConfig(
            overbooking_target=overbooking_target,
            samples_in_tail=samples_in_tail,
            sample_all_tiles=sample_all_tiles,
        )
        name = VARIANT_OVERBOOKING
        if abs(overbooking_target - 0.10) > 1e-12:
            name = f"{VARIANT_OVERBOOKING}(y={overbooking_target:.0%})"
        return cls(name, VariantSpec(
            name=name,
            tiler_factory=OverbookingTilerFactory(config, rng_seed=rng_seed),
            policy=FetchPolicy.TAILORS,
        ))


def default_variants() -> List[AcceleratorVariant]:
    """The three variants evaluated throughout the paper, in report order."""
    return [
        AcceleratorVariant.naive(),
        AcceleratorVariant.prescient(),
        AcceleratorVariant.overbooking(),
    ]


class ExTensorModel:
    """Convenience wrapper: evaluate workloads on every variant of interest.

    Parameters
    ----------
    architecture:
        Architecture configuration; defaults to the scaled configuration that
        matches the synthetic workload suite.
    variants:
        The accelerator variants to evaluate; defaults to N / P / OB.
    """

    def __init__(self, architecture: Optional[ArchitectureConfig] = None,
                 variants: Optional[Iterable[AcceleratorVariant]] = None):
        self.architecture = architecture or scaled_default_config()
        self.variants = list(variants) if variants is not None else default_variants()
        self.engine = AnalyticalEngine(self.architecture)

    def variant_names(self) -> List[str]:
        return [variant.name for variant in self.variants]

    def evaluate_matrix(self, matrix: SparseMatrix,
                        name: Optional[str] = None) -> Dict[str, PerformanceReport]:
        """Evaluate the ``A × Aᵀ`` workload for ``matrix`` on every variant."""
        workload = WorkloadDescriptor.gram(matrix, name=name or matrix.name)
        return self.evaluate_workload(workload)

    def evaluate_workload(self, workload: WorkloadDescriptor) -> Dict[str, PerformanceReport]:
        """Evaluate a prepared workload descriptor on every variant.

        Tilings are memoized per operand matrix (see
        :mod:`repro.core.overbooking`), so the per-variant evaluations share
        the transpose, the row-block occupancy scans and — across repeated
        calls — the tilings themselves.
        """
        return {
            variant.name: self.engine.evaluate(workload, variant.spec)
            for variant in self.variants
        }

    def evaluate_variant(self, workload: WorkloadDescriptor,
                         variant: AcceleratorVariant) -> PerformanceReport:
        """Evaluate one workload under a single variant."""
        return self.engine.evaluate(workload, variant.spec)
