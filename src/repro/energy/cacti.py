"""CACTI-like first-order energy/area models for SRAM and DRAM accesses.

The absolute numbers follow widely published 65/45 nm characterizations
(e.g. the Eyeriss and Timeloop/Accelergy papers): a DRAM access costs two or
three orders of magnitude more energy than a small on-chip SRAM access, and
SRAM access energy grows roughly with the square root of its capacity.  The
reproduction only relies on those *relative* magnitudes: the evaluation
reports energy ratios between accelerator variants, exactly as the paper
does, so modest absolute inaccuracies cancel.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive, check_positive_int

#: Energy of one DRAM word access (pJ per 32-bit word), LPDDR-class.
_DRAM_PJ_PER_WORD_32B = 160.0

#: Reference point for the SRAM scaling law: a 4 KiB (1024-word) scratchpad
#: costs roughly 1 pJ per 32-bit access in a 65 nm node.
_SRAM_REFERENCE_WORDS = 1024
_SRAM_REFERENCE_PJ = 1.0

#: Register-file-like floor: even a tiny buffer costs something per access.
_SRAM_FLOOR_PJ = 0.08


def dram_access_energy_pj(word_bits: int = 32) -> float:
    """Energy (pJ) of reading or writing one ``word_bits``-wide word of DRAM."""
    check_positive_int(word_bits, "word_bits")
    return _DRAM_PJ_PER_WORD_32B * (word_bits / 32.0)


def sram_access_energy_pj(capacity_words: int, word_bits: int = 32) -> float:
    """Energy (pJ) of one access to an SRAM of ``capacity_words`` words.

    The access energy of an SRAM macro grows approximately with the square
    root of its capacity (longer bitlines/wordlines), which is the scaling
    CACTI produces across the capacities of interest here.
    """
    check_positive_int(capacity_words, "capacity_words")
    check_positive_int(word_bits, "word_bits")
    scale = math.sqrt(capacity_words / _SRAM_REFERENCE_WORDS)
    energy = max(_SRAM_FLOOR_PJ, _SRAM_REFERENCE_PJ * scale)
    return energy * (word_bits / 32.0)


def sram_area_mm2(capacity_words: int, word_bits: int = 32) -> float:
    """Approximate area (mm²) of an SRAM macro (0.5 mm² per MiB at 65 nm-ish)."""
    check_positive_int(capacity_words, "capacity_words")
    check_positive_int(word_bits, "word_bits")
    bytes_total = capacity_words * word_bits / 8.0
    return 0.5 * bytes_total / (1 << 20)


def mac_energy_pj(word_bits: int = 32) -> float:
    """Energy (pJ) of one multiply-accumulate in the PE datapath."""
    check_positive_int(word_bits, "word_bits")
    # ~3 pJ for a 32-bit MAC in 65 nm synthesized logic; scales ~quadratically
    # with operand width for the multiplier-dominated datapath.
    return 3.0 * (word_bits / 32.0) ** 2


def intersection_step_energy_pj() -> float:
    """Energy (pJ) of one coordinate-comparison step in the intersection unit."""
    check_positive(1.0, "one")
    return 0.3
