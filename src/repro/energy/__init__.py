"""Accelergy/CACTI-like energy estimation.

The paper evaluates energy with Accelergy plug-ins: synthesized RTL for the
datapath, an SRAM compiler for small SRAMs, and CACTI for large SRAMs
(Section 5.1).  This subpackage reproduces that methodology at the level the
analytical model needs: a table of per-action energies per component
(:mod:`repro.energy.accelergy`) whose defaults come from a CACTI-like
technology scaling model (:mod:`repro.energy.cacti`).
"""

from repro.energy.cacti import dram_access_energy_pj, sram_access_energy_pj, sram_area_mm2
from repro.energy.accelergy import ComponentEnergy, EnergyModel, EnergyReport

__all__ = [
    "dram_access_energy_pj",
    "sram_access_energy_pj",
    "sram_area_mm2",
    "ComponentEnergy",
    "EnergyModel",
    "EnergyReport",
]
