"""Accelergy-like per-component energy accounting.

Accelergy estimates design energy by multiplying per-action energies (from
technology plug-ins) with action counts (from a performance model such as
Timeloop/Sparseloop).  :class:`EnergyModel` plays the same role here: it owns
a table of per-action energies for each architectural component and converts
the action counts produced by :mod:`repro.model.engine` into an
:class:`EnergyReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.energy import cacti
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class ComponentEnergy:
    """Per-action energy of one architectural component.

    Attributes
    ----------
    name:
        Component name (``"dram"``, ``"global_buffer"``, ``"pe_buffer"``, ...).
    read_pj / write_pj:
        Energy per read / write action, in picojoules.
    """

    name: str
    read_pj: float
    write_pj: float

    def __post_init__(self) -> None:
        check_non_negative(self.read_pj, "read_pj")
        check_non_negative(self.write_pj, "write_pj")


@dataclass
class EnergyReport:
    """Energy broken down per component (all values in picojoules)."""

    per_component_pj: Dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        return float(sum(self.per_component_pj.values()))

    @property
    def total_uj(self) -> float:
        """Total energy in microjoules."""
        return self.total_pj * 1e-6

    def fraction(self, component: str) -> float:
        """Share of total energy attributed to ``component``."""
        total = self.total_pj
        if total == 0:
            return 0.0
        return self.per_component_pj.get(component, 0.0) / total

    def merged(self, other: "EnergyReport") -> "EnergyReport":
        """Component-wise sum of two reports."""
        combined = dict(self.per_component_pj)
        for key, value in other.per_component_pj.items():
            combined[key] = combined.get(key, 0.0) + value
        return EnergyReport(per_component_pj=combined)

    def as_dict(self) -> Dict[str, float]:
        return dict(self.per_component_pj)


class EnergyModel:
    """Convert per-component action counts into energy.

    Parameters
    ----------
    components:
        Mapping of component name to :class:`ComponentEnergy`.  Use
        :meth:`for_architecture` to derive the table from buffer capacities
        with the CACTI-like scaling model.
    """

    def __init__(self, components: Mapping[str, ComponentEnergy]):
        self._components = dict(components)

    @classmethod
    def for_architecture(cls, *, glb_capacity_words: int, pe_buffer_capacity_words: int,
                         word_bits: int = 32) -> "EnergyModel":
        """Build the default energy table for a two-level memory hierarchy."""
        dram = cacti.dram_access_energy_pj(word_bits)
        glb = cacti.sram_access_energy_pj(glb_capacity_words, word_bits)
        pe_buf = cacti.sram_access_energy_pj(pe_buffer_capacity_words, word_bits)
        mac = cacti.mac_energy_pj(word_bits)
        isect = cacti.intersection_step_energy_pj()
        components = {
            "dram": ComponentEnergy("dram", read_pj=dram, write_pj=dram),
            "global_buffer": ComponentEnergy("global_buffer", read_pj=glb, write_pj=glb),
            "pe_buffer": ComponentEnergy("pe_buffer", read_pj=pe_buf, write_pj=pe_buf),
            "mac": ComponentEnergy("mac", read_pj=mac, write_pj=mac),
            "intersection": ComponentEnergy("intersection", read_pj=isect, write_pj=isect),
        }
        return cls(components)

    @property
    def components(self) -> Dict[str, ComponentEnergy]:
        return dict(self._components)

    def energy_of(self, component: str, *, reads: float = 0.0, writes: float = 0.0) -> float:
        """Energy (pJ) of the given action counts on one component."""
        check_non_negative(reads, "reads")
        check_non_negative(writes, "writes")
        if component not in self._components:
            raise KeyError(f"unknown component {component!r}; known: {sorted(self._components)}")
        entry = self._components[component]
        return reads * entry.read_pj + writes * entry.write_pj

    def report(self, action_counts: Mapping[str, Mapping[str, float]]) -> EnergyReport:
        """Build an :class:`EnergyReport` from nested action counts.

        ``action_counts`` maps component name to ``{"reads": r, "writes": w}``.
        """
        per_component: Dict[str, float] = {}
        for component, counts in action_counts.items():
            per_component[component] = self.energy_of(
                component,
                reads=float(counts.get("reads", 0.0)),
                writes=float(counts.get("writes", 0.0)),
            )
        return EnergyReport(per_component_pj=per_component)
