"""repro — a reproduction of *Tailors: Accelerating Sparse Tensor Algebra by
Overbooking Buffer Capacity* (MICRO 2023).

The package is organized as:

* :mod:`repro.tensor` — sparse tensor substrate (formats, generators, the
  synthetic evaluation suite).
* :mod:`repro.tiling` — coordinate-space and position-space tiling baselines.
* :mod:`repro.buffers` — EDDO storage idioms (FIFO, buffets, caches).
* :mod:`repro.core` — the paper's contribution: Tailors, Swiftiles, the
  overbooking tiler, and reuse accounting.
* :mod:`repro.accelerator`, :mod:`repro.model`, :mod:`repro.energy` — the
  ExTensor-like accelerator, the Sparseloop-like analytical engine and the
  Accelergy-like energy model.
* :mod:`repro.experiments` — registry, scheduler and sweep runner that
  regenerate every table and figure of the paper.
* :mod:`repro.cli` — the ``python -m repro`` command line (list / run /
  sweep experiments, write JSON artifacts).

Quickstart::

    from repro import ExperimentContext

    context = ExperimentContext.full()
    reports = context.reports("roadNet-CA")
    print(reports["ExTensor-OB"].speedup_over(reports["ExTensor-N"]))

or from a shell: ``python -m repro run --all``.
"""

from repro.accelerator.config import ArchitectureConfig, paper_extensor_config, scaled_default_config
from repro.accelerator.extensor import AcceleratorVariant, ExTensorModel, default_variants
from repro.core.overbooking import NaiveTiler, OverbookingTiler, PrescientTiler
from repro.core.swiftiles import Swiftiles, SwiftilesConfig
from repro.core.tailors import Tailors, TailorsConfig
from repro.experiments import ExperimentContext
from repro.model.workload import WorkloadDescriptor
from repro.tensor.kernels import KERNELS, build_kernel_workload, kernel_names
from repro.tensor.sparse import SparseMatrix
from repro.tensor.suite import WorkloadSuite, corpus_suite, default_suite, small_suite

__version__ = "1.2.0"

__all__ = [
    "ExperimentContext",
    "ArchitectureConfig",
    "paper_extensor_config",
    "scaled_default_config",
    "AcceleratorVariant",
    "ExTensorModel",
    "default_variants",
    "NaiveTiler",
    "PrescientTiler",
    "OverbookingTiler",
    "Swiftiles",
    "SwiftilesConfig",
    "Tailors",
    "TailorsConfig",
    "WorkloadDescriptor",
    "SparseMatrix",
    "WorkloadSuite",
    "KERNELS",
    "build_kernel_workload",
    "kernel_names",
    "corpus_suite",
    "default_suite",
    "small_suite",
    "__version__",
]
