"""Quickstart: evaluate overbooking on one sparse workload.

Builds a synthetic road-network matrix, runs the ``A × Aᵀ`` workload through
the three ExTensor variants (naive, prescient, overbooked), and prints the
speedup, energy, and DRAM traffic of each — the smallest end-to-end use of the
library's public API.

Run with::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ExTensorModel, default_suite


def main() -> None:
    suite = default_suite()
    matrix = suite.matrix("roadNet-CA")
    print(f"workload: {matrix.name}, shape {matrix.csr.shape}, "
          f"nnz {matrix.nnz}, sparsity {matrix.sparsity:.4%}\n")

    model = ExTensorModel()
    reports = model.evaluate_matrix(matrix)
    naive = reports["ExTensor-N"]

    header = f"{'variant':14s} {'cycles':>14s} {'speedup':>9s} {'energy (uJ)':>12s} {'DRAM words':>12s}"
    print(header)
    print("-" * len(header))
    for name, report in reports.items():
        print(f"{name:14s} {report.cycles:14.3e} {report.speedup_over(naive):8.1f}x "
              f"{report.energy.total_uj:12.2f} {report.dram_words:12.3e}")

    overbooked = reports["ExTensor-OB"]
    print(f"\nExTensor-OB tiled A into blocks of {overbooked.glb_block_rows} rows; "
          f"{overbooked.glb_overbooking_rate:.0%} of tiles overbook the global buffer, "
          f"streaming overhead is {overbooked.traffic.dram_overhead_fraction:.1%} "
          f"of baseline DRAM traffic.")


if __name__ == "__main__":
    main()
