"""Quickstart: evaluate overbooking on one sparse workload.

Builds an :class:`ExperimentContext` over the evaluation suite, pulls the
per-variant performance reports of the road-network workload (naive,
prescient, overbooked), and prints the speedup, energy, and DRAM traffic of
each — the smallest end-to-end use of the experiment framework's public API.

Run with::

    python examples/quickstart.py [--suite {full,quick}]

``python -m repro run --all`` regenerates every paper figure/table through
the same framework; ``python -m repro list`` shows what is available.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import ExperimentContext


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", choices=("full", "quick"), default="full",
                        help="workload suite (quick = 3-workload smoke suite)")
    args = parser.parse_args(argv)

    context = ExperimentContext.for_suite(args.suite)
    name = "roadNet-CA" if "roadNet-CA" in context.suite else "tiny-road"
    matrix = context.matrix(name)
    print(f"workload: {matrix.name}, shape {matrix.csr.shape}, "
          f"nnz {matrix.nnz}, sparsity {matrix.sparsity:.4%}\n")

    reports = context.reports(name)
    naive = reports[context.naive_name]

    header = f"{'variant':14s} {'cycles':>14s} {'speedup':>9s} {'energy (uJ)':>12s} {'DRAM words':>12s}"
    print(header)
    print("-" * len(header))
    for variant, report in reports.items():
        print(f"{variant:14s} {report.cycles:14.3e} {report.speedup_over(naive):8.1f}x "
              f"{report.energy.total_uj:12.2f} {report.dram_words:12.3e}")

    overbooked = reports[context.overbooking_name]
    print(f"\nExTensor-OB tiled A into blocks of {overbooked.glb_block_rows} rows; "
          f"{overbooked.glb_overbooking_rate:.0%} of tiles overbook the global buffer, "
          f"streaming overhead is {overbooked.traffic.dram_overhead_fraction:.1%} "
          f"of baseline DRAM traffic.")
    print("\nNext: `python -m repro run --all` writes every paper artifact to "
          "artifacts/, `python -m repro sweep` runs parameter grids.")


if __name__ == "__main__":
    main()
