"""Swiftiles walkthrough: statistical tile-size selection for a graph workload.

Shows the three Swiftiles steps on a power-law graph (the workload class where
overbooking matters most):

1. the initial estimate from global sparsity only;
2. the sampled tile-occupancy distribution at that size;
3. the scaled prediction, compared against the tile size the prescient
   (full-knowledge) baseline would pick and against the observed overbooking
   rate of the prediction.

Run with::

    python examples/swiftiles_tile_sizing.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PrescientTiler, Swiftiles, SwiftilesConfig
from repro.tensor.generators import power_law_matrix

BUFFER_CAPACITY = 4096  # words available for one operand's tiles


def main() -> None:
    matrix = power_law_matrix(6000, 60_000, alpha=1.5, rng=3, name="social-graph")
    print(f"workload: {matrix.name}, {matrix.num_rows} nodes, nnz {matrix.nnz}, "
          f"sparsity {matrix.sparsity:.4%}\n")

    for y in (0.05, 0.10, 0.25):
        estimator = Swiftiles(SwiftilesConfig(overbooking_target=y), rng=1)
        estimate = estimator.estimate(matrix, BUFFER_CAPACITY)
        achieved = estimator.observed_overbooking_rate(
            matrix, estimate.target_size, BUFFER_CAPACITY)
        rows = max(1, round(estimate.target_size / matrix.num_cols))
        print(f"y = {y:4.0%}:  T_initial = {estimate.initial_size:10.0f} points, "
              f"Q_y = {estimate.quantile_occupancy:7.0f}, "
              f"T_target = {estimate.target_size:10.0f} points "
              f"({rows} rows/tile), achieved overbooking rate = {achieved:.1%}")

    prescient_rows, tax = __prescient_rows(matrix)
    print(f"\nprescient baseline: {prescient_rows} rows/tile, preprocessing touched "
          f"{tax.preprocessing_elements:,.0f} elements "
          f"({tax.preprocessing_elements / matrix.nnz:.1f} full traversals); "
          f"Swiftiles touched only its samples.")


def __prescient_rows(matrix):
    result = PrescientTiler().tile(matrix, BUFFER_CAPACITY)
    return result.block_rows, result.tax


if __name__ == "__main__":
    main()
