"""Design-space exploration: how buffer capacity and y interact.

Runs a grid over the global-buffer capacity and the Swiftiles overbooking
target for one skewed workload through the experiment framework's sweep
runner (:mod:`repro.experiments.sweep`) — all grid points are batched through
the parallel evaluation scheduler — and prints the resulting speedup of
ExTensor-OB over ExTensor-P, the kind of what-if study a designer adopting
overbooking would run before fixing the buffer size.

Run with::

    python examples/accelerator_design_space.py [--quick] [--workers N]

The same grid is available from the command line::

    python -m repro sweep --y 0.05,0.10,0.25,0.50 --glb-scales 0.25,0.5,1,2
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import default_suite, small_suite
from repro.experiments.sweep import sweep_grid

GLB_SCALES = (0.25, 0.5, 1.0, 2.0)
TARGETS = (0.05, 0.10, 0.25, 0.50)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="use the 3-workload quick suite's graph workload")
    parser.add_argument("--workers", type=int, default=None,
                        help="scheduler worker processes (default: CPU count)")
    args = parser.parse_args(argv)

    suite = small_suite() if args.quick else default_suite()
    workload = "tiny-social" if args.quick else "sx-mathoverflow"
    result = sweep_grid(suite, y_values=TARGETS, glb_scales=GLB_SCALES,
                        workloads=[workload], max_workers=args.workers)

    print(f"workload: {workload} (speedups are ExTensor-OB over ExTensor-P)\n")
    header = "GLB scale | " + " | ".join(f"y={y:4.0%}" for y in TARGETS)
    print(header)
    print("-" * len(header))
    for scale in GLB_SCALES:
        cells = [
            f"{result.summary_at(y, glb_scale=scale).geomean_speedup_ob_vs_prescient:6.2f}x"
            for y in TARGETS
        ]
        print(f"{scale:9.2f} | " + " | ".join(cells))

    schedule = result.schedule
    note = (f"{schedule.computed} evaluations on {schedule.workers} worker(s)"
            if schedule.computed else "report memo was already warm")
    print(f"\nscheduler: {note}; larger buffers need less overbooking, "
          "small buffers gain the most from speculative tiles.")


if __name__ == "__main__":
    main()
