"""Design-space exploration: how buffer capacity and y interact.

Sweeps the global-buffer capacity and the Swiftiles overbooking target for one
skewed workload and prints the resulting speedup of ExTensor-OB over
ExTensor-P — the kind of what-if study a designer adopting overbooking would
run before fixing the buffer size.

Run with::

    python examples/accelerator_design_space.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AcceleratorVariant, ExTensorModel, WorkloadDescriptor, scaled_default_config
from repro.tensor.generators import power_law_matrix

CAPACITIES = (2048, 4096, 8192, 16384)
TARGETS = (0.0, 0.10, 0.25, 0.50)


def main() -> None:
    matrix = power_law_matrix(8000, 80_000, alpha=1.5, rng=9, name="design-space-graph")
    workload = WorkloadDescriptor.gram(matrix)
    print(f"workload: {matrix.name}, nnz {matrix.nnz}\n")

    header = "GLB capacity | " + " | ".join(f"y={y:4.0%}" for y in TARGETS)
    print(header)
    print("-" * len(header))
    for capacity in CAPACITIES:
        config = scaled_default_config().with_overrides(glb_capacity_words=capacity)
        model = ExTensorModel(config)
        prescient = model.evaluate_variant(workload, AcceleratorVariant.prescient())
        cells = []
        for y in TARGETS:
            variant = AcceleratorVariant.overbooking(overbooking_target=y)
            report = model.evaluate_variant(workload, variant)
            cells.append(f"{prescient.cycles / report.cycles:6.2f}x")
        print(f"{capacity:12d} | " + " | ".join(cells))

    print("\nLarger buffers need less overbooking; small buffers gain the most "
          "from speculative tiles (speedups are ExTensor-OB over ExTensor-P).")


if __name__ == "__main__":
    main()
