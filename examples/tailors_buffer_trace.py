"""Drive a Tailors buffer by hand and compare it against a buffet and a cache.

Reproduces the paper's Fig. 5 walk-through (a 4-entry buffer with a 2-entry
FIFO-managed region processing a 6-element tile) and then quantifies, for a
larger overbooked tile, how many parent fetches each storage idiom needs — the
Fig. 3 comparison plus the LRU-cache scan pathology the paper contrasts
against.

Run with::

    python examples/tailors_buffer_trace.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Tailors, TailorsConfig
from repro.core.reuse import (
    simulate_buffet_tile,
    simulate_cache_tile,
    simulate_tailors_tile,
)


def fig5_walkthrough() -> None:
    tailor = Tailors(TailorsConfig(capacity=4, fifo_region_size=2))
    tile = "abcdef"
    print("Fig. 5 walk-through (capacity 4, FIFO region 2, tile a..f)")
    for index in range(4):
        tailor.fill(tile[index])
    print(f"  after filling a..d          : {tailor.contents()}  overbooked={tailor.is_overbooked}")
    tailor.overwriting_fill("e", index=4)
    tailor.overwriting_fill("f", index=5)
    print(f"  after streaming e, f        : {tailor.contents()}  fifo_offset={tailor.fifo_offset}")
    print(f"  second pass reads 0,1       : {tailor.read(0)}, {tailor.read(1)} (still resident)")
    tailor.overwriting_fill("c", index=2)
    tailor.overwriting_fill("d", index=3)
    print(f"  after re-streaming c, d     : {tailor.contents()}  fifo_offset={tailor.fifo_offset}")
    print()


def reuse_comparison(tile_occupancy: int = 4096, capacity: int = 1024,
                     passes: int = 4) -> None:
    print(f"Overbooked tile of {tile_occupancy} nonzeros, buffer of {capacity} words, "
          f"{passes} passes:")
    reports = [
        simulate_buffet_tile(tile_occupancy, capacity, passes),
        simulate_tailors_tile(tile_occupancy, capacity, capacity // 8, passes),
        simulate_cache_tile(tile_occupancy, capacity, passes),
    ]
    for report in reports:
        print(f"  {report.idiom:10s} parent fetches = {report.parent_fetches:6d}  "
              f"reuse = {report.reuse_fraction:6.1%}")
    buffet, tailors, _ = reports
    print(f"\nTailors cuts parent traffic by "
          f"{buffet.parent_fetches / tailors.parent_fetches:.2f}x versus a buffet "
          f"(and an LRU cache thrashes on the scan exactly like the buffet).")


if __name__ == "__main__":
    fig5_walkthrough()
    reuse_comparison()
