"""Benchmark regenerating Fig. 11: overbooking rate, initial estimate vs. Swiftiles."""

from repro.experiments import fig11


def test_fig11_scaling_accuracy(benchmark, context, run_once):
    result = run_once(benchmark, fig11.run, context)
    print("\n" + fig11.format_result(result))
    assert len(result.rows) == 22
    # Swiftiles' scaling step must reduce the error of the raw initial
    # estimate (the paper: MAE 15.6% -> 5.8%).
    assert result.mae_swiftiles < result.mae_initial
    # And the mean achieved rate must be closer to the 10% target.
    assert abs(result.mean_swiftiles_rate - result.target) <= abs(
        result.mean_initial_rate - result.target)
