"""Benchmark regenerating Table 2: workload characteristics."""

from repro.experiments import table2


def test_table2_workload_characteristics(benchmark, context, run_once):
    result = run_once(benchmark, table2.run, context)
    print("\n" + table2.format_result(result))
    assert len(result.rows) == 22
    # Sorted into the paper's two halves: linear systems first, graphs second.
    categories = [row.category for row in result.rows]
    assert categories[:9] == ["linear-system"] * 9
    assert categories[9:] == ["graph"] * 13
    # Every synthetic workload is genuinely sparse.
    assert all(row.sparsity > 0.95 for row in result.rows)
