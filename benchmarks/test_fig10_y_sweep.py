"""Benchmark regenerating Fig. 10: ExTensor-OB speedup over ExTensor-P vs. y."""

from repro.experiments import fig10

#: A representative subset spanning the structure classes, to keep the sweep
#: (11 y values × workloads × 2 levels of tiling) within benchmark budget.
SWEEP_WORKLOADS = [
    "rma10", "pwtk", "mc2depi", "pdb1HYS",
    "email-Enron", "soc-Epinions1", "amazon0312", "roadNet-CA",
]


def test_fig10_y_sweep(benchmark, context, run_once):
    result = run_once(benchmark, fig10.run, context, workloads=SWEEP_WORKLOADS)
    print("\n" + fig10.format_result(result))
    assert len(result.speedups) == len(result.y_values)
    # The paper's shape: moderate y beats both extremes on average.
    moderate = max(result.speedup_at(0.10), result.speedup_at(0.22))
    assert moderate >= result.speedup_at(0.0)
    assert moderate >= result.speedup_at(1.0) * 0.95
