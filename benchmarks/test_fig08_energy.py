"""Benchmark regenerating Fig. 8: energy relative to ExTensor-N."""

from repro.experiments import fig8


def test_fig8_energy(benchmark, context, run_once):
    result = run_once(benchmark, fig8.run, context)
    print("\n" + fig8.format_result(result))
    assert len(result.rows) == 22
    # Shape of the paper's result: large energy savings over ExTensor-N, and
    # overbooking more efficient than prescient tiling on average.
    assert result.geomean_prescient > 5.0
    assert result.geomean_overbooking > 5.0
    assert result.geomean_overbooking_vs_prescient > 1.1
