"""Benchmark regenerating Fig. 7: speedup over ExTensor-N across the suite."""

from repro.experiments import fig7


def test_fig7_speedup(benchmark, context, run_once):
    result = run_once(benchmark, fig7.run, context)
    print("\n" + fig7.format_result(result))
    assert len(result.rows) == 22
    # Shape of the paper's result: both sparsity-aware variants beat the naive
    # design by a large factor, and overbooking beats prescient tiling overall.
    assert result.geomean_prescient > 5.0
    assert result.geomean_overbooking > 5.0
    assert result.geomean_overbooking_vs_prescient > 1.2
