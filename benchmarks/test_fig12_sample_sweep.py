"""Benchmark regenerating Fig. 12: Swiftiles error vs. the sample budget k."""

from repro.experiments import fig12


def test_fig12_sample_sweep(benchmark, context, run_once):
    result = run_once(benchmark, fig12.run, context)
    print("\n" + fig12.format_result(result))
    assert result.k_values[0] == 0
    # Sampling helps: a moderate sample budget beats no sampling at all, and
    # is close to the fully-sampled error (diminishing returns, Fig. 12).
    assert result.mae_at(10) <= result.mae_at(0)
    assert result.mae_at(50) <= result.mae_at(1) + 1e-9
    assert result.mae_at(10) <= result.full_sampling_mae + 0.05
