"""Benchmark regenerating Table 1: tiling-strategy utilization vs. tax."""

from repro.experiments import table1


def test_table1_tiling_strategies(benchmark, context, run_once):
    result = run_once(benchmark, table1.run, context)
    print("\n" + table1.format_result(result))
    # The qualitative ordering of Table 1 must hold on the measured data.
    uniform = result.row("uniform shape")
    prescient = result.row("prescient uniform shape")
    overbooking = result.row("overbooking (this work)")
    assert uniform.mean_buffer_utilization < prescient.mean_buffer_utilization
    assert overbooking.mean_buffer_utilization >= prescient.mean_buffer_utilization * 0.8
    assert overbooking.mean_tiling_tax < prescient.mean_tiling_tax
    assert uniform.mean_tiling_tax == 0.0
