"""End-to-end performance regression gate for the evaluation pipeline.

The seed implementation spent ~90% of ``ExperimentContext.full().all_reports()``
materializing per-tile ``Tile``/``Range`` objects; the vectorized tiling layer
plus the memoization caches brought the cold end-to-end wall time from ~3.3s
(seed, on the development machine) to well under a second.  This benchmark
keeps that property: a *cold* full-suite evaluation — all process-wide memos
cleared — must finish within the ISSUE's 1.5s budget, and a warm context must
be markedly cheaper than a cold one.
"""

import time

from repro.experiments.runner import ExperimentContext, clear_process_caches

#: The ISSUE's absolute end-to-end budget for a cold full-suite evaluation.
COLD_BUDGET_SECONDS = 1.5


def _cold_all_reports():
    clear_process_caches()
    return ExperimentContext.full().all_reports()


def test_cold_all_reports_within_budget(benchmark, run_once):
    start = time.perf_counter()
    reports = run_once(benchmark, _cold_all_reports)
    elapsed = time.perf_counter() - start
    assert len(reports) == 22
    assert all(len(per_variant) == 3 for per_variant in reports.values())
    assert elapsed < COLD_BUDGET_SECONDS, (
        f"cold all_reports took {elapsed:.2f}s; budget is {COLD_BUDGET_SECONDS}s "
        "(seed took ~3.3s — see PERFORMANCE.md)"
    )


def test_surrogate_search_reduces_exact_evaluations():
    """The surrogate-ranked search must reproduce the brute-force frontier
    exactly on the benchmark grid while exactly evaluating >= 3x fewer
    configurations (measured 3.75x when this gate was added)."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
    from bench_pipeline import _bench_search

    result = _bench_search()
    assert result["frontier_equal"], (
        "surrogate frontier diverged from brute force on the pinned grid")
    assert result["frontier_precision"] == 1.0
    assert result["frontier_recall"] == 1.0
    assert result["evaluation_reduction"] >= 3.0, (
        f"surrogate only cut exact evaluations by "
        f"{result['evaluation_reduction']:.2f}x; the gate requires >= 3x"
    )


def test_warm_context_reuses_memoized_pipeline():
    # Warm the process-wide memos, then measure a brand-new context.
    ExperimentContext.full().all_reports()
    start = time.perf_counter()
    reports = ExperimentContext.full().all_reports()
    elapsed = time.perf_counter() - start
    assert len(reports) == 22
    assert elapsed < 0.5, (
        f"warm all_reports took {elapsed:.2f}s; the report/matrix memos should "
        "make repeated contexts nearly free"
    )


def test_bench_pipeline_has_server_section():
    """The recorded benchmark trajectory must carry the daemon's load-test
    section: >= 4 concurrent clients, p50/p99 latency and throughput per
    phase, and a repeated-request (hot) warm hit rate above 90%."""
    import json
    from pathlib import Path

    bench_path = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    payload = json.loads(bench_path.read_text())
    assert "server" in payload, (
        "BENCH_pipeline.json has no server section; run "
        "scripts/bench_server.py (or scripts/bench_pipeline.py)")
    server = payload["server"]
    assert server["clients"] >= 4
    for name in ("cold", "hot", "mixed"):
        phase = server["phases"][name]
        assert phase["requests"] > 0
        assert phase["latency_p50_ms"] > 0
        assert phase["latency_p99_ms"] >= phase["latency_p50_ms"]
        assert phase["throughput_rps"] > 0
    assert server["phases"]["hot"]["warm_hit_rate"] > 0.90, (
        "the repeated-request phase must be served from the memo/store")


def test_bench_pipeline_has_corpus_section():
    """The recorded trajectory must carry the corpus-cache section: the
    offline fixture fetch/install timings and a warm-over-cold speedup
    (the cache must actually be a cache)."""
    import json
    from pathlib import Path

    bench_path = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    payload = json.loads(bench_path.read_text())
    assert "corpus" in payload, (
        "BENCH_pipeline.json has no corpus section; run "
        "scripts/bench_pipeline.py")
    corpus = payload["corpus"]
    assert corpus["matrices"] == 5  # every fixture wire format
    assert corpus["cold_fetch_install_load_seconds"] > 0
    assert corpus["warm_cache_hit_load_seconds"] > 0
    assert corpus["warm_vs_cold_speedup"] > 1.0, (
        "warm cache-hit loading must beat cold fetch+install")
    assert corpus["warm_matrix_loads_per_second"] > 0


def test_server_load_generator_live():
    """The load generator itself, on a reduced profile: the coalescing
    daemon must serve the hot phase entirely from the warm path and shut
    down cleanly (no leaked shm segments — the autouse conftest check)."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
    from bench_server import run_server_bench

    section = run_server_bench(clients=4, hot_rounds=2)
    assert section["phases"]["hot"]["warm_hit_rate"] > 0.90
    assert section["service"]["coalesced"] > 0, (
        "concurrent identical requests should coalesce into shared passes")
