"""Benchmark regenerating Fig. 1: occupancy of fixed uniform-shape tiles."""

from repro.experiments import fig1


def test_fig1_occupancy_distribution(benchmark, context, run_once):
    result = run_once(benchmark, fig1.run, context)
    print("\n" + fig1.format_result(result))
    # The paper's headline observations: the uncompressed tile size dwarfs the
    # worst-case occupancy, and the worst case dwarfs the typical tile.
    assert result.size_to_max_ratio > 10.0
    assert result.max_occupancy > result.p90_occupancy
    assert result.p90_occupancy >= result.mean_occupancy * 0.5
