"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The expensive
inputs — the 22 synthetic workload matrices and the per-variant performance
reports — are shared through a session-scoped :class:`ExperimentContext` so
that the full benchmark suite runs in a couple of minutes.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.runner import ExperimentContext  # noqa: E402


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """The full 22-workload experiment context (shared across benchmarks)."""
    return ExperimentContext.full()


@pytest.fixture(scope="session")
def run_once():
    """Fixture providing a helper that runs a callable once under benchmark timing."""

    def _run(benchmark, func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
