"""Benchmark regenerating Fig. 13: occupancy distributions under Swiftiles scaling."""

from repro.experiments import fig13


def test_fig13_distributions(benchmark, context, run_once):
    result = run_once(benchmark, fig13.run, context)
    print("\n" + fig13.format_result(result))
    # After scaling, the predicted y-quantile occupancy must sit at the buffer
    # capacity (that is the definition of the scaling step) ...
    assert abs(result.predicted_quantile - result.buffer_capacity) / result.buffer_capacity < 0.05
    # ... and the observed distribution should be reasonably aligned with it.
    assert result.prediction_alignment < 0.5
    # CDF columns are monotonically non-decreasing.
    for column in range(1, 4):
        values = [point[column] for point in result.cdf_points]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
