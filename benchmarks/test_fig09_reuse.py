"""Benchmark regenerating Fig. 9: streaming overhead and data reuse."""

from repro.experiments import fig9


def test_fig9_overhead_and_reuse(benchmark, context, run_once):
    result = run_once(benchmark, fig9.run, context)
    print("\n" + fig9.format_result(result))
    assert len(result.rows) == 22
    # Overbooking costs some extra DRAM traffic but not an unbounded amount.
    assert 0.0 <= result.mean_overhead < 0.6
    # Fig. 9b: data reuse and bumped data are strongly negatively correlated.
    assert result.reuse_bumped_correlation < -0.5
    for row in result.rows:
        assert 0.0 <= row.data_reuse_fraction <= 1.0
        assert 0.0 <= row.bumped_fraction <= 1.0
