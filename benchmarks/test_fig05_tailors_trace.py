"""Benchmark regenerating Figs. 3/5: Tailors vs. buffet on an overbooked tile."""

from repro.experiments import fig5


def test_fig5_tailors_trace(benchmark, run_once):
    result = run_once(benchmark, fig5.run)
    print("\n" + fig5.format_result(result))
    # Tailors must fetch strictly less than the buffet for an overbooked tile.
    assert result.tailors_report.parent_fetches < result.buffet_report.parent_fetches
    assert result.fetch_savings > 1.0
    # The trace ends with the head of the tile (a, b) still resident.
    final_contents = result.trace[-1].contents
    assert "a" in final_contents and "b" in final_contents
