"""Tests for the CACTI-like energy scaling model."""

import pytest

from repro.energy import cacti


class TestDramEnergy:
    def test_positive(self):
        assert cacti.dram_access_energy_pj() > 0

    def test_scales_with_width(self):
        assert cacti.dram_access_energy_pj(64) == pytest.approx(
            2 * cacti.dram_access_energy_pj(32))

    def test_dominates_sram(self):
        assert cacti.dram_access_energy_pj() > 4 * cacti.sram_access_energy_pj(1 << 20)
        assert cacti.dram_access_energy_pj() > 50 * cacti.sram_access_energy_pj(1024)


class TestSramEnergy:
    def test_monotone_in_capacity(self):
        energies = [cacti.sram_access_energy_pj(c) for c in (256, 1024, 8192, 1 << 20)]
        assert all(a <= b for a, b in zip(energies, energies[1:]))

    def test_sqrt_scaling(self):
        assert cacti.sram_access_energy_pj(4096) == pytest.approx(
            2 * cacti.sram_access_energy_pj(1024))

    def test_floor_for_tiny_buffers(self):
        assert cacti.sram_access_energy_pj(1) >= 0.08

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            cacti.sram_access_energy_pj(0)


class TestAreaAndDatapath:
    def test_area_scales_linearly(self):
        assert cacti.sram_area_mm2(2048) == pytest.approx(2 * cacti.sram_area_mm2(1024))

    def test_mac_energy_positive(self):
        assert cacti.mac_energy_pj() > 0

    def test_mac_energy_scales_quadratically(self):
        assert cacti.mac_energy_pj(64) == pytest.approx(4 * cacti.mac_energy_pj(32))

    def test_intersection_energy_small(self):
        assert 0 < cacti.intersection_step_energy_pj() < cacti.mac_energy_pj()
