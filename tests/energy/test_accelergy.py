"""Tests for the Accelergy-like energy accounting."""

import pytest

from repro.energy.accelergy import ComponentEnergy, EnergyModel, EnergyReport


class TestComponentEnergy:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ComponentEnergy("x", read_pj=-1.0, write_pj=0.0)


class TestEnergyModel:
    def make(self):
        return EnergyModel({
            "dram": ComponentEnergy("dram", 100.0, 100.0),
            "sram": ComponentEnergy("sram", 1.0, 2.0),
        })

    def test_energy_of(self):
        model = self.make()
        assert model.energy_of("sram", reads=10, writes=5) == pytest.approx(10 + 10)

    def test_unknown_component_raises(self):
        with pytest.raises(KeyError):
            self.make().energy_of("nope", reads=1)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            self.make().energy_of("sram", reads=-1)

    def test_report(self):
        report = self.make().report({
            "dram": {"reads": 2},
            "sram": {"reads": 10, "writes": 10},
        })
        assert report.per_component_pj["dram"] == pytest.approx(200.0)
        assert report.total_pj == pytest.approx(200.0 + 30.0)

    def test_for_architecture_components(self):
        model = EnergyModel.for_architecture(glb_capacity_words=8192,
                                             pe_buffer_capacity_words=256)
        names = set(model.components)
        assert {"dram", "global_buffer", "pe_buffer", "mac", "intersection"} <= names

    def test_for_architecture_ordering(self):
        model = EnergyModel.for_architecture(glb_capacity_words=1 << 20,
                                             pe_buffer_capacity_words=256)
        components = model.components
        assert components["dram"].read_pj > components["global_buffer"].read_pj
        assert components["global_buffer"].read_pj > components["pe_buffer"].read_pj


class TestEnergyReport:
    def test_total_and_fraction(self):
        report = EnergyReport({"a": 75.0, "b": 25.0})
        assert report.total_pj == 100.0
        assert report.fraction("a") == 0.75
        assert report.fraction("missing") == 0.0

    def test_total_uj(self):
        assert EnergyReport({"a": 2e6}).total_uj == pytest.approx(2.0)

    def test_merged(self):
        merged = EnergyReport({"a": 1.0}).merged(EnergyReport({"a": 2.0, "b": 3.0}))
        assert merged.per_component_pj == {"a": 3.0, "b": 3.0}

    def test_empty_report(self):
        report = EnergyReport()
        assert report.total_pj == 0.0
        assert report.fraction("a") == 0.0
