"""Resumable sweeps: interrupted + resumed == uninterrupted, byte for byte."""

import json

import pytest

from repro.experiments.runner import clear_process_caches
from repro.experiments import scheduler as scheduler_mod
from repro.experiments.scheduler import EvaluationScheduler
from repro.experiments.store import ReportStore
from repro.experiments.sweep import sweep_grid, sweep_signature
from repro.tensor.suite import small_suite

Y_VALUES = (0.05, 0.10)


def _run_clean(tmp_path):
    clear_process_caches()
    result = sweep_grid(small_suite(), y_values=Y_VALUES, max_workers=1)
    return (result.write_json(tmp_path / "clean.json").read_bytes(),
            result.write_csv(tmp_path / "clean.csv").read_bytes())


class TestResume:
    def test_interrupted_then_resumed_is_byte_identical(self, tmp_path,
                                                        monkeypatch):
        """The acceptance criterion, end to end.

        A sweep is killed mid-grid (after the first batch unit — 2 of 6
        cells), the process dies (simulated by clearing every in-process
        memo), and the rerun with ``resume=True`` must (a) re-evaluate only
        the missing cells and (b) write byte-identical JSON/CSV to an
        uninterrupted run.
        """
        clean_json, clean_csv = _run_clean(tmp_path)

        # --- interrupted run: crash after the 1st evaluated unit ----------
        # (a unit is one workload's y-axis group: 2 cells of the 6)
        clear_process_caches()
        store = ReportStore(tmp_path / "store")
        real_evaluate = scheduler_mod._evaluate_request_group
        calls = {"n": 0}

        def dying_evaluate(unit):
            if calls["n"] >= 1:
                raise KeyboardInterrupt("simulated crash mid-grid")
            calls["n"] += 1
            return real_evaluate(unit)

        monkeypatch.setattr(scheduler_mod, "_evaluate_request_group",
                            dying_evaluate)
        with pytest.raises(KeyboardInterrupt):
            sweep_grid(small_suite(), y_values=Y_VALUES, max_workers=1,
                       store=store)
        monkeypatch.setattr(scheduler_mod, "_evaluate_request_group",
                            real_evaluate)

        # The two finished cells are durable; the manifest records the grid.
        assert store.stats().entries == 2
        signature = sweep_signature(
            small_suite(), y_values=Y_VALUES, glb_scales=(1.0,),
            pe_scales=(1.0,), kernels=("gram",),
            base=__import__("repro.accelerator.config",
                            fromlist=["scaled_default_config"]
                            ).scaled_default_config())
        manifest = store.read_manifest(signature)
        assert manifest is not None
        assert manifest["status"] == "in-progress"
        assert manifest["cells"] == 6

        # --- resumed run in a "fresh process" -----------------------------
        clear_process_caches()
        resumed = sweep_grid(small_suite(), y_values=Y_VALUES, max_workers=1,
                             store=ReportStore(tmp_path / "store"),
                             resume=True)
        assert resumed.schedule.store_hits == 2   # only the missing cells...
        assert resumed.schedule.computed == 4     # ...were re-evaluated

        resumed_json = resumed.write_json(tmp_path / "resumed.json")
        resumed_csv = resumed.write_csv(tmp_path / "resumed.csv")
        assert resumed_json.read_bytes() == clean_json
        assert resumed_csv.read_bytes() == clean_csv

        manifest = ReportStore(tmp_path / "store").read_manifest(signature)
        assert manifest["status"] == "complete"
        assert manifest["store_hits"] == 2

    def test_resume_on_warm_store_recomputes_nothing(self, tmp_path):
        clear_process_caches()
        store = ReportStore(tmp_path / "store")
        sweep_grid(small_suite(), y_values=Y_VALUES, max_workers=1,
                   store=store)

        clear_process_caches()
        resumed = sweep_grid(small_suite(), y_values=Y_VALUES, max_workers=1,
                             store=ReportStore(tmp_path / "store"),
                             resume=True)
        assert resumed.schedule.computed == 0
        assert resumed.schedule.store_hits == 6

    def test_resume_requires_store(self):
        with pytest.raises(ValueError, match="store"):
            sweep_grid(small_suite(), y_values=(0.10,), resume=True)

    def test_store_used_without_mutating_caller_scheduler(self, tmp_path):
        clear_process_caches()
        scheduler = EvaluationScheduler(max_workers=1)
        store = ReportStore(tmp_path / "store")
        sweep_grid(small_suite(), y_values=(0.10,), scheduler=scheduler,
                   store=store)
        # The store was honored for this call, but the caller's scheduler
        # was not permanently repointed at it.
        assert store.stats().entries == 3
        assert scheduler.store is None


class TestOverwriteGuard:
    def test_write_json_refuses_existing_path(self, tmp_path):
        clear_process_caches()
        result = sweep_grid(small_suite(), y_values=(0.10,), max_workers=1,
                            workloads=["tiny-fem"])
        path = result.write_json(tmp_path / "sweep.json")
        with pytest.raises(FileExistsError, match="--force"):
            result.write_json(path)
        with pytest.raises(FileExistsError, match="--force"):
            result.write_csv(path)
        result.write_json(path, force=True)  # explicit overwrite works

    def test_cli_sweep_refuses_then_forces(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["sweep", "--suite", "quick", "--y", "0.1", "--workers", "1",
                "--workloads", "tiny-fem", "--output-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 2  # refuses before evaluating anything
        assert "--force" in capsys.readouterr().err
        assert main(argv + ["--force"]) == 0

    def test_cli_resume_requires_store(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--suite", "quick", "--resume",
                     "--no-artifacts"]) == 2
        assert "--resume requires --store" in capsys.readouterr().err

    def test_cli_sweep_store_resume_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        argv = ["sweep", "--suite", "quick", "--y", "0.05,0.1",
                "--workers", "1", "--output-dir", str(tmp_path),
                "--store", store_dir]
        clear_process_caches()
        assert main(argv) == 0
        first = (tmp_path / "sweep.json").read_bytes()

        clear_process_caches()
        assert main(argv + ["--resume"]) == 0
        err = capsys.readouterr().err
        assert "resumed from the store" in err
        assert (tmp_path / "sweep.json").read_bytes() == first

    def test_sweep_json_deterministic_payload(self, tmp_path):
        clear_process_caches()
        result = sweep_grid(small_suite(), y_values=(0.10,), max_workers=1)
        payload = json.loads(
            result.write_json(tmp_path / "sweep.json").read_text())
        assert "schedule" not in payload
        assert result.schedule.computed >= 0  # still available in-process
