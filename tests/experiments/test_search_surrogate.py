"""Surrogate-guided search: golden brute-force equality, constraints,
warm-started re-search.

The golden grid below is one of the validated benchmark grids: surrogate
ranking reproduces the brute-force frontier exactly while evaluating far
fewer configurations.  That equality is an empirical, grid-level property
(the landscape's plateau ties make it impossible to guarantee for free) —
which is exactly why it is pinned here.
"""

import itertools
import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import clear_process_caches
from repro.experiments.search import search_frontier
from repro.experiments.store import ReportStore
from repro.experiments.surrogate import parse_constraint, pe_area_words
from repro.accelerator.config import scaled_default_config
from repro.tensor.suite import small_suite

#: The golden grid: large enough to train + verify the surrogate, validated
#: to reproduce the brute-force frontier exactly.
GOLDEN_GRID = dict(kernels=("gram",), y_values=(0.02, 0.05, 0.10, 0.22),
                   glb_scales=(0.4, 0.7, 1.0, 1.5), pe_scales=(0.5, 1.0, 2.0),
                   max_generations=3, max_evaluations=100000, max_workers=1)


def _frontier_signature(result):
    """Per-group frontier as comparable (config, objectives) sets."""
    groups = {(p.kernel, p.workload) for p in result.points}
    return {key: {(p.config, p.objectives)
                  for p in result.frontier_for(*key)}
            for key in sorted(groups)}


def _evaluated_configs(result):
    return sum(stats.evaluated_configs for stats in result.generations)


@pytest.fixture(scope="module")
def golden_pair():
    clear_process_caches()
    brute = search_frontier(small_suite(), use_surrogate=False, **GOLDEN_GRID)
    surrogate = search_frontier(small_suite(), **GOLDEN_GRID)
    return brute, surrogate


class TestGoldenEquality:
    def test_frontier_identical_to_brute_force(self, golden_pair):
        brute, surrogate = golden_pair
        assert _frontier_signature(surrogate) == _frontier_signature(brute)

    def test_surrogate_evaluates_fewer_configs(self, golden_pair):
        brute, surrogate = golden_pair
        assert _evaluated_configs(surrogate) < _evaluated_configs(brute)
        assert sum(s.pruned_configs for s in surrogate.generations) > 0

    def test_frontier_points_were_exactly_evaluated(self, golden_pair):
        """Every frontier point is an element of the evaluated point set —
        the surrogate never reports a predicted-only point."""
        _, surrogate = golden_pair
        evaluated = {id(point) for point in surrogate.points}
        assert all(id(point) in evaluated for point in surrogate.frontier)

    def test_brute_force_flag_recorded_in_result(self, golden_pair):
        brute, surrogate = golden_pair
        assert brute.use_surrogate is False
        assert surrogate.use_surrogate is True
        assert brute.to_jsonable()["use_surrogate"] is False

    def test_generation_stats_expose_ranking(self, golden_pair):
        _, surrogate = golden_pair
        ranked = [s for s in surrogate.generations if s.pruned_configs]
        assert ranked, "at least one generation must have pruned"
        for stats in surrogate.generations:
            assert stats.evaluated_configs + stats.pruned_configs \
                == stats.candidates


class TestConstraints:
    @settings(max_examples=8, deadline=None)
    @given(traffic_scale=st.floats(min_value=0.3, max_value=2.0),
           energy_scale=st.floats(min_value=0.3, max_value=2.0))
    def test_frontier_points_satisfy_constraints(self, traffic_scale,
                                                 energy_scale):
        """Whatever the bounds, reported frontier points never violate them.

        The bounds are scaled off a reference frontier so the generated
        constraints straddle the feasible/infeasible boundary instead of
        all being trivially loose or empty.
        """
        reference = search_frontier(
            small_suite(), kernels=("gram",), y_values=(0.05, 0.22),
            glb_scales=(0.5, 1.0), pe_scales=(1.0,), max_generations=2,
            max_workers=1)
        traffic_bound = traffic_scale * max(
            p.dram_words for p in reference.frontier)
        energy_bound = energy_scale * max(
            p.energy_pj for p in reference.frontier)
        constraints = [f"traffic<={traffic_bound:.6g}",
                       f"energy<={energy_bound:.6g}"]
        # Assert against what the search actually parsed: %.6g rounds.
        traffic_bound = parse_constraint(constraints[0]).bound
        energy_bound = parse_constraint(constraints[1]).bound
        result = search_frontier(
            small_suite(), kernels=("gram",), y_values=(0.05, 0.22),
            glb_scales=(0.5, 1.0), pe_scales=(1.0,), max_generations=2,
            max_workers=1, constraints=constraints)
        assert result.constraints == [
            parse_constraint(text).label for text in constraints]
        for point in result.frontier:
            assert point.dram_words <= traffic_bound
            assert point.energy_pj <= energy_bound

    def test_pe_area_constraint_prefilters_candidates(self):
        unconstrained = search_frontier(
            small_suite(), kernels=("gram",), y_values=(0.05, 0.22),
            glb_scales=(0.5, 1.0), pe_scales=(0.5, 1.0, 2.0),
            max_generations=1, max_workers=1)
        base = scaled_default_config()
        # A bound that admits pe_scale <= 1.0 but rejects 2.0.
        bound = pe_area_words(base) * 1.5
        constrained = search_frontier(
            small_suite(), kernels=("gram",), y_values=(0.05, 0.22),
            glb_scales=(0.5, 1.0), pe_scales=(0.5, 1.0, 2.0),
            max_generations=1, max_workers=1,
            constraints=[f"pe_area<={bound:g}"])
        assert _evaluated_configs(constrained) < _evaluated_configs(unconstrained)
        assert all(p.config.pe_scale <= 1.0 for p in constrained.points)

    def test_unsatisfiable_constraint_empties_the_frontier(self):
        result = search_frontier(
            small_suite(), kernels=("gram",), y_values=(0.05, 0.22),
            glb_scales=(0.5, 1.0), pe_scales=(1.0,), max_generations=2,
            max_workers=1, constraints=["traffic<=1"])
        assert result.frontier == []
        assert len(result.points) > 0  # evaluations still happened + reported


class TestWarmResearch:
    @settings(max_examples=4, deadline=None)
    @given(y_values=st.sampled_from([(0.05, 0.22), (0.02, 0.10, 0.22)]),
           use_surrogate=st.booleans())
    def test_covered_store_recomputes_nothing_and_matches_bytes(
            self, y_values, use_surrogate):
        """A re-search over a fully covered store computes zero new exact
        evaluations and reproduces the cold run byte-for-byte."""
        grid = dict(kernels=("gram",), y_values=y_values,
                    glb_scales=(0.5, 1.0), pe_scales=(0.5, 1.0),
                    max_generations=2, max_workers=1,
                    use_surrogate=use_surrogate)
        with tempfile.TemporaryDirectory() as tmp:
            store = ReportStore(Path(tmp) / "store")
            clear_process_caches()
            cold = search_frontier(small_suite(), store=store, **grid)
            clear_process_caches()  # drop the in-process memo: store only
            warm = search_frontier(small_suite(), store=store, **grid)
        assert all(s.schedule.computed == 0 for s in warm.generations)
        assert sum(s.schedule.store_hits for s in warm.generations) > 0
        assert json.dumps(cold.to_jsonable(), sort_keys=True) \
            == json.dumps(warm.to_jsonable(), sort_keys=True)
