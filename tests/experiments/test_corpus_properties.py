"""Property tests: corpus suite streams are stable under subset/reorder.

Paired operands (the ``b`` side of spmspm/spmm) derive from per-workload
streams keyed by each workload's position in the *parent* suite, so any
subset, in any order, must reproduce the parent's matrices and paired
operands bit for bit — otherwise two sweeps over overlapping corpus slices
would disagree about the same matrix.
"""

from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.tensor import corpus
from repro.tensor.corpus import corpus_workload_suite

FIXTURES = Path(__file__).resolve().parents[1] / "data" / "corpus"
MANIFEST = FIXTURES / "manifest.json"

ALL_FIXTURE_IDS = (
    "dlmc:fixture/magnitude-080",
    "dlmc:fixture/random-050",
    "suitesparse:fixture/fem-band",
    "suitesparse:fixture/powerlaw-graph",
    "suitesparse:fixture/cant-mini",
)

_PROPERTY_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module", autouse=True)
def _hermetic_corpus_env(tmp_path_factory):
    with pytest.MonkeyPatch.context() as patcher:
        patcher.setenv(corpus.ENV_CACHE,
                       str(tmp_path_factory.mktemp("corpus-cache")))
        patcher.setenv(corpus.ENV_OFFLINE, "1")
        yield


def _subset_ids():
    """A non-empty slice of the fixture IDs in a random order."""
    return st.permutations(list(ALL_FIXTURE_IDS)).flatmap(
        lambda ids: st.integers(1, len(ids)).map(lambda k: ids[:k]))


@_PROPERTY_SETTINGS
@given(ids=_subset_ids())
def test_subset_and_reorder_preserve_matrices_and_streams(ids):
    parent = corpus_workload_suite(list(ALL_FIXTURE_IDS), manifest=MANIFEST)
    names = [matrix_id.rsplit("/", 1)[-1] for matrix_id in ids]
    subset = parent.subset(names)
    assert subset.names == names
    for name in names:
        assert (subset.matrix(name).csr != parent.matrix(name).csr).nnz == 0
        assert (subset.paired_matrix(name).csr !=
                parent.paired_matrix(name).csr).nnz == 0


@_PROPERTY_SETTINGS
@given(ids=_subset_ids())
def test_directly_built_subsuite_matches_the_parent_slice(ids):
    """Building a fresh suite from a subset of IDs reproduces the primary
    matrices exactly (they come from disk, not from stream position)."""
    parent = corpus_workload_suite(list(ALL_FIXTURE_IDS), manifest=MANIFEST)
    fresh = corpus_workload_suite(list(ids), manifest=MANIFEST)
    for matrix_id in ids:
        name = matrix_id.rsplit("/", 1)[-1]
        assert (fresh.matrix(name).csr != parent.matrix(name).csr).nnz == 0
