"""Synth suites through the parallel scheduler: bit-identical to serial.

The differential guarantee behind the ``("synth", ...)`` suite tokens: a
worker process that regenerates the suite from ``(model, params, seed)``
identities must produce *exactly* the reports the serial in-process path
produces — not approximately equal, the same floats — for every kernel of
the family.  Evaluation is deterministic end to end and pickling float64
values is exact, so any drift here means a worker rebuilt different inputs.
"""

import pytest

from repro.experiments.runner import ExperimentContext, clear_process_caches
from repro.experiments.scheduler import EvaluationScheduler, requests_for_context
from repro.experiments.sweep import sweep_grid
from repro.tensor.kernels import kernel_names
from repro.tensor.suite import synth_suite

#: Small instances of three structure classes: enough workloads to fan out,
#: cheap enough to evaluate under every kernel twice.
SPECS = (
    "uniform:n=220,nnz=1600",
    "power_law_rows:n=240,nnz=1800,alpha=1.8",
    "density_gradient:n=200,nnz=1500,gamma=2.5",
)


def _report_values(report):
    return {
        "bound": report.bound,
        "bumped_fraction": report.bumped_fraction,
        "cycles": report.cycles,
        "dram_total_words": report.traffic.dram.total_words,
        "effectual_multiplies": report.effectual_multiplies,
        "energy_total_pj": report.energy.total_pj,
        "glb_overbooking_rate": report.glb_overbooking_rate,
        "glb_total_words": report.traffic.global_buffer.total_words,
        "output_nonzeros": report.output_nonzeros,
        "tiling_tax_elements": report.tiling_tax_elements,
    }


def _all_kernel_reports(max_workers):
    """Evaluate SPECS under every kernel, cold, with the given worker count."""
    clear_process_caches()
    suite = synth_suite(SPECS)
    base = ExperimentContext(suite=suite, kernel="gram")
    contexts = {kernel: base.with_kernel(kernel) for kernel in kernel_names()}
    requests = [request for ctx in contexts.values()
                for request in requests_for_context(ctx)]
    stats = EvaluationScheduler(
        max_workers=max_workers, min_parallel_requests=1).prefetch(requests)
    reports = {
        (kernel, name): ctx.reports(name)
        for kernel, ctx in contexts.items() for name in ctx.workload_names
    }
    return stats, reports


class TestSynthParallelBitIdentical:
    def test_two_workers_match_serial_exactly_across_all_kernels(self):
        serial_stats, serial = _all_kernel_reports(max_workers=1)
        parallel_stats, parallel = _all_kernel_reports(max_workers=2)

        expected = len(kernel_names()) * len(SPECS)
        assert serial_stats.computed == expected
        assert parallel_stats.computed == expected
        assert parallel_stats.workers == 2

        assert sorted(parallel) == sorted(serial)
        for key, per_variant in serial.items():
            assert sorted(parallel[key]) == sorted(per_variant)
            for variant, report in per_variant.items():
                serial_values = _report_values(report)
                parallel_values = _report_values(parallel[key][variant])
                # Bit-identical, not approximately equal: == on every float.
                assert parallel_values == serial_values, (key, variant)

    def test_worker_rebuilt_requests_are_memo_hits_afterwards(self):
        _, _ = _all_kernel_reports(max_workers=2)
        suite = synth_suite(SPECS)
        context = ExperimentContext(suite=suite)
        stats = EvaluationScheduler(max_workers=2, min_parallel_requests=1) \
            .prefetch_context(context)
        assert stats.computed == 0
        assert stats.warm == len(SPECS)


class TestSynthSweepParallel:
    def test_sweep_over_synth_axis_matches_serial(self):
        grid = dict(y_values=(0.05, 0.10), kernels=("gram", "spmv"),
                    synth=SPECS)

        clear_process_caches()
        serial = sweep_grid(max_workers=1, **grid)
        clear_process_caches()
        parallel = sweep_grid(max_workers=2, scheduler=EvaluationScheduler(
            max_workers=2, min_parallel_requests=1), **grid)

        assert [r.workload for r in parallel.rows] == \
            [r.workload for r in serial.rows]
        for left, right in zip(serial.rows, parallel.rows):
            assert left == right  # dataclass equality: every float identical

    def test_sweep_rows_carry_model_columns(self):
        result = sweep_grid(synth=SPECS, y_values=(0.10,), max_workers=1)
        models = {row.model for row in result.rows}
        assert models == {"uniform", "power_law_rows", "density_gradient"}
        for row in result.rows:
            assert "n=" in row.model_params

    def test_suite_and_synth_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="exactly one of"):
            sweep_grid(synth_suite(SPECS), synth=SPECS)
        with pytest.raises(ValueError, match="needs a suite"):
            sweep_grid()
