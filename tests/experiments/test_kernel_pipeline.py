"""The kernel axis end to end: contexts, scheduler, sweep, table3, CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.experiments import registry
from repro.experiments.runner import ExperimentContext, clear_process_caches
from repro.experiments.scheduler import (
    EvaluationScheduler,
    requests_for_context,
)
from repro.experiments.sweep import sweep_grid
from repro.tensor.io import write_matrix_market
from repro.tensor.kernels import kernel_names
from repro.tensor.suite import corpus_suite, small_suite, suite_from_token

NON_GRAM = ("spmspm", "spmm", "spmv", "sddmm")


def _headline(report):
    return (report.bound, report.cycles, report.energy.total_pj,
            report.traffic.dram.total_words,
            report.traffic.global_buffer.total_words,
            report.effectual_multiplies, report.output_nonzeros)


class TestKernelContexts:
    @pytest.mark.parametrize("kernel", NON_GRAM)
    def test_every_kernel_evaluates_end_to_end(self, kernel):
        context = ExperimentContext.quick(kernel=kernel)
        reports = context.reports("tiny-social")
        assert sorted(reports) == sorted(
            [context.naive_name, context.prescient_name,
             context.overbooking_name])
        for report in reports.values():
            assert report.kernel == kernel
            assert report.cycles > 0
            assert report.effectual_multiplies > 0

    def test_unknown_kernel_rejected_eagerly(self):
        with pytest.raises(KeyError, match="spmm"):
            ExperimentContext.quick(kernel="nonesuch")

    def test_with_kernel_shares_suite_and_matrices(self):
        base = ExperimentContext.quick()
        derived = base.with_kernel("spmm")
        assert derived.suite is base.suite
        assert derived.matrix("tiny-fem") is base.matrix("tiny-fem")
        assert derived.kernel == "spmm"

    def test_kernels_share_primary_matrix_but_differ(self):
        base = ExperimentContext.quick()
        gram = base.workload("tiny-fem")
        spmm = base.with_kernel("spmm").workload("tiny-fem")
        assert spmm.a is gram.a  # same stationary operand
        assert spmm.effectual_multiplies != gram.effectual_multiplies

    def test_memo_keys_differ_per_kernel(self):
        base = ExperimentContext.quick()
        assert base.memo_key("tiny-fem") != \
            base.with_kernel("spmv").memo_key("tiny-fem")

    def test_gram_descriptor_unchanged(self):
        context = ExperimentContext.quick()
        workload = context.workload("tiny-fem")
        assert workload.kernel == "gram"
        assert workload.b.csr.shape == workload.a.csr.shape[::-1]
        assert workload.matmul is workload.workload  # back-compat alias


class TestSchedulerKernelAxis:
    def test_parallel_matches_serial_for_spmm(self):
        """Acceptance criterion: non-Gram parallel reports == serial."""
        clear_process_caches()
        serial = ExperimentContext.quick(kernel="spmm").all_reports()

        clear_process_caches()
        context = ExperimentContext.quick(kernel="spmm")
        stats = EvaluationScheduler(max_workers=2, min_parallel_requests=1) \
            .prefetch_context(context)
        assert stats.computed == 3 and stats.workers == 2
        parallel = context.all_reports()

        for workload, per_variant in serial.items():
            for variant, expected in per_variant.items():
                assert _headline(parallel[workload][variant]) == \
                    _headline(expected), f"{workload}/{variant}"

    def test_requests_carry_the_context_kernel(self):
        context = ExperimentContext.quick(kernel="sddmm")
        requests = requests_for_context(context)
        assert {r.kernel for r in requests} == {"sddmm"}
        assert all(r.memo_key == context.memo_key(r.workload)
                   for r in requests)

    def test_three_tuple_targets_override_kernel(self):
        context = ExperimentContext.quick()
        requests = requests_for_context(
            context, targets=[(0.1, "tiny-fem", "spmv"), (0.1, "tiny-fem")])
        assert [r.kernel for r in requests] == ["spmv", "gram"]

    def test_dense_factors_identical_across_rebuilt_suites(self):
        # What makes worker-side rebuilds bit-identical: the kernel rng is a
        # pure function of the suite token.
        suite = small_suite()
        rebuilt = suite_from_token(suite.cache_token)
        a = suite.kernel_rng("tiny-fem", 101).uniform(size=8)
        b = rebuilt.kernel_rng("tiny-fem", 101).uniform(size=8)
        np.testing.assert_array_equal(a, b)
        pair_a = suite.paired_matrix("tiny-social")
        pair_b = rebuilt.paired_matrix("tiny-social")
        assert (pair_a.csr != pair_b.csr).nnz == 0


class TestSweepKernelAxis:
    def test_kernel_dimension_in_rows_and_csv(self, tmp_path):
        result = sweep_grid(small_suite(), y_values=(0.10,),
                            kernels=("gram", "spmv"), max_workers=1,
                            workloads=["tiny-fem"])
        assert [p.kernel for p in result.points] == ["gram", "spmv"]
        assert {row.kernel for row in result.rows} == {"gram", "spmv"}
        assert result.summary_at(0.10, kernel="spmv") is not None

        csv_path = result.write_csv(tmp_path / "sweep.csv")
        header, *body = csv_path.read_text().splitlines()
        assert "kernel" in header.split(",")
        assert any(",spmv," in line for line in body)

        payload = result.to_jsonable()
        assert payload["points"][1]["kernel"] == "spmv"

    def test_empty_kernels_rejected(self):
        with pytest.raises(ValueError, match="kernels"):
            sweep_grid(small_suite(), kernels=(), max_workers=1)


class TestTable3:
    def test_rows_cover_requested_kernels(self):
        experiment = registry.get("table3")
        result = experiment.run(ExperimentContext.quick(),
                                kernels=("gram", "spmm"))
        assert [row.kernel for row in result.rows] == ["gram", "spmm"]
        for row in result.rows:
            assert row.geomean_speedup_ob_vs_naive > 0
        text = experiment.format_result(result)
        assert "spmm" in text and "OB/N speedup" in text
        json.dumps(experiment.to_json(result))

    def test_announces_cross_kernel_targets(self):
        context = ExperimentContext.quick()
        targets = registry.get("table3").evaluation_targets(
            context, kernels=("gram", "spmv"))
        kernels = {t[2] for t in targets}
        assert kernels == {"gram", "spmv"}
        assert len(targets) == 2 * len(context.workload_names)

    def test_default_covers_whole_family(self):
        context = ExperimentContext.quick()
        targets = registry.get("table3").evaluation_targets(context)
        assert {t[2] for t in targets} == set(kernel_names())


class TestCliKernelAxis:
    def test_list_renders_kernel_column(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kernels" in out
        assert "table3" in out
        assert "any" in out

    def test_run_with_kernel_flag(self, tmp_path, capsys):
        code = main(["run", "fig7", "--suite", "quick", "--kernel", "spmv",
                     "--workers", "1", "--output-dir", str(tmp_path)])
        assert code == 0
        payload = json.loads((tmp_path / "fig7.json").read_text())
        assert payload["kernel"] == "spmv"

    def test_run_rejects_unknown_kernel(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig7", "--kernel", "bogus", "--no-artifacts"])

    def test_sweep_kernel_grid(self, tmp_path):
        code = main(["sweep", "--suite", "quick", "--y", "0.1",
                     "--kernel", "gram,spmv", "--workloads", "tiny-fem",
                     "--workers", "1", "--output-dir", str(tmp_path)])
        assert code == 0
        payload = json.loads((tmp_path / "sweep.json").read_text())
        assert len(payload["summaries"]) == 2
        csv_header = (tmp_path / "sweep.csv").read_text().splitlines()[0]
        assert "kernel" in csv_header.split(",")

    def test_sweep_rejects_unknown_kernel(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--kernel", "gram,bogus"])
        assert "known" in capsys.readouterr().err


class TestCliMatrixCorpus:
    @pytest.fixture
    def corpus(self, tmp_path, test_suite):
        paths = []
        for name in ("tiny-fem", "tiny-social"):
            path = tmp_path / f"{name}.mtx.gz"
            write_matrix_market(test_suite.matrix(name), path)
            paths.append(path)
        return paths

    def test_corpus_suite_round_trips_through_gzip(self, corpus, test_suite):
        suite = corpus_suite(corpus)
        assert suite.names == ["tiny-fem", "tiny-social"]
        for name in suite.names:
            assert (suite.matrix(name).csr != test_suite.matrix(name).csr).nnz == 0

    def test_corpus_token_rebuilds_suite(self, corpus):
        suite = corpus_suite(corpus)
        token = suite.cache_token
        assert token is not None
        rebuilt = suite_from_token(token)
        assert rebuilt.names == suite.names
        matrix = suite.matrix("tiny-fem")
        assert (rebuilt.matrix("tiny-fem").csr != matrix.csr).nnz == 0

    def test_run_with_matrix_flag(self, corpus, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        code = main(["run", "fig7", "--matrix", str(corpus[0]),
                     "--matrix", str(corpus[1]), "--workers", "1",
                     "--output-dir", str(out_dir)])
        assert code == 0
        payload = json.loads((out_dir / "fig7.json").read_text())
        assert payload["suite"] == "corpus"
        workloads = [row["workload"] for row in payload["result"]["rows"]]
        assert workloads == ["tiny-fem", "tiny-social"]

    def test_sweep_with_matrix_flag(self, corpus, tmp_path):
        out_dir = tmp_path / "artifacts"
        code = main(["sweep", "--matrix", str(corpus[0]), "--y", "0.1",
                     "--workers", "1", "--output-dir", str(out_dir)])
        assert code == 0
        payload = json.loads((out_dir / "sweep.json").read_text())
        assert payload["suite_workloads"] == ["tiny-fem"]

    def test_corpus_paired_operand_is_distinct(self, corpus):
        # The spmspm kernel on a corpus must not silently evaluate A x A:
        # the paired operand is a permuted transpose — same nnz, distinct.
        suite = corpus_suite(corpus)
        primary = suite.matrix("tiny-fem")
        pair = suite.paired_matrix("tiny-fem")
        assert pair.nnz == primary.nnz
        assert pair != primary
        context = ExperimentContext(suite=suite, kernel="spmspm")
        workload = context.workload("tiny-fem")
        assert workload.b is pair
        assert workload.effectual_multiplies > 0

    def test_rectangular_corpus_spmspm_composes(self, tmp_path):
        from repro.tensor.generators import uniform_random_matrix

        rect = uniform_random_matrix(40, 25, 200, rng=3, name="rect")
        path = tmp_path / "rect.mtx"
        write_matrix_market(rect, path)
        suite = corpus_suite([path])
        context = ExperimentContext(suite=suite, kernel="spmspm")
        workload = context.workload("rect")
        assert workload.a.csr.shape == (40, 25)
        assert workload.b.csr.shape == (25, 40)  # permuted transpose
        reports = context.reports("rect")
        assert all(r.cycles > 0 for r in reports.values())

    def test_symmetric_corpus_sparsity_accounts_for_mirroring(self, tmp_path):
        from repro.tensor.suite import WorkloadSpec

        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "4 4 3\n"
            "2 1 5.0\n"
            "3 1 2.0\n"
            "4 4 7.0\n"
        )
        spec = WorkloadSpec.from_matrix_market(path)
        # 3 stored entries, 2 off-diagonal -> 5 loaded nonzeros; the metadata
        # hint uses the 2x upper bound (6/16), not the stored count (3/16).
        assert spec.paper_sparsity == pytest.approx(1.0 - 6 / 16)

    def test_gram_only_experiment_kernel_labeled_honestly(self, tmp_path,
                                                          capsys):
        out_dir = tmp_path / "artifacts"
        code = main(["run", "fig1", "--suite", "quick", "--kernel", "spmv",
                     "--workers", "1", "--output-dir", str(out_dir)])
        assert code == 0
        assert "does not apply" in capsys.readouterr().err
        payload = json.loads((out_dir / "fig1.json").read_text())
        assert payload["kernel"] == "gram"  # what the results actually model
