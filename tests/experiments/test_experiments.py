"""Smoke and consistency tests for the experiment harness (quick context)."""

import pytest

from repro.experiments import ExperimentContext
from repro.experiments import fig1, fig5, fig7, fig8, fig9, fig10, fig11, fig12, fig13
from repro.experiments import table1, table2


@pytest.fixture(scope="module")
def quick_context():
    return ExperimentContext.quick()


class TestContext:
    def test_quick_has_three_workloads(self, quick_context):
        assert len(quick_context.workload_names) == 3

    def test_reports_cached(self, quick_context):
        first = quick_context.reports("tiny-fem")
        assert quick_context.reports("tiny-fem") is first

    def test_variant_names(self, quick_context):
        assert quick_context.naive_name == "ExTensor-N"
        assert quick_context.overbooking_name == "ExTensor-OB"


class TestTableExperiments:
    def test_table1_rows_and_format(self, quick_context):
        result = table1.run(quick_context)
        assert len(result.rows) == 4
        text = table1.format_result(result)
        assert "uniform shape" in text and "overbooking" in text

    def test_table2_rows_and_format(self, quick_context):
        result = table2.run(quick_context)
        assert len(result.rows) == 3
        assert "Table 2" in table2.format_result(result)


class TestFigureExperiments:
    def test_fig1(self, quick_context):
        result = fig1.run(quick_context)
        assert result.max_occupancy <= result.tile_size
        assert "histogram" in fig1.format_result(result)

    def test_fig5(self):
        result = fig5.run()
        assert result.fetch_savings > 1.0
        assert "OWFill" in fig5.format_result(result)

    def test_fig7(self, quick_context):
        result = fig7.run(quick_context)
        assert len(result.rows) == 3
        assert result.geomean_prescient > 0
        assert "geomean" in fig7.format_result(result)

    def test_fig8(self, quick_context):
        result = fig8.run(quick_context)
        assert result.geomean_overbooking > 0
        assert "Fig. 8" in fig8.format_result(result)

    def test_fig9(self, quick_context):
        result = fig9.run(quick_context)
        assert all(0.0 <= r.overhead_fraction for r in result.rows)
        fig9.format_result(result)

    def test_fig10_small_sweep(self, quick_context):
        result = fig10.run(quick_context, y_values=(0.0, 0.1, 1.0),
                           workloads=["tiny-fem"])
        assert len(result.speedups) == 3
        assert result.best_y in (0.0, 0.1, 1.0)
        with pytest.raises(KeyError):
            result.speedup_at(0.33)

    def test_fig11(self, quick_context):
        result = fig11.run(quick_context, capacity=256)
        assert len(result.rows) == 3
        assert 0 <= result.mae_swiftiles <= 1.0

    def test_fig12(self, quick_context):
        result = fig12.run(quick_context, k_values=(0, 2, 5), capacity=256)
        assert result.k_values == [0, 2, 5]
        assert all(0 <= mae <= 1 for mae in result.mae_values)

    def test_fig13(self, quick_context):
        result = fig13.run(quick_context, workload="tiny-fem", buffer_capacity=512)
        assert result.predicted_quantile == pytest.approx(512, rel=0.05)
        fig13.format_result(result)
