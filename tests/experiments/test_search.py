"""Pareto design-space search: domination logic, golden quick-grid frontier."""

import itertools
import json

import pytest

from repro.experiments import registry
from repro.experiments.runner import ExperimentContext, clear_process_caches
from repro.experiments.search import (
    DesignConfig,
    dominates,
    format_frontier,
    pareto_frontier,
    search_frontier,
)
from repro.experiments.store import ReportStore
from repro.tensor.suite import small_suite

#: The quick grid the golden assertions run on: small and fully enumerable.
QUICK_GRID = dict(kernels=("gram",), y_values=(0.05, 0.22),
                  glb_scales=(0.5, 1.0), pe_scales=(1.0,))


@pytest.fixture(scope="module")
def quick_frontier():
    clear_process_caches()
    return search_frontier(small_suite(), max_generations=2, max_workers=1,
                           **QUICK_GRID)


class TestDomination:
    def test_dominates_requires_strict_improvement(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (2.0, 2.0))
        assert not dominates((1.0, 1.0), (1.0, 1.0))  # equal: no
        assert not dominates((1.0, 3.0), (2.0, 2.0))  # trade-off: no
        assert not dominates((2.0, 2.0), (1.0, 1.0))

    def test_pareto_frontier_brute_force_equivalence(self, quick_frontier):
        """The search's frontier == an independent brute-force filter."""
        for kernel, workload in {(p.kernel, p.workload)
                                 for p in quick_frontier.points}:
            group = [p for p in quick_frontier.points
                     if p.kernel == kernel and p.workload == workload]
            # Independent O(n^2) re-derivation, written the dumb way.
            expected = []
            for candidate in group:
                beaten = any(
                    (o.dram_words <= candidate.dram_words
                     and o.energy_pj <= candidate.energy_pj
                     and (o.dram_words < candidate.dram_words
                          or o.energy_pj < candidate.energy_pj))
                    for o in group)
                if not beaten and candidate.objectives not in {
                        e.objectives for e in expected}:
                    expected.append(candidate)
            got = quick_frontier.frontier_for(kernel, workload)
            assert {(p.config, p.objectives) for p in got} == \
                {(p.config, p.objectives) for p in expected}


class TestSearchFrontier:
    def test_generation_zero_covers_seed_grid(self, quick_frontier):
        seed_cells = [DesignConfig(y, glb, pe) for y, glb, pe
                      in itertools.product((0.05, 0.22), (0.5, 1.0), (1.0,))]
        gen0 = {p.config for p in quick_frontier.points if p.generation == 0}
        assert gen0 == set(seed_cells)

    def test_refinement_only_expands_around_survivors(self, quick_frontier):
        gen1 = {p.config for p in quick_frontier.points if p.generation == 1}
        # Midpoint refinement: every generation-1 axis value is either a
        # seed value or the midpoint of two adjacent seed values.
        y_allowed = {0.05, 0.22, (0.05 + 0.22) / 2}
        glb_allowed = {0.5, 1.0, 0.75}
        pe_allowed = {1.0}  # single seed value: nothing to refine toward
        for config in gen1:
            assert config.overbooking_target in y_allowed, config
            assert config.glb_scale in glb_allowed, config
            assert config.pe_scale in pe_allowed, config
        assert {p.config for p in quick_frontier.frontier}  # survivors exist

    def test_deterministic_across_runs(self, quick_frontier):
        clear_process_caches()
        again = search_frontier(small_suite(), max_generations=2,
                                max_workers=1, **QUICK_GRID)
        assert again.points == quick_frontier.points
        assert again.frontier == quick_frontier.frontier
        assert json.dumps(again.to_jsonable()) == \
            json.dumps(quick_frontier.to_jsonable())

    def test_golden_quick_grid_frontier_shape(self, quick_frontier):
        """Golden facts of the quick grid that should survive refactors."""
        # One frontier entry set per (kernel, workload) group, every group
        # non-empty, and every frontier point actually evaluated.
        for workload in quick_frontier.workloads:
            group = quick_frontier.frontier_for("gram", workload)
            assert group, workload
            for point in group:
                assert point in quick_frontier.points
        # The frontier never contains a dominated point (the acceptance
        # criterion: a verified non-dominated set).
        for point in quick_frontier.frontier:
            rivals = [p for p in quick_frontier.points
                      if (p.kernel, p.workload) == (point.kernel, point.workload)]
            assert not any(dominates(r.objectives, point.objectives)
                           for r in rivals)

    def test_max_generations_one_is_plain_grid(self):
        clear_process_caches()
        result = search_frontier(small_suite(), max_generations=1,
                                 max_workers=1, **QUICK_GRID)
        assert [g.generation for g in result.generations] == [0]
        assert len(result.points) == 4 * 3  # 4 configs x 3 workloads

    def test_store_makes_search_resumable(self, tmp_path):
        clear_process_caches()
        store = ReportStore(tmp_path / "store")
        first = search_frontier(small_suite(), max_generations=2,
                                max_workers=1, store=store, **QUICK_GRID)
        clear_process_caches()
        rerun = search_frontier(small_suite(), max_generations=2,
                                max_workers=1,
                                store=ReportStore(tmp_path / "store"),
                                **QUICK_GRID)
        assert all(g.schedule.computed == 0 for g in rerun.generations)
        assert sum(g.schedule.store_hits for g in rerun.generations) > 0
        assert rerun.points == first.points

    def test_rejects_empty_axes_and_suiteless_calls(self):
        with pytest.raises(ValueError, match="axis"):
            search_frontier(small_suite(), y_values=())
        with pytest.raises(ValueError, match="suite"):
            search_frontier()
        with pytest.raises(ValueError, match="not both"):
            search_frontier(small_suite(), synth=["uniform"])

    def test_refined_axis_dedups_rounded_midpoints(self):
        """Midpoints that round onto an existing value (or inputs differing
        only below the rounding precision) collapse to one candidate —
        regression: near-duplicate axis values each cost an exact eval."""
        from repro.experiments.search import _refined_axis

        axis = _refined_axis([0.1, 0.1000000004, 0.2], survivors={0.1})
        assert axis == sorted(set(axis))
        assert axis == [0.1, 0.15, 0.2]
        # Survivor membership is decided after rounding too.
        assert _refined_axis([0.1, 0.2], survivors={0.1000000004}) \
            == [0.1, 0.15, 0.2]
        # Adjacent values whose midpoint rounds onto a neighbor: no dupe.
        close = _refined_axis([0.1, 0.100001, 0.2], survivors={0.1})
        assert close == sorted(set(close))

    def test_write_artifacts_and_overwrite_guard(self, quick_frontier,
                                                 tmp_path):
        json_path = quick_frontier.write_json(tmp_path / "frontier.json")
        csv_path = quick_frontier.write_csv(tmp_path / "frontier.csv")
        payload = json.loads(json_path.read_text())
        assert "generations" not in payload  # deterministic artifact
        assert len(payload["points"]) == len(quick_frontier.points)
        header, *rows = csv_path.read_text().splitlines()
        assert "on_frontier" in header
        assert sum(row.endswith(",1") for row in rows) == \
            len(quick_frontier.frontier)
        with pytest.raises(FileExistsError, match="force"):
            quick_frontier.write_json(json_path)
        quick_frontier.write_json(json_path, force=True)


class TestFig14Experiment:
    def test_registered_with_store_plumbing(self):
        experiment = registry.get("fig14")
        assert experiment.accepts_store is True
        assert experiment.accepts_max_workers is True
        assert experiment.store_scope == "reports"
        assert registry.get("fig5").store_scope == "none"

    def test_quick_run_produces_frontier(self):
        experiment = registry.get("fig14")
        result = experiment.run_quick(ExperimentContext.quick())
        assert result.frontier
        text = format_frontier(result)
        assert "Pareto frontier" in text
        payload = json.dumps(experiment.to_json(result))
        assert "dram_words" in payload

    def test_context_y_seeds_the_axis(self):
        from repro.experiments import fig14

        result = fig14.run(ExperimentContext.quick(overbooking_target=0.17),
                           specs=("uniform:n=200,nnz=1500",),
                           kernels=("gram",), y_values=(0.05,),
                           glb_scales=(1.0,), pe_scales=(1.0,),
                           max_generations=1, max_workers=1)
        swept_y = {p.config.overbooking_target for p in result.points}
        assert swept_y == {0.05, 0.17}
