"""Acceptance: kill -9 a real shard worker; the sweep still merges byte-exact.

The scenario the tentpole exists for, run end-to-end through the CLI in
subprocesses:

1. shard worker 1/2 is launched with ``REPRO_FAULTS=shard.kill=2`` and
   SIGKILLs itself right after *claiming* its second cell — mid-grid, lease
   held, result never stored (the worst-case crash);
2. shard worker 2/2 runs normally, finishes its own cells, observes the dead
   worker's frozen heartbeat, reclaims the orphaned lease after the TTL, and
   completes the grid;
3. rerunning the killed shard is a clean no-op (everything already stored);
4. ``merge`` assembles ``sweep.json``/``sweep.csv`` **byte-identical** to a
   serial ``sweep`` of the same grid.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
GRID = ["--suite", "quick", "--y", "0.05,0.10"]
LEASE_TTL = "0.5"
TIMEOUT = 120


def _run(args, cwd, *, env_extra=None, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAULTS", None)
    env.update(env_extra or {})
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=TIMEOUT)
    if check and completed.returncode != 0:
        raise AssertionError(
            f"`repro {' '.join(args)}` exited {completed.returncode}:\n"
            f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}")
    return completed


@pytest.fixture(scope="module")
def serial_artifacts(tmp_path_factory):
    """Reference bytes from a plain serial ``sweep`` of the same grid."""
    workdir = tmp_path_factory.mktemp("serial")
    _run(["sweep", *GRID, "--workers", "1", "--output-dir", "out"],
         cwd=workdir)
    return ((workdir / "out" / "sweep.json").read_bytes(),
            (workdir / "out" / "sweep.csv").read_bytes())


def test_killed_worker_is_survived_and_merge_is_byte_identical(
        tmp_path, serial_artifacts):
    store = tmp_path / "store"
    shard_flags = ["--store", str(store), "--lease-ttl", LEASE_TTL]

    # 1. Worker 1/2 SIGKILLs itself after claiming its 2nd cell.
    killed = _run(["sweep", *GRID, "--shard", "1/2", *shard_flags],
                  cwd=tmp_path, env_extra={"REPRO_FAULTS": "shard.kill=2"},
                  check=False)
    assert killed.returncode == -signal.SIGKILL
    # It died holding a lease: the orphaned lease file is still there, with
    # the heartbeat frozen at its initial value.
    leases = list((store / "leases").glob("*.json"))
    assert len(leases) == 1
    assert json.loads(leases[0].read_text())["heartbeat"] == 0

    # The grid must NOT be complete yet (the kill was mid-grid).
    incomplete = _run(["status", *GRID, "--store", str(store)],
                      cwd=tmp_path, check=False)
    assert incomplete.returncode == 1
    assert "missing" in incomplete.stdout

    # 2. The surviving worker completes the grid, reclaiming the orphan.
    survivor = _run(["sweep", *GRID, "--shard", "2/2", *shard_flags],
                    cwd=tmp_path)
    assert "reclaimed 1 expired lease" in survivor.stderr
    assert "grid complete in store" in survivor.stderr

    # 3. Rerunning the killed shard resumes into a clean no-op.
    rerun = _run(["sweep", *GRID, "--shard", "1/2", *shard_flags],
                 cwd=tmp_path)
    assert "evaluated 0 cell(s)" in rerun.stderr

    # Status now reports ready-to-merge (exit 0).
    complete = _run(["status", *GRID, "--store", str(store)], cwd=tmp_path)
    assert "ready to merge" in complete.stdout

    # 4. Merge: byte-identical to the serial sweep.
    _run(["merge", *GRID, "--store", str(store), "--output-dir", "merged"],
         cwd=tmp_path)
    serial_json, serial_csv = serial_artifacts
    assert (tmp_path / "merged" / "sweep.json").read_bytes() == serial_json
    assert (tmp_path / "merged" / "sweep.csv").read_bytes() == serial_csv

    # The store survived the whole drill with zero corruption.
    verify = _run(["store", "verify", "--store", str(store)], cwd=tmp_path)
    assert "quarantined  : 0" in verify.stdout


def test_merge_refuses_while_cells_are_missing(tmp_path):
    store = tmp_path / "store"
    _run(["sweep", *GRID, "--shard", "1/2", "--store", str(store),
          "--lease-ttl", LEASE_TTL], cwd=tmp_path,
         env_extra={"REPRO_FAULTS": "shard.kill=1"}, check=False)
    merge = _run(["merge", *GRID, "--store", str(store), "--no-artifacts"],
                 cwd=tmp_path, check=False)
    assert merge.returncode == 2
    assert "missing from the store" in merge.stderr


def test_transient_io_faults_leave_cli_artifact_bytes_unchanged(
        tmp_path, serial_artifacts):
    """The CI smoke drill, as a test: faults on, bytes identical anyway."""
    store = tmp_path / "store"
    _run(["sweep", *GRID, "--workers", "1", "--store", str(store),
          "--output-dir", "out"], cwd=tmp_path,
         env_extra={"REPRO_FAULTS": "store.load=2,store.store=2"})
    serial_json, serial_csv = serial_artifacts
    assert (tmp_path / "out" / "sweep.json").read_bytes() == serial_json
    assert (tmp_path / "out" / "sweep.csv").read_bytes() == serial_csv
