"""Design-space surrogate: constraint parsing, fit quality, trust model."""

import numpy as np
import pytest

from repro.experiments.search import DesignConfig
from repro.experiments.surrogate import (
    MIN_TRAIN_POINTS,
    SKIP_TOLERANCE,
    Constraint,
    DesignSurrogate,
    parse_constraint,
    pe_area_words,
)
from repro.accelerator.config import scaled_default_config


class TestParseConstraint:
    def test_metrics_and_aliases(self):
        assert parse_constraint("traffic<=1e9") == Constraint("traffic", 1e9)
        assert parse_constraint("dram_words<=5") == Constraint("traffic", 5.0)
        assert parse_constraint("ENERGY<=2.5e10").metric == "energy"
        assert parse_constraint("area<=8192").metric == "pe_area"
        assert parse_constraint(" pe_area <= 8192 ").bound == 8192.0

    def test_existing_constraint_passes_through(self):
        constraint = Constraint("energy", 10.0)
        assert parse_constraint(constraint) is constraint

    def test_label_round_trips(self):
        constraint = parse_constraint("traffic<=60000")
        assert parse_constraint(constraint.label) == constraint

    @pytest.mark.parametrize("text", [
        "traffic", "traffic>=1", "traffic<=", "traffic<=zebra",
        "bogus<=1", "traffic<=-5", "traffic<=0", "traffic<=inf",
    ])
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_constraint(text)


class TestPeArea:
    def test_matches_architecture_product(self):
        architecture = scaled_default_config()
        assert pe_area_words(architecture) == (
            architecture.num_pes * architecture.pe_buffer_capacity_words)


def _grid_configs():
    return [DesignConfig(y, glb, pe)
            for y in (0.02, 0.05, 0.10, 0.22)
            for glb in (0.5, 1.0, 2.0)
            for pe in (0.5, 1.0, 2.0)]


def _smooth_objectives(config):
    """A noiseless log-polynomial landscape the degree-2 fit can nail."""
    traffic = 1e6 * config.overbooking_target ** -0.3 * config.glb_scale ** -0.8
    energy = 1e8 * config.glb_scale ** -0.5 * config.pe_scale ** 0.2
    return (traffic, energy)


class TestDesignSurrogate:
    def test_undertrained_group_predicts_none(self):
        surrogate = DesignSurrogate(num_pes=128)
        configs = _grid_configs()
        for config in configs[:MIN_TRAIN_POINTS - 1]:
            surrogate.observe("gram", "w", config, _smooth_objectives(config))
        assert not surrogate.trained("gram", "w")
        assert surrogate.predict("gram", "w", configs[:2]) is None
        assert surrogate.trained("gram", "missing") is False

    def test_fits_smooth_landscape_accurately(self):
        surrogate = DesignSurrogate(num_pes=128)
        configs = _grid_configs()
        for config in configs:
            surrogate.observe("gram", "w", config, _smooth_objectives(config))
        held_out = [DesignConfig(0.07, 0.7, 1.5), DesignConfig(0.15, 1.4, 0.7)]
        predicted = surrogate.predict("gram", "w", held_out)
        exact = np.array([_smooth_objectives(c) for c in held_out])
        assert np.allclose(predicted, exact, rtol=0.02)

    def test_groups_are_independent(self):
        surrogate = DesignSurrogate(num_pes=128)
        for config in _grid_configs():
            surrogate.observe("gram", "w", config, _smooth_objectives(config))
        assert surrogate.trained("gram", "w")
        assert not surrogate.trained("spmv", "w")
        assert surrogate.predict("spmv", "w", _grid_configs()[:1]) is None

    def test_trust_band_none_until_errors_recorded(self):
        surrogate = DesignSurrogate(num_pes=128)
        for config in _grid_configs():
            surrogate.observe("gram", "w", config, _smooth_objectives(config))
        assert surrogate.error_margin("gram", "w") is None
        assert surrogate.trust_band("gram", "w") is None

    def test_trust_band_shrinks_with_observed_errors(self):
        surrogate = DesignSurrogate(num_pes=128)
        exact = np.array([[100.0, 200.0]])
        surrogate.record_errors("gram", "w", exact * 1.001, exact)
        accurate_band = surrogate.trust_band("gram", "w")
        assert accurate_band == pytest.approx(SKIP_TOLERANCE, rel=0.1)

        surrogate.record_errors("gram", "w",
                                np.repeat(exact * 1.30, 50, axis=0),
                                np.repeat(exact, 50, axis=0))
        degraded_band = surrogate.trust_band("gram", "w")
        assert degraded_band < 0  # errors beyond tolerance: band goes negative
        assert degraded_band < accurate_band

    def test_error_is_worst_objective_per_row(self):
        surrogate = DesignSurrogate(num_pes=128)
        exact = np.array([[100.0, 200.0]])
        predicted = np.array([[100.0, 240.0]])  # 0% and 20% off
        surrogate.record_errors("gram", "w", predicted, exact)
        assert surrogate.error_margin("gram", "w") == pytest.approx(
            surrogate.safety * 0.20)

    def test_empty_error_batch_is_a_no_op(self):
        surrogate = DesignSurrogate(num_pes=128)
        surrogate.record_errors("gram", "w", np.empty((0, 2)), np.empty((0, 2)))
        assert surrogate.trust_band("gram", "w") is None
