"""Corpus suites through the whole pipeline: scheduler, sweep, table5, CLI.

Everything runs against the committed fixture corpus (``tests/data/corpus``)
with ``REPRO_CORPUS_OFFLINE=1`` and an isolated cache root — zero network —
which is exactly how the CI smoke step drives the same paths.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.experiments import table5
from repro.experiments.registry import get
from repro.experiments.runner import ExperimentContext, clear_process_caches
from repro.experiments.scheduler import (
    EvaluationScheduler,
    requests_for_context,
)
from repro.experiments.store import ReportStore
from repro.experiments.sweep import sweep_grid
from repro.tensor import corpus
from repro.tensor.corpus import corpus_workload_suite
from repro.tensor.kernels import kernel_names
from repro.tensor.suite import corpus_suite, suite_from_token

FIXTURES = Path(__file__).resolve().parents[1] / "data" / "corpus"
MANIFEST = FIXTURES / "manifest.json"

#: Three fixtures spanning all wire formats (smtx, mtx.gz, tar.gz member).
CORPUS_IDS = (
    "dlmc:fixture/magnitude-080",
    "suitesparse:fixture/fem-band",
    "suitesparse:fixture/cant-mini",
)

ALL_FIXTURE_IDS = CORPUS_IDS + (
    "dlmc:fixture/random-050",
    "suitesparse:fixture/powerlaw-graph",
)


@pytest.fixture(scope="module", autouse=True)
def _hermetic_corpus_env(tmp_path_factory):
    """Isolated cache root + offline mode, inherited by pool workers."""
    with pytest.MonkeyPatch.context() as patcher:
        patcher.setenv(corpus.ENV_CACHE,
                       str(tmp_path_factory.mktemp("corpus-cache")))
        patcher.setenv(corpus.ENV_OFFLINE, "1")
        yield


def _fixture_suite(ids=CORPUS_IDS, seed=2023):
    return corpus_workload_suite(list(ids), manifest=MANIFEST, seed=seed)


class TestCorpusSuiteErrorPaths:
    """Regressions for the ``corpus_suite`` error paths hardened in this PR.

    Both failed before the fix: duplicates produced a confusing
    "filenames must yield unique workload names" message naming only the
    stems, and an unreadable file surfaced as a raw parser traceback with
    no offending path in the message.
    """

    def test_duplicate_paths_are_rejected_by_path(self):
        path = FIXTURES / "powerlaw-graph.mtx"
        with pytest.raises(ValueError, match="duplicate corpus path"):
            corpus_suite([path, path])
        with pytest.raises(ValueError, match=str(path)):
            corpus_suite([path, FIXTURES.parent / "corpus" /
                          "powerlaw-graph.mtx"])  # distinct spellings, one file

    def test_unreadable_matrix_names_the_path(self, tmp_path):
        bad = tmp_path / "absent.mtx"
        with pytest.raises(ValueError,
                           match=f"failed to load corpus matrix {bad}"):
            corpus_suite([bad])
        garbled = tmp_path / "garbled.mtx"
        garbled.write_text("not a MatrixMarket header\n")
        with pytest.raises(ValueError, match="garbled.mtx"):
            corpus_suite([garbled])


class TestCorpusTokenRebuild:
    def test_worker_rebuilt_suite_is_float_identical_in_process(self):
        suite = _fixture_suite()
        rebuilt = suite_from_token(suite.cache_token)
        assert rebuilt.names == suite.names
        for name in suite.names:
            left, right = suite.matrix(name), rebuilt.matrix(name)
            assert (left.csr != right.csr).nnz == 0
            assert np.array_equal(left.values(), right.values())
            pair_left = suite.paired_matrix(name)
            pair_right = rebuilt.paired_matrix(name)
            assert (pair_left.csr != pair_right.csr).nnz == 0

    def test_token_survives_a_seed_override(self):
        suite = _fixture_suite(seed=7)
        scope, seed, order = suite.cache_token
        assert seed == 7
        rebuilt = suite_from_token((scope, seed, order))
        assert (rebuilt.paired_matrix(order[0]).csr !=
                suite.paired_matrix(order[0]).csr).nnz == 0


def _report_values(report):
    return {
        "bound": report.bound,
        "bumped_fraction": report.bumped_fraction,
        "cycles": report.cycles,
        "dram_total_words": report.traffic.dram.total_words,
        "effectual_multiplies": report.effectual_multiplies,
        "energy_total_pj": report.energy.total_pj,
        "glb_overbooking_rate": report.glb_overbooking_rate,
        "glb_total_words": report.traffic.global_buffer.total_words,
        "output_nonzeros": report.output_nonzeros,
        "tiling_tax_elements": report.tiling_tax_elements,
    }


def _all_kernel_reports(max_workers):
    """Evaluate the fixture corpus under every kernel with a cold cache."""
    clear_process_caches()
    suite = _fixture_suite()
    base = ExperimentContext(suite=suite, kernel="gram")
    contexts = {kernel: base.with_kernel(kernel) for kernel in kernel_names()}
    requests = [request for ctx in contexts.values()
                for request in requests_for_context(ctx)]
    stats = EvaluationScheduler(
        max_workers=max_workers, min_parallel_requests=1).prefetch(requests)
    reports = {
        (kernel, name): ctx.reports(name)
        for kernel, ctx in contexts.items() for name in ctx.workload_names
    }
    return stats, reports


class TestCorpusParallelBitIdentical:
    def test_two_workers_match_serial_exactly_across_all_kernels(self):
        """Pool workers rebuild ``("corpus", ...)`` suites from dataset IDs
        through the shared on-disk cache; the reports must carry the same
        floats as the serial in-process path — bit-identical, not close."""
        serial_stats, serial = _all_kernel_reports(max_workers=1)
        parallel_stats, parallel = _all_kernel_reports(max_workers=2)

        expected = len(kernel_names()) * len(CORPUS_IDS)
        assert serial_stats.computed == expected
        assert parallel_stats.computed == expected
        assert parallel_stats.workers == 2

        assert sorted(parallel) == sorted(serial)
        for key, per_variant in serial.items():
            assert sorted(parallel[key]) == sorted(per_variant)
            for variant, report in per_variant.items():
                assert _report_values(parallel[key][variant]) == \
                    _report_values(report), (key, variant)

    def test_worker_rebuilt_requests_are_memo_hits_afterwards(self):
        _all_kernel_reports(max_workers=2)
        context = ExperimentContext(suite=_fixture_suite())
        stats = EvaluationScheduler(max_workers=2, min_parallel_requests=1) \
            .prefetch_context(context)
        assert stats.computed == 0
        assert stats.warm == len(CORPUS_IDS)


class TestCorpusSweep:
    def test_sweep_grid_accepts_a_corpus_axis(self):
        clear_process_caches()
        result = sweep_grid(corpus=list(CORPUS_IDS), corpus_manifest=MANIFEST,
                            y_values=(0.10,), max_workers=1)
        workloads = sorted({row.workload for row in result.rows})
        assert workloads == ["cant-mini", "fem-band", "magnitude-080"]

    def test_corpus_axis_is_exclusive_with_suite_and_synth(self):
        with pytest.raises(ValueError, match="exactly one of"):
            sweep_grid(corpus=list(CORPUS_IDS), synth=("uniform:n=64,nnz=200",))

    def test_store_resumed_sweep_is_byte_identical(self, tmp_path):
        grid = dict(corpus=list(CORPUS_IDS), corpus_manifest=MANIFEST,
                    y_values=(0.05, 0.10), max_workers=1)

        clear_process_caches()
        clean = sweep_grid(**grid)
        clean_json = clean.write_json(tmp_path / "clean.json").read_bytes()
        clean_csv = clean.write_csv(tmp_path / "clean.csv").read_bytes()

        clear_process_caches()
        sweep_grid(store=ReportStore(tmp_path / "store"), **grid)

        clear_process_caches()  # "fresh process": memos gone, store remains
        resumed = sweep_grid(store=ReportStore(tmp_path / "store"),
                             resume=True, **grid)
        assert resumed.schedule.computed == 0
        assert resumed.schedule.store_hits == len(CORPUS_IDS) * 2

        assert resumed.write_json(
            tmp_path / "resumed.json").read_bytes() == clean_json
        assert resumed.write_csv(
            tmp_path / "resumed.csv").read_bytes() == clean_csv


@pytest.fixture(scope="module")
def quick_result():
    return get("table5").run_quick(ExperimentContext.quick())


class TestTable5:
    def test_sources_and_row_counts(self, quick_result):
        assert quick_result.sources == ["dlmc", "suitesparse", "synth"]
        assert quick_result.kernels == list(table5.QUICK_KERNELS)
        workloads = (len(table5.QUICK_DLMC) + len(table5.QUICK_SUITESPARSE)
                     + len(table5.QUICK_SYNTH))
        assert len(quick_result.rows) == \
            workloads * len(quick_result.kernels)

    def test_rows_are_source_major(self, quick_result):
        sources = [row.source for row in quick_result.rows]
        assert sources == sorted(sources, key=quick_result.sources.index)

    def test_speedups_and_rates_are_sane(self, quick_result):
        for row in quick_result.rows:
            assert row.speedup_ob_vs_naive > 0
            assert row.speedup_ob_vs_prescient > 0
            assert row.energy_ratio_ob_vs_naive > 0
            assert 0.0 <= row.glb_overbooking_rate <= 1.0
            assert row.nnz > 0 and row.rows > 0 and row.cols > 0
            assert row.occupancy_cv >= 0.0

    def test_summaries_cover_every_source(self, quick_result):
        for source in quick_result.sources:
            summary = quick_result.summary(source)
            assert summary.workloads > 0
            assert summary.geomean_speedup_ob_vs_naive > 0
        with pytest.raises(KeyError):
            quick_result.summary("imagined")

    def test_fixture_dimensions_flow_from_the_corpus(self, quick_result):
        by_workload = {(row.source, row.workload): row
                       for row in quick_result.rows}
        mag = by_workload[("dlmc", "magnitude-080")]
        assert (mag.rows, mag.cols, mag.nnz) == (96, 128, 2496)

    def test_result_formats_as_two_tables(self, quick_result):
        text = table5.format_result(quick_result)
        assert "Table 5" in text
        assert "per-source geomeans" in text
        assert "suitesparse" in text

    def test_needs_at_least_one_source(self):
        with pytest.raises(ValueError, match="at least one"):
            get("table5").run(ExperimentContext.quick(), dlmc=(),
                              suitesparse=(), synth=())


class TestCorpusCli:
    def test_run_with_corpus_flag(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        code = main(["run", "fig7",
                     "--corpus", "suitesparse:fixture/fem-band",
                     "--corpus", "suitesparse:fixture/cant-mini",
                     "--corpus-manifest", str(MANIFEST),
                     "--workers", "1", "--output-dir", str(out_dir)])
        assert code == 0
        payload = json.loads((out_dir / "fig7.json").read_text())
        assert payload["suite"] == "corpus"
        workloads = [row["workload"] for row in payload["result"]["rows"]]
        assert workloads == ["fem-band", "cant-mini"]

    def test_run_table5_quick(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        code = main(["run", "table5", "--quick", "--workers", "1",
                     "--output-dir", str(out_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        payload = json.loads((out_dir / "table5.json").read_text())
        assert payload["result"]["sources"] == \
            ["dlmc", "suitesparse", "synth"]

    def test_sweep_with_corpus_flag(self, tmp_path):
        out_dir = tmp_path / "artifacts"
        code = main(["sweep", "--corpus", "dlmc:fixture/magnitude-080",
                     "--corpus-manifest", str(MANIFEST), "--y", "0.1",
                     "--workers", "1", "--output-dir", str(out_dir)])
        assert code == 0
        payload = json.loads((out_dir / "sweep.json").read_text())
        assert payload["suite_workloads"] == ["magnitude-080"]

    def test_corpus_list_fetch_verify_gc_cycle(self, tmp_path, capsys):
        cache = tmp_path / "cli-cache"
        common = ["--corpus-manifest", str(MANIFEST),
                  "--corpus-cache", str(cache)]

        assert main(["corpus", "list"] + common) == 0
        out = capsys.readouterr().out
        assert "fixture/fem-band" in out
        assert "Williams/cant" in out  # builtin catalog is still listed

        assert main(["corpus", "fetch", "suitesparse:fixture/fem-band",
                     "dlmc:fixture/random-050"] + common) == 0
        capsys.readouterr()

        assert main(["corpus", "verify"] + common) == 0
        assert "2 ok" in capsys.readouterr().out

        assert main(["corpus", "gc"] + common) == 0
        capsys.readouterr()
        assert main(["corpus", "verify"] + common) == 0
        assert "2 ok" in capsys.readouterr().out  # gc kept the matrices

    def test_corpus_fetch_unknown_matrix_fails_cleanly(self, tmp_path,
                                                       capsys):
        code = main(["corpus", "fetch", "dlmc:fixture/absent",
                     "--corpus-manifest", str(MANIFEST),
                     "--corpus-cache", str(tmp_path / "cache")])
        assert code != 0
        assert "absent" in capsys.readouterr().err
